"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     — list compressors, dataset profiles, models, clusters.
* ``compress`` — compress one synthetic gradient with a chosen codec
  and print size/error statistics.
* ``train``    — run a distributed training experiment on the simulated
  cluster and print the per-epoch table (``--trace PATH`` records a
  flight-recorder trace; ``--elastic SCHED`` / ``--stale N`` run the
  elastic / bounded-staleness fleet path, see ``docs/fleet.md``).
* ``replay``   — fit a cost model from a recorded trace and simulate a
  scaled fleet (churn, diurnal load, correlated stragglers), emitting
  a synthetic trace and a fleet summary.
* ``trace``    — render a recorded trace: per-phase time tree,
  per-worker timeline, slowest-round drill-down, causal critical-path
  attribution (``--critical-path``; see ``docs/observability.md``).
* ``top``      — per-worker live-ops dashboard, from a running
  exporter (``--connect HOST:PORT``, started by ``train
  --metrics-port``) or offline from a recorded trace.
* ``compare``  — all registered codecs side by side on one gradient.
* ``report``   — stitch archived bench results into ``REPORT.md``.
* ``perf``     — time the codec hot-path kernels, write ``BENCH_codec.json``.
* ``datagen``  — write a synthetic dataset to a LIBSVM file.
* ``golden``   — check (or deliberately regenerate) the committed
  golden wire fixtures across every payload version and kernel path
  (see ``docs/wire.md``).
* ``lint``     — run the repo-specific static analyser (see
  ``docs/static_analysis.md``); exits nonzero on findings.

Examples::

    python -m repro info
    python -m repro compress --method sketchml --nnz 50000
    python -m repro compare --nnz 20000
    python -m repro train --profile kdd12 --model lr --method SketchML \
        --workers 10 --epochs 3
    python -m repro train --backend mp --trace out.jsonl
    python -m repro train --backend mp --metrics-port 9100 --trace out.jsonl
    python -m repro train --backend mp --elastic sched.json --stale 2
    python -m repro top --connect 127.0.0.1:9100
    python -m repro top out.jsonl --once
    python -m repro trace out.jsonl --critical-path
    python -m repro replay out.jsonl --workers 1000 --stale 4 \
        --straggler-rate 0.02 --straggler-stall 0.5 --out synth.jsonl
    python -m repro trace out.jsonl --format json
    python -m repro datagen --profile kdd10 --scale 0.1 --out kdd10.libsvm
    python -m repro perf --quick
    python -m repro report
    python -m repro lint --format json
    python -m repro lint --deep --format sarif src/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SketchML (SIGMOD 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list available components")

    compress = sub.add_parser("compress", help="compress one synthetic gradient")
    compress.add_argument("--method", default="sketchml",
                          help="registered compressor name (see `info`)")
    compress.add_argument("--nnz", type=int, default=50_000,
                          help="nonzero gradient entries")
    compress.add_argument("--dimension", type=int, default=1_000_000,
                          help="model dimensions")
    compress.add_argument("--scale", type=float, default=0.01,
                          help="Laplace scale of the gradient values")
    compress.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="run a distributed experiment")
    train.add_argument("--profile", default="kdd12",
                       choices=["kdd10", "kdd12", "ctr", "kdd12-hothead"])
    train.add_argument("--model", default="lr",
                       choices=["lr", "svm", "linear", "fm"])
    train.add_argument("--method", default="SketchML",
                       help="Adam | ZipML | SketchML | Adam+Key | ... ")
    train.add_argument("--workers", type=int, default=10)
    train.add_argument("--epochs", type=int, default=3)
    train.add_argument("--batch-fraction", type=float, default=0.1)
    train.add_argument("--learning-rate", type=float, default=0.01)
    train.add_argument("--scale", type=float, default=1.0,
                       help="dataset size multiplier")
    train.add_argument("--cluster", default="cluster2",
                       choices=["cluster1", "cluster2"])
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--backend", default="sim",
                       choices=["sim", "mp", "tcp", "aio"],
                       help="execution backend: simulated cluster (default), "
                            "real worker processes over pipes (mp), "
                            "host-local TCP sockets (tcp), or the "
                            "event-driven multiplexed sockets (aio)")
    train.add_argument("--straggler-policy", default="fail_fast",
                       choices=["fail_fast", "drop"],
                       help="what to do when a worker is lost "
                            "(real backends only)")
    train.add_argument("--message-timeout", type=float, default=10.0,
                       help="seconds to wait for one worker reply attempt")
    train.add_argument("--max-retries", type=int, default=3,
                       help="re-send attempts per message after the first")
    train.add_argument("--fault-drop", type=float, default=0.0,
                       help="fault injection: P(drop a driver->worker frame)")
    train.add_argument("--fault-delay", type=float, default=0.0,
                       help="fault injection: P(delay a worker->driver frame)")
    train.add_argument("--fault-duplicate", type=float, default=0.0,
                       help="fault injection: P(duplicate a reply frame)")
    train.add_argument("--fault-corrupt", type=float, default=0.0,
                       help="fault injection: P(corrupt a reply payload)")
    train.add_argument("--fault-seed", type=int, default=0,
                       help="fault injection RNG seed")
    train.add_argument("--entropy-coding", action="store_true",
                       help="wire v2: entropy-code bucket payloads on "
                            "frame-v2 connections (real backends; "
                            "negotiated per peer)")
    train.add_argument("--chunk-bytes", type=int, default=None, metavar="N",
                       help="wire v2: stream frames larger than N bytes as "
                            "chunks (default: runtime default; real "
                            "backends)")
    train.add_argument("--metrics-port", type=int, default=None, metavar="P",
                       help="serve the live ops plane on 127.0.0.1:P while "
                            "training: /metrics (Prometheus text), "
                            "/snapshot.json (for `repro top --connect`), "
                            "/healthz, /readyz; 0 picks a free port")
    train.add_argument("--trace", default=None, metavar="PATH",
                       help="record a repro-trace/1 flight-recorder file "
                            "(merged across worker processes); inspect it "
                            "with `python -m repro trace PATH`")
    train.add_argument("--elastic", default=None, metavar="SCHED",
                       help="elastic membership: a repro-fleet-schedule/1 "
                            "JSON file of seeded join/leave events (its "
                            "num_workers overrides --workers; see "
                            "docs/fleet.md)")
    train.add_argument("--stale", type=int, default=None, metavar="N",
                       help="bounded-staleness gather: a worker may run at "
                            "most N steps ahead of the slowest active "
                            "worker (SSP; N=0 is sync with per-worker "
                            "pacing)")

    compare = sub.add_parser(
        "compare", help="compare all codecs on one synthetic gradient"
    )
    compare.add_argument("--nnz", type=int, default=20_000)
    compare.add_argument("--dimension", type=int, default=500_000)
    compare.add_argument("--scale", type=float, default=0.01,
                         help="Laplace scale of the gradient values")
    compare.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report", help="stitch archived bench results into REPORT.md"
    )
    report.add_argument("--results-dir", default=None,
                        help="default: benchmarks/results under the cwd")
    report.add_argument("--out", default=None,
                        help="default: benchmarks/REPORT.md")
    report.add_argument("--trace", default=None, metavar="FILE",
                        help="flight recording to append a per-epoch "
                             "critical-path section from")

    perf = sub.add_parser(
        "perf", help="time the codec hot-path kernels, write BENCH_codec.json"
    )
    perf.add_argument("--quick", action="store_true",
                      help="CI smoke mode: fewer sizes and repeats")
    perf.add_argument("--sizes", type=int, nargs="+", default=None,
                      help="override the nnz grid (default 5k/50k/200k)")
    perf.add_argument("--out", default=None,
                      help="output JSON path (default: BENCH_codec.json; "
                           "'-' to skip writing)")
    perf.add_argument("--metrics-overhead", action="store_true",
                      help="also guard the overhead budget with the "
                           "live-ops metrics hub installed")
    perf.add_argument("--transports", nargs="*", default=None,
                      choices=["sim", "mp", "tcp", "aio"], metavar="BACKEND",
                      help="also time transport echo round-trips on these "
                           "backends (default: all; pass with no "
                           "values to skip)")
    perf.add_argument("--soak", action="store_true",
                      help="run the high-concurrency gather soak: a "
                           "simulated worker swarm with a straggler tail, "
                           "tcp barrier gather vs aio (barrier and "
                           "overlapped) at each worker count")
    perf.add_argument("--soak-workers", type=int, nargs="+", default=None,
                      metavar="N",
                      help="soak worker-count grid "
                           "(default 8 64 500; --quick: 8 64)")
    perf.add_argument("--soak-rounds", type=int, default=None, metavar="R",
                      help="gather rounds per soak cell "
                           "(default 30; --quick: 10)")
    perf.add_argument("--trace", default=None, metavar="PATH",
                      help="record a repro-trace/1 file of the perf run "
                           "(soak gathers are spanned; inspect with "
                           "`python -m repro trace PATH`)")

    replay = sub.add_parser(
        "replay",
        help="replay a recorded trace as a scaled simulated fleet",
    )
    replay.add_argument("path", help="recorded repro-trace/1 file "
                                     "(train --trace PATH)")
    replay.add_argument("--workers", type=int, default=1000,
                        help="simulated fleet size (default: 1000)")
    replay.add_argument("--rounds", type=int, default=100,
                        help="simulated rounds (stale mode: steps per "
                             "worker; default: 100)")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--stale", type=int, default=None, metavar="N",
                        help="simulate bounded-async gather with slack N "
                             "(default: synchronous rounds)")
    replay.add_argument("--gather", choices=["overlap", "barrier"],
                        default="overlap",
                        help="sync gather discipline: pipelined decode "
                             "(overlap, the aio behaviour) or wait-for-all "
                             "(barrier)")
    replay.add_argument("--diurnal-amplitude", type=float, default=0.0,
                        help="load swing A in 1 + A*sin(2*pi*r/period)")
    replay.add_argument("--diurnal-period", type=int, default=96,
                        help="rounds per diurnal cycle (default: 96)")
    replay.add_argument("--straggler-rate", type=float, default=0.0,
                        help="per-round P(a rack stalls)")
    replay.add_argument("--straggler-stall", type=float, default=0.0,
                        help="seconds added to every worker in a stalled "
                             "rack")
    replay.add_argument("--rack-size", type=int, default=16,
                        help="workers per correlated-failure rack")
    replay.add_argument("--churn-leave", type=float, default=0.0,
                        help="per-round P(an active worker leaves)")
    replay.add_argument("--churn-join", type=float, default=0.0,
                        help="per-round P(an inactive worker rejoins)")
    replay.add_argument("--min-active", type=int, default=1,
                        help="churn floor on active workers")
    replay.add_argument("--out", default=None, metavar="PATH",
                        help="write the synthetic repro-trace/1 here "
                             "(inspect with `python -m repro trace PATH`)")
    replay.add_argument("--results-dir", default=None,
                        help="also write fleet_replay.txt into this "
                             "directory for `repro report`")

    trace = sub.add_parser(
        "trace", help="inspect a recorded flight-recorder trace"
    )
    trace.add_argument("path", help="merged trace file (train --trace PATH)")
    trace.add_argument("--format", choices=["table", "json"], default="table",
                       help="human tables (default) or the JSON summary")
    trace.add_argument("--slowest", type=int, default=3, metavar="N",
                       help="rounds in the slowest-round drill-down")
    trace.add_argument("--validate", action="store_true",
                       help="schema-validate every event and exit "
                            "(nonzero on violations, including span "
                            "stacks left open by a truncated flight)")
    trace.add_argument("--critical-path", action="store_true",
                       help="attribute each round's wall time to codec / "
                            "compute / straggler-wait / wire via the "
                            "causal span DAG (needs a live-ops trace)")
    trace.add_argument("--per-round", action="store_true",
                       help="with --critical-path: one row per round, "
                            "not just per-epoch rollups")

    top = sub.add_parser(
        "top", help="per-worker live-ops dashboard"
    )
    top.add_argument("path", nargs="?", default=None,
                     help="recorded trace to fold offline (or use "
                          "--connect for a live run)")
    top.add_argument("--connect", default=None, metavar="HOST:PORT",
                     help="scrape /snapshot.json from a running "
                          "`train --metrics-port` exporter")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (CI / piping)")
    top.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                     help="refresh period for live mode (default: 2.0)")

    datagen = sub.add_parser("datagen", help="write a synthetic dataset")
    datagen.add_argument("--profile", default="kdd10",
                         choices=["kdd10", "kdd12", "ctr", "kdd12-hothead"])
    datagen.add_argument("--scale", type=float, default=1.0)
    datagen.add_argument("--seed", type=int, default=0)
    datagen.add_argument("--out", required=True, help="output LIBSVM path")

    golden = sub.add_parser(
        "golden",
        help="check or regenerate the golden wire fixtures",
    )
    golden_mode = golden.add_mutually_exclusive_group()
    golden_mode.add_argument(
        "--check", action="store_true",
        help="verify every {payload version x kernel path} cell "
             "against the committed fixtures (default); exits nonzero "
             "on any drift")
    golden_mode.add_argument(
        "--write", action="store_true",
        help="regenerate the fixture files and manifest (the only "
             "sanctioned way to change them)")
    golden.add_argument("--dir", default=None, metavar="PATH",
                        help="fixture directory "
                             "(default: tests/golden/wire)")

    lint = sub.add_parser(
        "lint", help="run the repo-specific static analyser"
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="findings output format (default: text)")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--deep", action="store_true",
                      help="also run the interprocedural tier (call-graph "
                           "reachability, seed-flow, lock-order)")
    lint.add_argument("--baseline", default="analysis-baseline.json",
                      help="findings baseline for --deep; only findings "
                           "not in it fail (default: "
                           "analysis-baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="with --deep: accept the current findings as "
                           "the new baseline and exit 0")
    return parser


def _cmd_info() -> int:
    from .bench.runner import METHOD_LABELS
    from .compression import available_compressors

    print("registered compressors :", ", ".join(available_compressors()))
    print("paper methods          :", ", ".join(METHOD_LABELS),
          "(plus ablations Adam+Key, Adam+Key+Quan, ...)")
    print("dataset profiles       : kdd10, kdd12, ctr, kdd12-hothead")
    print("models                 : lr, svm, linear, fm (sparse); mlp (dense)")
    print("cluster presets        : cluster1 (lab LAN), cluster2 (congested)")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from .compression import make_compressor

    rng = np.random.default_rng(args.seed)
    if args.nnz <= 0 or args.dimension < args.nnz:
        print("error: need 0 < nnz <= dimension", file=sys.stderr)
        return 2
    keys = np.sort(rng.choice(args.dimension, size=args.nnz, replace=False))
    values = rng.laplace(scale=args.scale, size=args.nnz)
    values[values == 0.0] = args.scale / 100

    try:
        compressor = make_compressor(args.method)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_keys, out_values, message = compressor.roundtrip(
        keys, values, args.dimension
    )
    print(f"method            : {args.method}")
    print(f"raw size          : {message.raw_bytes:,} bytes")
    print(f"compressed size   : {message.num_bytes:,} bytes")
    print(f"compression rate  : {message.compression_rate:.2f}x")
    print(f"keys lossless     : {np.array_equal(out_keys, keys)}")
    if out_values.size == values.size:
        print(f"value MAE         : {np.mean(np.abs(out_values - values)):.6f}")
        same_sign = np.all(np.sign(out_values) * np.sign(values) >= 0)
        print(f"signs preserved   : {bool(same_sign)}")
    if message.breakdown:
        print(f"byte breakdown    : {dict(sorted(message.breakdown.items()))}")
    return 0


def _trace_run_id(args: argparse.Namespace) -> str:
    """Deterministic run id: same invocation, same trace identity."""
    return (
        f"{args.profile}-{args.method}-{args.model}"
        f"-w{args.workers}-s{args.seed}-{args.backend}"
    )


def _cmd_train(args: argparse.Namespace) -> int:
    from . import telemetry
    from .bench import ExperimentSpec, format_table, run_experiment

    tracing = bool(getattr(args, "trace", None))
    if tracing:
        try:
            telemetry.start_run(args.trace, run_id=_trace_run_id(args))
        except (OSError, RuntimeError) as exc:
            print(f"error: cannot start trace: {exc}", file=sys.stderr)
            return 2
    exporter = None
    if args.metrics_port is not None:
        from .telemetry.export import MetricsExporter
        from .telemetry.metrics import MetricsHub

        hub = MetricsHub()
        try:
            exporter = MetricsExporter(hub, port=args.metrics_port).start()
        except OSError as exc:
            if tracing and telemetry.active_session() is not None:
                telemetry.finish_run()
            print(f"error: cannot serve metrics: {exc}", file=sys.stderr)
            return 2
        telemetry.set_metrics_hub(hub)
        print(f"live ops plane at {exporter.url} "
              f"(`python -m repro top --connect "
              f"127.0.0.1:{exporter.port}`)")
    try:
        spec = ExperimentSpec(
            profile=args.profile,
            model=args.model,
            method=args.method,
            num_workers=args.workers,
            epochs=args.epochs,
            batch_fraction=args.batch_fraction,
            learning_rate=args.learning_rate,
            scale=args.scale,
            seed=args.seed,
            cluster=args.cluster,
            backend=args.backend,
            straggler_policy=args.straggler_policy,
            message_timeout=args.message_timeout,
            max_retries=args.max_retries,
            fault_drop_rate=args.fault_drop,
            fault_delay_rate=args.fault_delay,
            fault_duplicate_rate=args.fault_duplicate,
            fault_corrupt_rate=args.fault_corrupt,
            fault_seed=args.fault_seed,
            elastic_schedule=args.elastic,
            staleness=args.stale,
            entropy_coding=args.entropy_coding,
            chunk_bytes=args.chunk_bytes,
        )
        history = run_experiment(spec, use_cache=False)
    except OSError as exc:
        print(f"error: cannot load schedule: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracing and telemetry.active_session() is not None:
            telemetry.finish_run()
        if exporter is not None:
            telemetry.set_metrics_hub(None)
            exporter.close()
    rows = [
        [
            e.epoch,
            round(e.epoch_seconds, 2),
            round(e.compute_seconds, 2),
            round(e.network_seconds, 2),
            round(e.avg_message_bytes / 1024, 1),
            round(e.compression_rate, 2),
            round(e.train_loss, 5),
            round(e.test_loss, 5) if e.test_loss is not None else "-",
        ]
        for e in history.epochs
    ]
    print(
        format_table(
            ["epoch", "sec", "compute", "network", "msg KiB", "rate",
             "train loss", "test loss"],
            rows,
            title=(
                f"{args.method} / {args.model} / {args.profile} "
                f"({history.num_workers} workers, {args.cluster}, "
                f"backend={args.backend}"
                + (", elastic" if args.elastic else "")
                + (f", stale={args.stale}" if args.stale is not None else "")
                + ")"
            ),
        )
    )
    dropped = history.epochs[-1].dropped_workers if history.epochs else {}
    if dropped:
        for worker_id, reason in sorted(dropped.items()):
            print(f"dropped worker {worker_id}: {reason}")
    if tracing:
        print(f"trace written to {args.trace} "
              f"(inspect with `python -m repro trace {args.trace}`)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .fleet import FleetScenario, ReplayError, run_replay

    try:
        scenario = FleetScenario(
            workers=args.workers,
            rounds=args.rounds,
            seed=args.seed,
            staleness=args.stale,
            gather=args.gather,
            diurnal_amplitude=args.diurnal_amplitude,
            diurnal_period=args.diurnal_period,
            straggler_rate=args.straggler_rate,
            straggler_stall=args.straggler_stall,
            rack_size=args.rack_size,
            churn_leave_prob=args.churn_leave,
            churn_join_prob=args.churn_join,
            min_active=args.min_active,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        outcome = run_replay(
            args.path,
            scenario,
            out_path=args.out,
            results_dir=args.results_dir,
        )
    except (ReplayError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(outcome["summary"], end="")
    stats = outcome["trace_stats"]
    print(
        f"\nsynthetic trace: {stats['events']} schema-valid events"
        + (f", written to {args.out}" if args.out else "")
    )
    if args.results_dir:
        print(f"summary written to {args.results_dir}/fleet_replay.txt")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .telemetry.merge import read_trace
    from .telemetry.schema import TraceSchemaError, validate_trace
    from .telemetry.summary import render_summary, summarize

    try:
        events = read_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.validate:
        try:
            info = validate_trace(events)
        except TraceSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(
            f"OK: {info['events']} events from {info['processes']} "
            f"process(es): "
            + ", ".join(f"{k}={v}" for k, v in sorted(info["types"].items()))
        )
        return 0
    if args.critical_path:
        from .telemetry.critical_path import critical_path, render_report

        try:
            report = critical_path(events)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(json.dumps(
                {
                    "rounds": [
                        {
                            "round": r.round,
                            "epoch": r.epoch,
                            "dur": r.dur,
                            "workers": r.workers,
                            "buckets": r.buckets,
                            "coverage": r.coverage,
                        }
                        for r in report.rounds
                    ],
                    "totals": report.totals(),
                },
                indent=2,
            ))
        else:
            print(render_report(report, per_round=args.per_round))
        return 0
    if args.format == "json":
        print(json.dumps(summarize(events, slowest=args.slowest), indent=2))
    else:
        print(render_summary(events, slowest=args.slowest))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    import time

    from .telemetry.top import render_top, snapshot_from_trace

    if (args.path is None) == (args.connect is None):
        print("error: pass a trace path or --connect HOST:PORT (not both)",
              file=sys.stderr)
        return 2
    if args.path is not None:
        from .telemetry.merge import read_trace

        try:
            events = read_trace(args.path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        snapshot = snapshot_from_trace(events)
        # A recorded trace is a finished run: freshness ages are noise.
        print(render_top(snapshot, now=0.0))
        return 0

    from urllib.error import URLError
    from urllib.request import urlopen

    url = f"http://{args.connect}/snapshot.json"
    while True:
        try:
            with urlopen(url, timeout=5.0) as resp:
                snapshot = json.loads(resp.read().decode("utf-8"))
        except (URLError, OSError, ValueError) as exc:
            print(f"error: cannot scrape {url}: {exc}", file=sys.stderr)
            return 2
        frame = render_top(snapshot)
        if args.once:
            print(frame)
            return 0
        # Clear + home between frames; plain ANSI keeps this stdlib-only.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import compare_compressors, format_report, profile_gradient

    rng = np.random.default_rng(args.seed)
    if args.nnz <= 0 or args.dimension < args.nnz:
        print("error: need 0 < nnz <= dimension", file=sys.stderr)
        return 2
    keys = np.sort(rng.choice(args.dimension, size=args.nnz, replace=False))
    values = rng.laplace(scale=args.scale, size=args.nnz)
    values[values == 0.0] = args.scale / 100
    profile = profile_gradient(keys, values, args.dimension)
    print(
        f"gradient: d={profile.nnz:,}, D={profile.dimension:,}, "
        f"density={profile.density:.4%}, near-zero={profile.near_zero_fraction:.0%}, "
        f"KS-nonuniformity={profile.uniformity_ks:.2f}"
    )
    print(f"SketchML-friendly: {profile.is_sketchml_friendly}\n")
    print(format_report(compare_compressors(keys, values, args.dimension)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from .bench.report import write_report

    results_dir = args.results_dir or os.path.join("benchmarks", "results")
    if not os.path.isdir(results_dir):
        print(f"error: no results directory at {results_dir} "
              "(run `pytest benchmarks/ --benchmark-only` first)",
              file=sys.stderr)
        return 2
    out_path, missing = write_report(results_dir, args.out, trace=args.trace)
    print(f"wrote {out_path}")
    if missing:
        print(f"note: {len(missing)} expected sections had no archived "
              f"result yet: {', '.join(missing)}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from . import telemetry
    from .perf import BENCH_FILENAME, run_suite, write_results

    if args.sizes is not None and any(nnz <= 0 for nnz in args.sizes):
        print("error: --sizes values must be positive", file=sys.stderr)
        return 2
    tracing = bool(getattr(args, "trace", None))
    if tracing:
        try:
            telemetry.start_run(args.trace, run_id="perf-soak")
        except (OSError, RuntimeError) as exc:
            print(f"error: cannot start trace: {exc}", file=sys.stderr)
            return 2
    try:
        return _run_perf(args)
    finally:
        if tracing and telemetry.active_session() is not None:
            path = telemetry.finish_run()
            if path:
                print(f"trace written to {path}")


def _run_perf(args: argparse.Namespace) -> int:
    from .perf import BENCH_FILENAME, run_suite, write_results

    results = run_suite(sizes=args.sizes, quick=args.quick)
    from .perf.wire_bench import run_wire_bench

    wire_results, wire_section = run_wire_bench(
        sizes=args.sizes, quick=args.quick
    )
    results.extend(wire_results)
    from .perf.transport_bench import run_transport_bench

    transports = args.transports
    if transports is None:
        transports = ["sim"] if args.quick else ["sim", "mp", "tcp", "aio"]
    if transports:
        results.extend(
            run_transport_bench(
                transports, repeats=2 if args.quick else 3
            )
        )
    if args.soak:
        from .perf.soak_bench import run_soak_bench

        worker_counts = args.soak_workers or (
            [8, 64] if args.quick else [8, 64, 500]
        )
        rounds = args.soak_rounds or (10 if args.quick else 30)
        results.extend(
            run_soak_bench(worker_counts=worker_counts, rounds=rounds)
        )
    name_w = max(len(r.name) for r in results)
    print(f"{'kernel':<{name_w}}  {'median ms':>10}  {'ns/elem':>9}  {'MB/s':>9}")
    for r in results:
        print(
            f"{r.name:<{name_w}}  {r.seconds * 1e3:>10.3f}  "
            f"{r.ns_per_element:>9.1f}  {r.mb_per_s:>9.1f}"
        )
    for nnz, row in wire_section["sizes"].items():
        print(
            f"wire v2 entropy @nnz={nnz}: {row['v1_bytes']} -> "
            f"{row['v2_bytes']} bytes ({row['reduction_pct']}% smaller, "
            f"coded {row['entropy']['coded_bytes']} of "
            f"{row['entropy']['plain_bytes']} plain index bytes)"
        )
    out = args.out or BENCH_FILENAME
    if out != "-":
        try:
            write_results(results, out, extra={"wire": wire_section})
        except OSError as exc:
            print(f"error: cannot write {out}: {exc}", file=sys.stderr)
            return 2
        print(f"\nwrote {out}")
    from .perf import measure_overhead

    modes = [False] + ([True] if args.metrics_overhead else [])
    for with_hub in modes:
        report = measure_overhead(
            nnz=5_000 if args.quick else 50_000,
            repeats=3 if args.quick else 5,
            metrics_hub=with_hub,
        )
        print(report.describe())
        if not report.within_budget:
            which = "metrics-hub" if with_hub else "disabled-path"
            print(f"error: telemetry {which} overhead exceeds budget",
                  file=sys.stderr)
            return 1
    return 0


def _cmd_datagen(args: argparse.Namespace) -> int:
    from .data import generate_profile, write_libsvm

    dataset = generate_profile(args.profile, seed=args.seed, scale=args.scale)
    write_libsvm(dataset, args.out)
    print(
        f"wrote {dataset.num_rows:,} rows x {dataset.num_features:,} features "
        f"({dataset.nnz:,} nonzeros) to {args.out}"
    )
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    from .golden import check_goldens, default_wire_dir, write_goldens

    wire_dir = args.dir or default_wire_dir()
    if args.write:
        try:
            manifest = write_goldens(wire_dir)
        except (OSError, RuntimeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"wrote {len(manifest['cases'])} cases "
            f"(v1 + v2 fixtures) and manifest.json to {wire_dir}"
        )
        return 0
    problems = check_goldens(wire_dir)
    if problems:
        for problem in problems:
            print(f"drift: {problem}", file=sys.stderr)
        print(
            f"error: {len(problems)} golden wire problem(s) — the wire "
            "format changed; bump the payload version and regenerate "
            "deliberately with `repro golden --write`",
            file=sys.stderr,
        )
        return 1
    print(f"OK: golden wire fixtures in {wire_dir} are exactly as pinned")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    import os

    from .lint import LintError, lint_paths, rule_descriptions
    from .lint.policy import verify_policy

    if args.list_rules:
        for rule_id, severity, description in rule_descriptions():
            print(f"{rule_id:<22} {severity:<8} {description}")
        return 0
    if args.update_baseline and not args.deep:
        print("error: --update-baseline requires --deep", file=sys.stderr)
        return 2
    missing = verify_policy()
    if missing:
        print(
            "error: lint policy names missing modules (renamed without "
            "updating lint/policy.py?): " + ", ".join(missing),
            file=sys.stderr,
        )
        return 2
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    stats = None
    absorbed = 0
    try:
        findings = lint_paths(paths, select=select)
        if args.deep:
            from .analysis import (
                analyze_paths,
                load_baseline,
                subtract_baseline,
                write_baseline,
            )

            deep_findings, stats, _ = analyze_paths(paths, select=select)
            findings = sorted(
                findings + deep_findings,
                key=lambda f: (f.path, f.line, f.col, f.rule_id),
            )
            if args.update_baseline:
                write_baseline(args.baseline, findings)
                print(
                    f"wrote {args.baseline} "
                    f"({len(findings)} accepted findings)"
                )
                return 0
            findings, absorbed = subtract_baseline(
                findings, load_baseline(args.baseline)
            )
    except (LintError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "sarif":
        from .analysis import render_sarif

        print(render_sarif(findings, rule_descriptions()))
    else:
        for f in findings:
            print(f"{f.location}: {f.severity}[{f.rule_id}] {f.message}")
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}")
    if stats is not None:
        tail = f" ({absorbed} baselined)" if absorbed else ""
        print(f"deep: {stats.summary()}{tail}", file=sys.stderr)
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "compress":
        return _cmd_compress(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "datagen":
        return _cmd_datagen(args)
    if args.command == "golden":
        return _cmd_golden(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")
