"""Shared experiment runner used by the per-figure benchmarks.

Centralises the cross-product the evaluation section runs over: a
dataset profile × a model × a compression method × a worker count,
trained for a few epochs on the simulated cluster.  Results are cached
per-process so that e.g. Fig. 9 (epoch time) and Fig. 10 (loss curves)
share one training run per combination, as they do in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from ..compression.base import GradientCompressor
from ..compression.identity import IdentityCompressor
from ..compression.zipml import ZipMLCompressor
from ..core.compressor import SketchMLCompressor
from ..core.config import SketchMLConfig
from ..data.splits import train_test_split
from ..data.synthetic import generate_profile
from ..distributed.metrics import TrainingHistory
from ..distributed.network import NetworkModel, cluster1_like, cluster2_like
from ..distributed.trainer import DistributedTrainer, TrainerConfig
from ..models import make_model
from ..optim.optimizers import Adam

__all__ = [
    "ExperimentSpec",
    "method_factory",
    "load_split",
    "run_experiment",
    "METHOD_LABELS",
]

#: Canonical method names used across all figure benches.
METHOD_LABELS = ("SketchML", "Adam", "ZipML")


def method_factory(
    method: str, seed: int = 0, **overrides
) -> Callable[[], GradientCompressor]:
    """Compressor factory for a paper method name.

    Supported: ``Adam`` (no compression, double), ``Adam-float``,
    ``ZipML`` (16-bit, the paper's tuned setting), ``ZipML-8bit``,
    ``SketchML`` (full pipeline), and the Fig. 8 ablation stages
    ``Adam+Key`` / ``Adam+Key+Quan`` / ``Adam+Key+Quan+MinMax``.
    """
    if method == "Adam":
        return lambda: IdentityCompressor(value_bytes=8)
    if method == "Adam-float":
        return lambda: IdentityCompressor(value_bytes=4)
    if method == "ZipML":
        return lambda: ZipMLCompressor(bits=16)
    if method == "ZipML-8bit":
        return lambda: ZipMLCompressor(bits=8)
    if method in ("SketchML", "Adam+Key+Quan+MinMax"):
        config = SketchMLConfig.full(seed=seed, **overrides)
        return lambda: SketchMLCompressor(config)
    if method == "Adam+Key":
        config = SketchMLConfig.keys_only(seed=seed)
        return lambda: SketchMLCompressor(config)
    if method == "Adam+Key+Quan":
        config = SketchMLConfig.keys_and_quantization(seed=seed, **overrides)
        return lambda: SketchMLCompressor(config)
    raise ValueError(f"unknown method {method!r}")


@lru_cache(maxsize=8)
def load_split(profile: str, scale: float = 1.0, seed: int = 0):
    """Generate + split a synthetic dataset once per process."""
    dataset = generate_profile(profile, seed=seed, scale=scale)
    return train_test_split(dataset, test_fraction=0.25, seed=seed)


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of the evaluation cross-product.

    Attributes mirror §4.1's protocol; ``scale`` shrinks the synthetic
    dataset for fast benches, and ``learning_rate`` defaults to the
    grid-searched value used across the suite.  ``backend`` selects the
    execution substrate (``sim`` keeps the figure-benchmark cost model;
    ``mp`` / ``tcp`` run real worker processes), and the ``fault_*`` /
    supervision fields configure the runtime's seeded fault injection —
    they are ignored on the ``sim`` backend.

    ``elastic_schedule`` (a ``repro-fleet-schedule/1`` JSON path) and
    ``staleness`` route the run through
    :class:`repro.fleet.FleetTrainer` instead of the fixed-membership
    trainer; a schedule's ``num_workers`` overrides ``num_workers``
    (the booted universe).
    """

    profile: str = "kdd12"
    model: str = "lr"
    method: str = "SketchML"
    num_workers: int = 10
    epochs: int = 5
    batch_fraction: float = 0.1
    learning_rate: float = 0.01
    reg_lambda: float = 0.01
    scale: float = 1.0
    seed: int = 0
    cluster: str = "cluster2"
    compute_seconds_per_nnz: float = 3e-4
    bandwidth_override: float = 0.0
    sketch_overrides: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)
    backend: str = "sim"
    fault_drop_rate: float = 0.0
    fault_delay_rate: float = 0.0
    fault_duplicate_rate: float = 0.0
    fault_corrupt_rate: float = 0.0
    fault_seed: int = 0
    straggler_policy: str = "fail_fast"
    message_timeout: float = 10.0
    max_retries: int = 3
    elastic_schedule: Optional[str] = None
    staleness: Optional[int] = None
    entropy_coding: bool = False
    chunk_bytes: Optional[int] = None

    def network(self) -> NetworkModel:
        if self.bandwidth_override:
            return NetworkModel(
                bandwidth_bytes_per_sec=self.bandwidth_override, latency_sec=2e-3
            )
        if self.cluster == "cluster1":
            return cluster1_like()
        if self.cluster == "cluster2":
            return cluster2_like()
        raise ValueError(f"unknown cluster {self.cluster!r}")

    def runtime(self):
        """The :class:`repro.runtime.RuntimeConfig` for real backends
        (``None`` on the simulated path)."""
        if self.backend == "sim":
            return None
        from ..runtime import FaultConfig, RuntimeConfig, SupervisionConfig

        faults = None
        if (
            self.fault_drop_rate or self.fault_delay_rate
            or self.fault_duplicate_rate or self.fault_corrupt_rate
        ):
            faults = FaultConfig(
                seed=self.fault_seed,
                drop_rate=self.fault_drop_rate,
                delay_rate=self.fault_delay_rate,
                duplicate_rate=self.fault_duplicate_rate,
                corrupt_rate=self.fault_corrupt_rate,
            )
        wire = {}
        if self.entropy_coding:
            wire["entropy_coding"] = True
        if self.chunk_bytes is not None:
            wire["chunk_bytes"] = int(self.chunk_bytes)
        return RuntimeConfig(
            backend=self.backend,
            supervision=SupervisionConfig(
                message_timeout=self.message_timeout,
                max_retries=self.max_retries,
                straggler_policy=self.straggler_policy,
                seed=self.seed,
            ),
            faults=faults,
            **wire,
        )


_RESULT_CACHE: Dict[ExperimentSpec, TrainingHistory] = {}


def run_experiment(
    spec: ExperimentSpec, use_cache: bool = True
) -> TrainingHistory:
    """Train one (dataset, model, method, workers) combination.

    Returns the full :class:`TrainingHistory`; identical specs are
    served from a per-process cache so figure benches that share a run
    (e.g. Fig. 9 and Fig. 10) pay for it once.
    """
    if use_cache and spec in _RESULT_CACHE:
        return _RESULT_CACHE[spec]
    train, test = load_split(spec.profile, scale=spec.scale, seed=spec.seed)
    model = make_model(spec.model, train.num_features, reg_lambda=spec.reg_lambda)
    factory = method_factory(
        spec.method, seed=spec.seed, **dict(spec.sketch_overrides)
    )
    if spec.elastic_schedule is not None or spec.staleness is not None:
        from ..fleet import FleetConfig, FleetTrainer, MembershipSchedule

        if spec.elastic_schedule is not None:
            schedule = MembershipSchedule.load(spec.elastic_schedule)
        else:
            # --stale alone: bounded-async over a static full membership.
            schedule = MembershipSchedule(num_workers=spec.num_workers)
        fleet = FleetTrainer(
            model=model,
            optimizer=Adam(learning_rate=spec.learning_rate),
            compressor_factory=factory,
            network=spec.network(),
            schedule=schedule,
            config=FleetConfig(
                epochs=spec.epochs,
                batch_fraction=spec.batch_fraction,
                seed=spec.seed,
                backend=spec.backend,
                staleness=spec.staleness,
                method_label=spec.method,
                compute_seconds_per_nnz=spec.compute_seconds_per_nnz,
            ),
            runtime=spec.runtime(),
        )
        history = fleet.train(train, test)
        if use_cache:
            _RESULT_CACHE[spec] = history
        return history
    trainer = DistributedTrainer(
        model=model,
        optimizer=Adam(learning_rate=spec.learning_rate),
        compressor_factory=factory,
        network=spec.network(),
        config=TrainerConfig(
            num_workers=spec.num_workers,
            batch_fraction=spec.batch_fraction,
            epochs=spec.epochs,
            seed=spec.seed,
            method_label=spec.method,
            compute_seconds_per_nnz=spec.compute_seconds_per_nnz,
            backend=spec.backend,
        ),
        runtime=spec.runtime(),
    )
    history = trainer.train(train, test)
    if use_cache:
        _RESULT_CACHE[spec] = history
    return history


def clear_cache() -> None:
    """Drop cached experiment results (tests use this for isolation)."""
    _RESULT_CACHE.clear()
    load_split.cache_clear()
