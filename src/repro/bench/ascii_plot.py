"""Terminal-friendly ASCII charts for benchmark/example output.

The paper's figures are line and bar charts; the benches archive their
raw series, and these helpers render a quick visual in any terminal —
no plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["line_chart", "bar_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline, e.g. ``▇▅▃▂▁`` for a falling loss curve.

    Non-finite values (an undefined ratio, a missing sample) render as
    ``·`` so they neither crash the scaling nor flatten every finite
    value to the baseline.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return "·" * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    out = []
    for v in values:
        if not math.isfinite(v):
            out.append("·")
        elif span == 0:
            out.append(_SPARK_LEVELS[0])
        else:
            idx = int((v - low) / span * (len(_SPARK_LEVELS) - 1))
            out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label (e.g. Fig. 8(a)'s bars)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must be parallel")
    if not labels:
        return ""
    if width < 1:
        raise ValueError("width must be positive")
    finite = [float(v) for v in values if math.isfinite(float(v))]
    peak = max(finite) if finite else 0.0
    label_width = max(len(str(label)) for label in labels)
    lines: List[str] = []
    for label, value in zip(labels, values):
        value = float(value)
        if not math.isfinite(value):
            lines.append(f"{str(label):<{label_width}}  {'':<{width}}  —")
            continue
        bar = "#" * max(1 if value > 0 else 0, int(round(value / peak * width))) \
            if peak > 0 else ""
        lines.append(
            f"{str(label):<{label_width}}  {bar:<{width}}  {value:g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
) -> str:
    """Multi-series (x, y) scatter/line chart on a character grid.

    Each series gets a marker (its name's first letter); axes are
    annotated with the data ranges.  Good enough to see Fig. 10's
    "SketchML reaches low loss first" at a glance.
    """
    if not series:
        return ""
    if width < 8 or height < 4:
        raise ValueError("width must be >= 8 and height >= 4")
    points = [
        (float(x), float(y))
        for pts in series.values()
        for x, y in pts
        if math.isfinite(float(x)) and math.isfinite(float(y))
    ]
    if not points:
        return ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, pts in series.items():
        marker = name.strip()[0].upper() if name.strip() else "*"
        for x, y in pts:
            if not (math.isfinite(float(x)) and math.isfinite(float(y))):
                continue  # dropped from the axis ranges above, too
            col = int((float(x) - x_low) / x_span * (width - 1))
            row = height - 1 - int((float(y) - y_low) / y_span * (height - 1))
            grid[row][col] = marker

    lines = [f"y: {y_low:.4g} .. {y_high:.4g}"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_low:.4g} .. {x_high:.4g}   " + "  ".join(
        f"{name.strip()[0].upper()}={name}" for name in series
    ))
    return "\n".join(lines)
