"""Consolidated reproduction report from the archived bench results.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, this module stitches every archived table and
series into a single markdown report (``REPORT.md`` by default) in the
paper's figure order — the one-file artifact a reviewer reads.

Usable as a library (:func:`build_report`) or via
``python -m repro report``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

__all__ = ["RESULT_ORDER", "build_report", "write_report"]

#: Hand-maintained history of the codec hot-path speed at 50k nnz
#: (end-to-end compress, best-of-rounds median on the reference
#: container, alternating-order A/B against the older tree).
CODEC_PERF_TRAJECTORY: Tuple[Tuple[str, str, str], ...] = (
    ("scalar baseline", "26.1 ms", "per-element Python loops in every kernel"),
    (
        "vectorised codec kernels",
        "6.0 ms",
        "batch quantile fit+encode, fused hash grid, scatter-min insert, "
        "single-pass delta key codec (4.3x; 3.8x at 5k, 4.1x at 200k)",
    ),
)

#: (result file stem, section heading) in the paper's presentation order.
RESULT_ORDER: Tuple[Tuple[str, str], ...] = (
    ("fig4_gradient_distribution", "Figure 4 — nonuniform gradient values"),
    ("fig8a_ablation_runtime", "Figure 8(a) — component ablation, epoch time"),
    ("fig8b_message_size", "Figure 8(b) — message size & compression rate"),
    ("fig8c_cpu_overhead", "Figure 8(c) — CPU overhead of compression"),
    ("fig8d_batch_sparsity", "Figure 8(d) — batch size & sparsity"),
    ("fig9_end_to_end_runtime", "Figure 9 — end-to-end run time per epoch"),
    ("fig10_convergence", "Figure 10 — loss vs wall-clock"),
    ("table2_model_accuracy", "Table 2 — converged loss / time"),
    ("fig11_scalability", "Figure 11 — scalability over workers"),
    ("fig12_single_node", "Figure 12 — vs a single-node system"),
    ("fig13_table3_sensitivity", "Figure 13 / Table 3 — sensitivity"),
    ("fig14_neural_net", "Figure 14 — neural network"),
    ("table4_weight_types", "Table 4 — weight types"),
    ("appendix_key_encoding", "§3.4 / A.3 — key codecs"),
    ("appendix_theory_bounds", "Appendix A — theory bounds"),
    ("ablation_minmax_vs_countmin", "Ablation — MinMax vs additive Count-Min"),
    ("ablation_sign_separation", "Ablation — pos/neg separation"),
    ("ablation_grouping", "Ablation — grouped sketches"),
    ("ablation_adam_vs_sgd", "Ablation — Adam vs SGD under decay"),
    ("extension_hybrid", "Extension — heavy-hitter hybrid"),
    ("extension_qsgd_variance", "Extension — quantile vs QSGD variance"),
    ("extension_ssp", "Extension — SSP parameter server"),
    ("extension_local_sgd", "Extension — Local SGD comparison"),
    ("extension_compensation", "Extension — decay compensation"),
    ("fleet_replay", "Fleet replay — trace-driven scaled fleets"),
)


def build_report(
    results_dir: str, trace: Optional[str] = None
) -> Tuple[str, List[str]]:
    """Assemble the report text from a results directory.

    With ``trace`` (a merged flight recording), a per-epoch
    critical-path attribution section is appended — where the wall
    time of the recorded run actually went.

    Returns:
        ``(markdown, missing)`` — the report body and the list of
        expected result stems that had no file yet.
    """
    sections: List[str] = [
        "# SketchML reproduction — consolidated results",
        "",
        "Generated from `benchmarks/results/` (run "
        "`pytest benchmarks/ --benchmark-only` to refresh). "
        "Shape commentary and paper-vs-measured tables live in "
        "EXPERIMENTS.md.",
        "",
    ]
    missing: List[str] = []
    extras: Dict[str, str] = {}
    if os.path.isdir(results_dir):
        extras = {
            fname[:-4]: os.path.join(results_dir, fname)
            for fname in sorted(os.listdir(results_dir))
            if fname.endswith(".txt")
        }
    for stem, heading in RESULT_ORDER:
        path = extras.pop(stem, None)
        sections.append(f"## {heading}")
        sections.append("")
        if path is None:
            missing.append(stem)
            sections.append("*(no archived result — bench not run yet)*")
        else:
            with open(path, "r", encoding="utf-8") as handle:
                sections.append("```")
                sections.append(handle.read().rstrip())
                sections.append("```")
        sections.append("")
    for stem, path in extras.items():
        sections.append(f"## {stem}")
        sections.append("")
        with open(path, "r", encoding="utf-8") as handle:
            sections.append("```")
            sections.append(handle.read().rstrip())
            sections.append("```")
        sections.append("")
    sections.extend(_codec_perf_section(results_dir))
    sections.extend(_soak_section(results_dir))
    if trace is not None:
        sections.extend(_critical_path_section(trace))
    return "\n".join(sections), missing


def _bench_json(results_dir: str) -> Dict[str, dict]:
    """The committed ``BENCH_codec.json`` kernel map (empty if absent)."""
    bench_path = os.path.join(
        os.path.dirname(os.path.abspath(results_dir.rstrip(os.sep))) or ".",
        os.pardir,
        "BENCH_codec.json",
    )
    if not os.path.isfile(bench_path):
        return {}
    with open(bench_path, "r", encoding="utf-8") as handle:
        return json.load(handle).get("kernels", {})


def _codec_perf_section(results_dir: str) -> List[str]:
    """Codec hot-path trajectory + the committed kernel baseline."""
    lines = [
        "## Codec performance trajectory",
        "",
        "End-to-end `SketchMLCompressor.compress` on a 50k-nnz synthetic "
        "gradient (`python -m repro perf` measures it; see DESIGN.md §6 "
        "for the kernel inventory):",
        "",
    ]
    for label, timing, note in CODEC_PERF_TRAJECTORY:
        lines.append(f"* **{label}** — {timing}: {note}")
    lines.append("")
    kernels = {
        name: entry
        for name, entry in _bench_json(results_dir).items()
        if not name.startswith(("soak/", "transport_echo/"))
    }
    if kernels:
        lines.append("Committed kernel baseline (`BENCH_codec.json`):")
        lines.append("")
        lines.append("```")
        lines.append(f"{'kernel':<24}{'median ms':>10}  {'ns/elem':>8}  {'MB/s':>8}")
        for name in sorted(kernels):
            entry = kernels[name]
            lines.append(
                f"{name:<24}{entry['median_ms']:>10.3f}  "
                f"{entry['ns_per_element']:>8.1f}  {entry['mb_per_s']:>8.1f}"
            )
        lines.append("```")
        lines.append("")
    return lines


def _soak_section(results_dir: str) -> List[str]:
    """High-concurrency gather soak from the committed benchmark file.

    Renders the ``soak/{mode}/w{N}`` rows that ``python -m repro perf
    --soak`` records: messages/s with p50/p99 per-message latency for
    the blocking ``tcp`` baseline vs the event-loop ``aio`` backend
    (barrier and overlapped-decode modes), plus throughput ratios
    against tcp at every worker count.
    """
    soak: Dict[int, Dict[str, dict]] = {}
    for name, entry in _bench_json(results_dir).items():
        if not name.startswith("soak/"):
            continue
        _, mode, workers = name.split("/")
        soak.setdefault(int(workers[1:]), {})[mode] = entry
    if not soak:
        return []
    lines = [
        "## High-concurrency gather soak",
        "",
        "`python -m repro perf --soak`: one service thread simulates "
        "hundreds of workers over real TCP sockets (seeded ~2 ms service "
        "delays, 1 % straggler stalls of 0.3–0.6 s); the driver gathers "
        "one serialized gradient message per worker per round and "
        "decodes every reply. `tcp` is the blocking id-order barrier "
        "baseline; `aio` services the same barrier in arrival order on "
        "the event loop; `aio-overlap` drops the barrier and re-arms "
        "each worker as soon as its reply decodes, so one straggler "
        "stalls one pipeline instead of all of them.",
        "",
        "```",
        f"{'cell':<22}{'msg/s':>9}  {'p50 ms':>8}  {'p99 ms':>8}  {'vs tcp':>7}",
    ]
    for workers in sorted(soak):
        modes = soak[workers]
        baseline = modes.get("tcp", {}).get("messages_per_s", 0.0)
        for mode in ("tcp", "aio", "aio-overlap"):
            entry = modes.get(mode)
            if entry is None:
                continue
            ratio = (
                f"{entry['messages_per_s'] / baseline:>6.2f}x"
                if baseline
                else f"{'—':>7}"
            )
            lines.append(
                f"{f'soak/{mode}/w{workers}':<22}"
                f"{entry['messages_per_s']:>9.1f}  {entry['p50_ms']:>8.1f}  "
                f"{entry['p99_ms']:>8.1f}  {ratio}"
            )
    lines.extend(["```", ""])
    return lines


def _critical_path_section(trace_path: str) -> List[str]:
    """Per-epoch critical-path attribution from a flight recording.

    Renders where each recorded epoch's wall time went
    (codec / compute / straggler wait / wire) using the live-ops
    causal DAG; a pre-ops trace (no span ids) degrades to a note
    instead of failing the whole report.
    """
    from ..telemetry.critical_path import critical_path, render_report
    from ..telemetry.merge import read_trace

    lines = [
        "## Critical path — where the recorded run's time went",
        "",
        f"From the flight recording `{trace_path}` "
        "(`repro trace <file> --critical-path` reproduces it):",
        "",
    ]
    try:
        report = critical_path(read_trace(trace_path))
    except (OSError, ValueError) as exc:
        lines.append(f"*(no attribution: {exc})*")
        lines.append("")
        return lines
    lines.append("```")
    lines.append(render_report(report))
    lines.append("```")
    lines.append("")
    return lines


def write_report(
    results_dir: str,
    out_path: Optional[str] = None,
    trace: Optional[str] = None,
) -> Tuple[str, List[str]]:
    """Build and write the report; returns ``(out_path, missing)``."""
    out_path = out_path or os.path.join(
        os.path.dirname(results_dir.rstrip(os.sep)) or ".", "REPORT.md"
    )
    markdown, missing = build_report(results_dir, trace=trace)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
        if not markdown.endswith("\n"):
            handle.write("\n")
    return out_path, missing
