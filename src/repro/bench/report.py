"""Consolidated reproduction report from the archived bench results.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, this module stitches every archived table and
series into a single markdown report (``REPORT.md`` by default) in the
paper's figure order — the one-file artifact a reviewer reads.

Usable as a library (:func:`build_report`) or via
``python -m repro report``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

__all__ = ["RESULT_ORDER", "build_report", "write_report"]

#: Hand-maintained history of the codec hot-path speed at 50k nnz
#: (end-to-end compress, best-of-rounds median on the reference
#: container, alternating-order A/B against the older tree).
CODEC_PERF_TRAJECTORY: Tuple[Tuple[str, str, str], ...] = (
    ("scalar baseline", "26.1 ms", "per-element Python loops in every kernel"),
    (
        "vectorised codec kernels",
        "6.0 ms",
        "batch quantile fit+encode, fused hash grid, scatter-min insert, "
        "single-pass delta key codec (4.3x; 3.8x at 5k, 4.1x at 200k)",
    ),
)

#: (result file stem, section heading) in the paper's presentation order.
RESULT_ORDER: Tuple[Tuple[str, str], ...] = (
    ("fig4_gradient_distribution", "Figure 4 — nonuniform gradient values"),
    ("fig8a_ablation_runtime", "Figure 8(a) — component ablation, epoch time"),
    ("fig8b_message_size", "Figure 8(b) — message size & compression rate"),
    ("fig8c_cpu_overhead", "Figure 8(c) — CPU overhead of compression"),
    ("fig8d_batch_sparsity", "Figure 8(d) — batch size & sparsity"),
    ("fig9_end_to_end_runtime", "Figure 9 — end-to-end run time per epoch"),
    ("fig10_convergence", "Figure 10 — loss vs wall-clock"),
    ("table2_model_accuracy", "Table 2 — converged loss / time"),
    ("fig11_scalability", "Figure 11 — scalability over workers"),
    ("fig12_single_node", "Figure 12 — vs a single-node system"),
    ("fig13_table3_sensitivity", "Figure 13 / Table 3 — sensitivity"),
    ("fig14_neural_net", "Figure 14 — neural network"),
    ("table4_weight_types", "Table 4 — weight types"),
    ("appendix_key_encoding", "§3.4 / A.3 — key codecs"),
    ("appendix_theory_bounds", "Appendix A — theory bounds"),
    ("ablation_minmax_vs_countmin", "Ablation — MinMax vs additive Count-Min"),
    ("ablation_sign_separation", "Ablation — pos/neg separation"),
    ("ablation_grouping", "Ablation — grouped sketches"),
    ("ablation_adam_vs_sgd", "Ablation — Adam vs SGD under decay"),
    ("extension_hybrid", "Extension — heavy-hitter hybrid"),
    ("extension_qsgd_variance", "Extension — quantile vs QSGD variance"),
    ("extension_ssp", "Extension — SSP parameter server"),
    ("extension_local_sgd", "Extension — Local SGD comparison"),
    ("extension_compensation", "Extension — decay compensation"),
)


def build_report(results_dir: str) -> Tuple[str, List[str]]:
    """Assemble the report text from a results directory.

    Returns:
        ``(markdown, missing)`` — the report body and the list of
        expected result stems that had no file yet.
    """
    sections: List[str] = [
        "# SketchML reproduction — consolidated results",
        "",
        "Generated from `benchmarks/results/` (run "
        "`pytest benchmarks/ --benchmark-only` to refresh). "
        "Shape commentary and paper-vs-measured tables live in "
        "EXPERIMENTS.md.",
        "",
    ]
    missing: List[str] = []
    extras: Dict[str, str] = {}
    if os.path.isdir(results_dir):
        extras = {
            fname[:-4]: os.path.join(results_dir, fname)
            for fname in sorted(os.listdir(results_dir))
            if fname.endswith(".txt")
        }
    for stem, heading in RESULT_ORDER:
        path = extras.pop(stem, None)
        sections.append(f"## {heading}")
        sections.append("")
        if path is None:
            missing.append(stem)
            sections.append("*(no archived result — bench not run yet)*")
        else:
            with open(path, "r", encoding="utf-8") as handle:
                sections.append("```")
                sections.append(handle.read().rstrip())
                sections.append("```")
        sections.append("")
    for stem, path in extras.items():
        sections.append(f"## {stem}")
        sections.append("")
        with open(path, "r", encoding="utf-8") as handle:
            sections.append("```")
            sections.append(handle.read().rstrip())
            sections.append("```")
        sections.append("")
    sections.extend(_codec_perf_section(results_dir))
    return "\n".join(sections), missing


def _codec_perf_section(results_dir: str) -> List[str]:
    """Codec hot-path trajectory + the committed kernel baseline."""
    lines = [
        "## Codec performance trajectory",
        "",
        "End-to-end `SketchMLCompressor.compress` on a 50k-nnz synthetic "
        "gradient (`python -m repro perf` measures it; see DESIGN.md §6 "
        "for the kernel inventory):",
        "",
    ]
    for label, timing, note in CODEC_PERF_TRAJECTORY:
        lines.append(f"* **{label}** — {timing}: {note}")
    lines.append("")
    bench_path = os.path.join(
        os.path.dirname(os.path.abspath(results_dir.rstrip(os.sep))) or ".",
        os.pardir,
        "BENCH_codec.json",
    )
    if os.path.isfile(bench_path):
        with open(bench_path, "r", encoding="utf-8") as handle:
            kernels = json.load(handle).get("kernels", {})
        if kernels:
            lines.append("Committed kernel baseline (`BENCH_codec.json`):")
            lines.append("")
            lines.append("```")
            lines.append(f"{'kernel':<24}{'median ms':>10}  {'ns/elem':>8}  {'MB/s':>8}")
            for name in sorted(kernels):
                entry = kernels[name]
                lines.append(
                    f"{name:<24}{entry['median_ms']:>10.3f}  "
                    f"{entry['ns_per_element']:>8.1f}  {entry['mb_per_s']:>8.1f}"
                )
            lines.append("```")
            lines.append("")
    return lines


def write_report(
    results_dir: str, out_path: Optional[str] = None
) -> Tuple[str, List[str]]:
    """Build and write the report; returns ``(out_path, missing)``."""
    out_path = out_path or os.path.join(
        os.path.dirname(results_dir.rstrip(os.sep)) or ".", "REPORT.md"
    )
    markdown, missing = build_report(results_dir)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
        if not markdown.endswith("\n"):
            handle.write("\n")
    return out_path, missing
