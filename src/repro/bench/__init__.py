"""Benchmark harness: experiment runner and table formatting."""

from .runner import (
    METHOD_LABELS,
    ExperimentSpec,
    clear_cache,
    load_split,
    method_factory,
    run_experiment,
)
from .ascii_plot import bar_chart, line_chart, sparkline
from .tables import format_series, format_table, write_result

__all__ = [
    "ExperimentSpec",
    "run_experiment",
    "method_factory",
    "load_split",
    "clear_cache",
    "METHOD_LABELS",
    "format_table",
    "format_series",
    "write_result",
    "line_chart",
    "bar_chart",
    "sparkline",
]
