"""Plain-text table/series formatting for benchmark output.

Every figure-reproduction bench prints (and archives) its result in the
same row/series form the paper reports, so EXPERIMENTS.md can quote the
output verbatim.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Sequence

__all__ = ["format_table", "format_series", "write_result"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if not math.isfinite(value):
            # e.g. compression_rate with zero bytes on the wire: the
            # ratio is undefined, not a huge number — show a dash.
            return "—"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[Sequence[float]],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 30,
) -> str:
    """Render an (x, y) series — the textual form of a figure curve."""
    lines = [f"series {name!r} ({x_label} -> {y_label}):"]
    step = max(1, len(points) // max_points)
    shown = list(points)[::step]
    if points and shown[-1] is not points[-1]:
        shown.append(points[-1])
    for x, y in shown:
        lines.append(f"  {_format_cell(float(x)):>12s}  {_format_cell(float(y))}")
    return "\n".join(lines)


def write_result(name: str, content: str, directory: Optional[str] = None) -> str:
    """Persist a bench result under ``benchmarks/results`` and return it.

    The directory defaults to ``$REPRO_RESULTS_DIR`` or
    ``benchmarks/results`` relative to the current working directory.
    """
    directory = directory or os.environ.get(
        "REPRO_RESULTS_DIR", os.path.join("benchmarks", "results")
    )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
        if not content.endswith("\n"):
            handle.write("\n")
    return content
