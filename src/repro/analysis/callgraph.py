"""Project call graph: module-qualified name resolution over the package.

The shallow lint tier (:mod:`repro.lint`) sees one module at a time, so
a blocking call or an unseeded RNG hidden behind one level of helper
indirection is invisible to it.  This module builds the whole-program
view the ``--deep`` rules need:

* every module is parsed into the same :class:`~repro.lint.framework.
  ModuleSource` the shallow rules use, then indexed into
  module-qualified symbols (``repro.runtime.aio.AioTransport._pump``);
* imports — ``import m``, ``import m as alias``, ``from m import n as
  z``, and *relative* forms (``from .framing import ...``, ``from ..
  import telemetry``) — are resolved to absolute dotted names, and
  re-exports through package ``__init__`` modules are followed;
* method calls resolve via class-attribute lookup: ``self.m()`` walks
  the MRO (project classes only), ``self.x.m()`` uses the attribute
  types inferred from ``self.x = SomeClass(...)`` / annotated-parameter
  assignments in ``__init__``, and locally-typed variables
  (``v = SomeClass(...)``, ``def f(t: Transport)``) resolve the same
  way — with every project *override* of the method included, so
  reachability through an abstract base is sound;
* what cannot be resolved — an attribute call on an unknown receiver, a
  call through a function-valued parameter — is **recorded, not
  dropped**: every :class:`BlindSpot` names the caller, the receiver
  expression, and the line, and the driver reports the count so the
  dynamic-dispatch limitation stays visible instead of silently
  shrinking the graph.

The result is a :class:`Project`: functions, classes, project call
edges, external calls (resolved dotted names that leave the package,
e.g. ``time.sleep``), unresolved method calls, and blind spots — plus
:meth:`Project.reachable` / :meth:`Project.call_path` for the
reachability rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..lint.framework import ModuleSource, dotted_name

__all__ = [
    "PACKAGE_ROOT_NAME",
    "module_name_for_relpath",
    "CallSite",
    "BlindSpot",
    "FunctionNode",
    "ClassInfo",
    "Project",
    "build_project",
    "build_project_from_sources",
]

#: All project symbols live under this dotted root (the package name).
PACKAGE_ROOT_NAME = "repro"

#: Names that are near-certainly builtins when they resolve to nothing
#: local — calling one is not a dynamic-dispatch blind spot.
_BUILTIN_NAMES = frozenset(
    {
        "abs", "all", "any", "bool", "bytearray", "bytes", "callable",
        "chr", "classmethod", "dict", "divmod", "enumerate", "filter",
        "float", "format", "frozenset", "getattr", "hasattr", "hash",
        "hex", "id", "int", "isinstance", "issubclass", "iter", "len",
        "list", "map", "max", "memoryview", "min", "next", "object",
        "open", "ord", "pow", "print", "property", "range", "repr",
        "reversed", "round", "set", "setattr", "slice", "sorted",
        "staticmethod", "str", "sum", "super", "tuple", "type", "vars",
        "zip", "ValueError", "TypeError", "RuntimeError", "KeyError",
        "IndexError", "AttributeError", "OSError", "StopIteration",
        "NotImplementedError", "Exception", "BaseException",
        "ArithmeticError", "OverflowError", "ZeroDivisionError",
        "AssertionError", "EOFError", "BlockingIOError",
        "InterruptedError", "BrokenPipeError", "FileNotFoundError",
        "PermissionError", "TimeoutError", "ConnectionError",
        "KeyboardInterrupt", "SystemExit", "UnicodeDecodeError",
        "BufferError", "LookupError", "NameError", "dir", "input",
    }
)


def module_name_for_relpath(relpath: str) -> str:
    """Dotted module name for a package-relative path.

    ``runtime/aio.py`` → ``repro.runtime.aio``;
    ``core/__init__.py`` → ``repro.core``; ``__init__.py`` → ``repro``.
    """
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [p for p in path.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([PACKAGE_ROOT_NAME] + parts)


@dataclass
class CallSite:
    """One resolved call expression inside a function body.

    Exactly one of the three shapes applies:

    * ``targets`` non-empty — project functions this call may invoke
      (several under class-hierarchy dispatch);
    * ``external`` set — an absolute dotted name that leaves the
      project (``time.sleep``, ``struct.pack``, ``numpy.frombuffer``);
    * ``method`` set — an attribute call whose receiver could not be
      typed (``conn.sock.recv_into`` where ``sock`` is external): the
      method *name* is still available for pattern rules.
    """

    node: ast.Call
    targets: Tuple[str, ...] = ()
    external: Optional[str] = None
    method: Optional[str] = None


@dataclass(frozen=True)
class BlindSpot:
    """A call the resolver could not follow (dynamic dispatch)."""

    caller: str
    receiver: str
    line: int


@dataclass
class FunctionNode:
    """One function/method (or a module's import-time body)."""

    qualname: str
    name: str
    module: ModuleSource
    relpath: str
    node: ast.AST
    cls: Optional[str] = None
    call_sites: List[CallSite] = field(default_factory=list)

    @property
    def is_module_body(self) -> bool:
        return self.name == "<module>"


@dataclass
class ClassInfo:
    """One project class: bases, methods, inferred attribute types."""

    qualname: str
    name: str
    module: ModuleSource
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionNode] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


class Project:
    """The whole-program model the ``--deep`` rules run over."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSource] = {}  # relpath -> source
        self.modules_by_name: Dict[str, ModuleSource] = {}
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.blind_spots: List[BlindSpot] = []
        self.subclasses: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())

    def functions_in(self, relpaths: Iterable[str]) -> List[str]:
        """Qualnames of all functions defined in the given relpaths."""
        wanted = set(relpaths)
        return sorted(
            q for q, fn in self.functions.items() if fn.relpath in wanted
        )

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """All functions transitively callable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(
                t for t in self.edges.get(cur, ()) if t not in seen
            )
        return seen

    def call_path(
        self, roots: Iterable[str], target: str
    ) -> Optional[List[str]]:
        """Shortest call chain from any root to ``target`` (BFS)."""
        from collections import deque

        parents: Dict[str, Optional[str]] = {}
        queue = deque()
        for root in sorted(set(roots)):
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            cur = queue.popleft()
            if cur == target:
                path = [cur]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for nxt in sorted(self.edges.get(cur, ())):
                if nxt not in parents:
                    parents[nxt] = cur
                    queue.append(nxt)
        return None

    # ------------------------------------------------------------------
    def mro(self, class_qual: str) -> List[str]:
        """Linearised project-class ancestry (BFS; external bases skipped)."""
        order: List[str] = []
        queue = [class_qual]
        while queue:
            cur = queue.pop(0)
            if cur in order or cur not in self.classes:
                continue
            order.append(cur)
            queue.extend(self.classes[cur].bases)
        return order

    def lookup_method(
        self, class_qual: str, name: str, *, include_overrides: bool = False
    ) -> List[str]:
        """Resolve ``<class>.<name>`` via the MRO (class-attr lookup).

        With ``include_overrides`` the overrides defined by project
        subclasses of ``class_qual`` are added — the class-hierarchy
        dispatch set a call through a base-typed variable may reach.
        """
        targets: List[str] = []
        for cls in self.mro(class_qual):
            method = self.classes[cls].methods.get(name)
            if method is not None:
                targets.append(method.qualname)
                break
        if include_overrides:
            for sub in sorted(self._all_subclasses(class_qual)):
                method = self.classes[sub].methods.get(name)
                if method is not None and method.qualname not in targets:
                    targets.append(method.qualname)
        return targets

    def _all_subclasses(self, class_qual: str) -> Set[str]:
        out: Set[str] = set()
        stack = list(self.subclasses.get(class_qual, ()))
        while stack:
            cur = stack.pop()
            if cur in out:
                continue
            out.add(cur)
            stack.extend(self.subclasses.get(cur, ()))
        return out


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def build_project(modules: Sequence[ModuleSource]) -> Project:
    """Index modules, resolve imports, and wire the call graph."""
    builder = _Builder(modules)
    return builder.build()


def build_project_from_sources(sources: Dict[str, str]) -> Project:
    """Build a project from ``{relpath: source}`` (fixture entry point)."""
    modules = [
        ModuleSource(relpath, text, relpath=relpath)
        for relpath, text in sorted(sources.items())
    ]
    return build_project(modules)


class _Builder:
    def __init__(self, modules: Sequence[ModuleSource]) -> None:
        self.project = Project()
        for module in modules:
            self.project.modules[module.relpath] = module
            self.project.modules_by_name[
                module_name_for_relpath(module.relpath)
            ] = module

    # -- pass 1: symbol index ------------------------------------------
    def build(self) -> Project:
        for relpath, module in sorted(self.project.modules.items()):
            self._index_module(module)
        for cls in self.project.classes.values():
            self._resolve_bases(cls)
        for cls in self.project.classes.values():
            self._infer_attr_types(cls)
        for fn in list(self.project.functions.values()):
            self._resolve_calls(fn)
        return self.project

    def _index_module(self, module: ModuleSource) -> None:
        mod_name = module_name_for_relpath(module.relpath)
        body_fn = FunctionNode(
            qualname=f"{mod_name}.<module>",
            name="<module>",
            module=module,
            relpath=module.relpath,
            node=module.tree,
        )
        self.project.functions[body_fn.qualname] = body_fn
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionNode(
                    qualname=f"{mod_name}.{node.name}",
                    name=node.name,
                    module=module,
                    relpath=module.relpath,
                    node=node,
                )
                self.project.functions[fn.qualname] = fn
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{mod_name}.{node.name}",
                    name=node.name,
                    module=module,
                    node=node,
                )
                self.project.classes[cls.qualname] = cls
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        fn = FunctionNode(
                            qualname=f"{cls.qualname}.{item.name}",
                            name=item.name,
                            module=module,
                            relpath=module.relpath,
                            node=item,
                            cls=cls.qualname,
                        )
                        cls.methods[item.name] = fn
                        self.project.functions[fn.qualname] = fn

    # -- import resolution ---------------------------------------------
    def _absolute_module(self, module: ModuleSource, mod_str: str) -> str:
        """Absolute dotted module for an import spec (dots resolved)."""
        level = 0
        while level < len(mod_str) and mod_str[level] == ".":
            level += 1
        rest = mod_str[level:]
        if level == 0:
            return rest
        cur = module_name_for_relpath(module.relpath)
        if module.relpath.endswith("__init__.py") or "/" not in module.relpath:
            # A package __init__ anchors at itself; a top-level module
            # anchors at the package root.
            pkg = cur if module.relpath.endswith("__init__.py") else (
                cur.rsplit(".", 1)[0] if "." in cur else cur
            )
        else:
            pkg = cur.rsplit(".", 1)[0]
        for _ in range(level - 1):
            if "." in pkg:
                pkg = pkg.rsplit(".", 1)[0]
        return f"{pkg}.{rest}" if rest else pkg

    def _resolve_local(
        self, module: ModuleSource, name: str
    ) -> Optional[str]:
        """Absolute dotted name a module-local identifier refers to."""
        mod_name = module_name_for_relpath(module.relpath)
        if f"{mod_name}.{name}" in self.project.functions:
            return f"{mod_name}.{name}"
        if f"{mod_name}.{name}" in self.project.classes:
            return f"{mod_name}.{name}"
        if name in module.from_imports:
            src, original = module.from_imports[name]
            base = self._absolute_module(module, src)
            return f"{base}.{original}" if base else original
        if name in module.import_aliases:
            return module.import_aliases[name]
        return None

    def _resolve_dotted(
        self, module: ModuleSource, dotted: str
    ) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        base = self._resolve_local(module, head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    def _lookup_symbol(self, dotted: str, depth: int = 0):
        """Project symbol for an absolute dotted name, re-exports followed.

        ``repro.telemetry.counter`` resolves through the package
        ``__init__``'s ``from .recorder import counter`` to the real
        :class:`FunctionNode`.  Returns a FunctionNode, a ClassInfo, or
        ``None`` (external).
        """
        if depth > 8 or not dotted:
            return None
        if dotted in self.project.functions:
            return self.project.functions[dotted]
        if dotted in self.project.classes:
            return self.project.classes[dotted]
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            module = self.project.modules_by_name.get(prefix)
            if module is None:
                continue
            target = self._resolve_local(module, parts[i])
            if target is None:
                return None
            rest = parts[i + 1:]
            return self._lookup_symbol(
                ".".join([target] + rest) if rest else target, depth + 1
            )
        return None

    # -- pass 2: class hierarchy + attribute types ---------------------
    def _resolve_bases(self, cls: ClassInfo) -> None:
        for base_expr in cls.node.bases:
            name = dotted_name(base_expr)
            if name is None:
                continue
            resolved = self._resolve_dotted(cls.module, name)
            if resolved is None:
                continue
            sym = self._lookup_symbol(resolved)
            if isinstance(sym, ClassInfo):
                cls.bases.append(sym.qualname)
                self.project.subclasses.setdefault(sym.qualname, set()).add(
                    cls.qualname
                )

    def _class_of_expr(
        self,
        module: ModuleSource,
        expr: ast.expr,
        param_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Project class an expression evaluates to, if inferable."""
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is None:
                return None
            resolved = self._resolve_dotted(module, name)
            if resolved is None:
                return None
            sym = self._lookup_symbol(resolved)
            if isinstance(sym, ClassInfo):
                return sym.qualname
            return None
        if isinstance(expr, ast.Name) and param_types:
            return param_types.get(expr.id)
        return None

    def _annotation_class(
        self, module: ModuleSource, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        if annotation is None:
            return None
        name = dotted_name(annotation)
        if name is None:
            # Optional["Transport"] and friends: try string constants.
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                name = annotation.value
            else:
                return None
        resolved = self._resolve_dotted(module, name)
        if resolved is None:
            return None
        sym = self._lookup_symbol(resolved)
        return sym.qualname if isinstance(sym, ClassInfo) else None

    def _param_types(self, module: ModuleSource, fn_node) -> Dict[str, str]:
        out: Dict[str, str] = {}
        if not isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return out
        args = fn_node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            cls = self._annotation_class(module, arg.annotation)
            if cls is not None:
                out[arg.arg] = cls
        return out

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        """``self.x = SomeClass(...)`` / annotated-param assigns → types."""
        for method in cls.methods.values():
            param_types = self._param_types(cls.module, method.node)
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        inferred = self._class_of_expr(
                            cls.module, node.value, param_types
                        )
                        if inferred is not None:
                            cls.attr_types.setdefault(target.attr, inferred)

    # -- pass 3: call sites --------------------------------------------
    def _local_var_types(self, fn: FunctionNode) -> Dict[str, str]:
        types = self._param_types(fn.module, fn.node)
        cls = self.project.classes.get(fn.cls) if fn.cls else None
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                inferred = self._class_of_expr(fn.module, node.value, types)
                if inferred is None and isinstance(node.value, ast.Name):
                    inferred = types.get(node.value.id)
                if (
                    inferred is None
                    and cls is not None
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                ):
                    inferred = cls.attr_types.get(node.value.attr)
                if inferred is not None:
                    types.setdefault(target.id, inferred)
        return types

    def _iter_own_calls(self, fn: FunctionNode) -> Iterator[ast.Call]:
        """Call expressions belonging to this function.

        A module-body pseudo-function owns only the import-time calls —
        everything outside ``def``/``class`` bodies (class-level
        assignments run at import and count too).  Real functions own
        every call in their body, including nested ``def``s/lambdas
        (conservative: the nested code typically runs on their behalf).
        """
        if not fn.is_module_body:
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    yield node
            return

        def walk_stmts(stmts, in_class: bool) -> Iterator[ast.Call]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # decorators/defaults evaluate at import time
                    for expr in list(stmt.decorator_list) + list(
                        stmt.args.defaults
                    ):
                        for node in ast.walk(expr):
                            if isinstance(node, ast.Call):
                                yield node
                    continue
                if isinstance(stmt, ast.ClassDef):
                    for expr in list(stmt.decorator_list) + list(stmt.bases):
                        for node in ast.walk(expr):
                            if isinstance(node, ast.Call):
                                yield node
                    for sub in walk_stmts(stmt.body, True):
                        yield sub
                    continue
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        yield node

        for call in walk_stmts(fn.node.body, False):
            yield call

    def _resolve_calls(self, fn: FunctionNode) -> None:
        var_types = (
            {} if fn.is_module_body else self._local_var_types(fn)
        )
        param_names = set()
        if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = fn.node.args
            param_names = {
                a.arg
                for a in list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            }
        for call in self._iter_own_calls(fn):
            site = self._resolve_one_call(fn, call, var_types, param_names)
            fn.call_sites.append(site)
            for target in site.targets:
                self.project.edges.setdefault(fn.qualname, set()).add(target)

    def _class_targets(self, cls_qual: str, attr: str) -> Tuple[str, ...]:
        return tuple(
            self.project.lookup_method(cls_qual, attr, include_overrides=True)
        )

    def _function_or_init(self, sym) -> Tuple[str, ...]:
        if isinstance(sym, FunctionNode):
            return (sym.qualname,)
        if isinstance(sym, ClassInfo):
            init = self.project.lookup_method(sym.qualname, "__init__")
            return tuple(init)
        return ()

    def _resolve_one_call(
        self,
        fn: FunctionNode,
        call: ast.Call,
        var_types: Dict[str, str],
        param_names: Set[str],
    ) -> CallSite:
        func = call.func
        # super().m(...) — dispatch up the MRO from the owning class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and fn.cls is not None
        ):
            for base in self.project.mro(fn.cls)[1:]:
                targets = self.project.lookup_method(base, func.attr)
                if targets:
                    return CallSite(call, targets=tuple(targets))
            return CallSite(call, method=func.attr)
        name = dotted_name(func)
        if name is None:
            if isinstance(func, ast.Attribute):
                return CallSite(call, method=func.attr)
            self.project.blind_spots.append(
                BlindSpot(fn.qualname, ast.dump(func)[:60], call.lineno)
            )
            return CallSite(call)
        parts = name.split(".")
        head = parts[0]
        if head in ("self", "cls") and fn.cls is not None:
            cls = self.project.classes[fn.cls]
            if len(parts) == 2:
                targets = self._class_targets(fn.cls, parts[1])
                if targets:
                    return CallSite(call, targets=targets)
                self.project.blind_spots.append(
                    BlindSpot(fn.qualname, name, call.lineno)
                )
                return CallSite(call, method=parts[1])
            if len(parts) == 3 and parts[1] in cls.attr_types:
                targets = self._class_targets(cls.attr_types[parts[1]], parts[2])
                if targets:
                    return CallSite(call, targets=targets)
            self.project.blind_spots.append(
                BlindSpot(fn.qualname, name, call.lineno)
            )
            return CallSite(call, method=parts[-1])
        if head in var_types:
            if len(parts) == 1:
                # calling an instance: __call__ dispatch is out of scope
                self.project.blind_spots.append(
                    BlindSpot(fn.qualname, name, call.lineno)
                )
                return CallSite(call)
            if len(parts) == 2:
                targets = self._class_targets(var_types[head], parts[1])
                if targets:
                    return CallSite(call, targets=targets)
            self.project.blind_spots.append(
                BlindSpot(fn.qualname, name, call.lineno)
            )
            return CallSite(call, method=parts[-1])
        resolved = self._resolve_dotted(fn.module, name)
        if resolved is not None:
            sym = self._lookup_symbol(resolved)
            targets = self._function_or_init(sym)
            if targets:
                return CallSite(call, targets=targets)
            if isinstance(sym, ClassInfo):
                # instantiation of a project class without __init__:
                # still an internal event, not an external call
                return CallSite(call)
            return CallSite(
                call,
                external=resolved,
                method=parts[-1] if isinstance(func, ast.Attribute) else None,
            )
        if isinstance(func, ast.Name):
            if name in _BUILTIN_NAMES:
                return CallSite(call, external=name)
            if name in param_names:
                self.project.blind_spots.append(
                    BlindSpot(
                        fn.qualname, f"{name} (function-valued parameter)",
                        call.lineno,
                    )
                )
                return CallSite(call)
            return CallSite(call, external=name)
        self.project.blind_spots.append(
            BlindSpot(fn.qualname, name, call.lineno)
        )
        return CallSite(call, method=func.attr)
