"""Findings baseline: CI fails only on *new* deep findings.

An interprocedural tier bootstrapped onto a living tree starts with
known findings that are triaged over time; blocking every CI run on
them would force a flag day.  The committed ``analysis-baseline.json``
records the accepted findings as *counted keys*; at check time the
current findings are subtracted against it and only the excess is
reported.

Keys are ``rule :: package-relative path :: message`` — deliberately
**not** line numbers, so unrelated edits above a baselined finding do
not resurrect it.  Counted (a multiset), so introducing a *second*
instance of an already-baselined finding still fails.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Tuple

from ..lint.framework import Finding, _infer_relpath

__all__ = [
    "BASELINE_VERSION",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "subtract_baseline",
]

BASELINE_VERSION = 1


def baseline_key(finding: Finding) -> str:
    """Stable identity of a finding across checkouts and line drift."""
    return "::".join(
        (finding.rule_id, _infer_relpath(finding.path), finding.message)
    )


def load_baseline(path: str) -> Dict[str, int]:
    """Counted baseline keys from ``path``; empty if the file is absent."""
    if not os.path.isfile(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError(f"{path}: not a findings baseline")
    counts: Dict[str, int] = {}
    for entry in doc["findings"]:
        counts[entry["key"]] = int(entry.get("count", 1))
    return counts


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Record the current findings as the accepted baseline."""
    counts: Dict[str, int] = {}
    for finding in findings:
        key = baseline_key(finding)
        counts[key] = counts.get(key, 0) + 1
    doc = {
        "version": BASELINE_VERSION,
        "tool": "repro-lint-deep",
        "findings": [
            {"key": key, "count": count}
            for key, count in sorted(counts.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def subtract_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Findings not covered by the baseline, plus how many were absorbed.

    Consumes baseline budget per key in encounter order (findings are
    sorted by location upstream, so which duplicates survive is
    deterministic).
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    absorbed = 0
    for finding in findings:
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            new.append(finding)
    return new, absorbed
