"""Analysis utilities: gradient/compressor analytics and the deep
static-analysis tier.

Two families share this package:

* **Data analytics** — gradient profiling, dataset statistics, and
  compressor comparison sweeps used by the experiment harness.
* **Whole-program static analysis** — the interprocedural tier behind
  ``python -m repro lint --deep``: a project call graph
  (:mod:`~repro.analysis.callgraph`), a forward dataflow engine
  (:mod:`~repro.analysis.dataflow`), the reachability/flow rules
  (``reactor-reachability``, ``wire-escape``, ``seed-flow``,
  ``lock-order``), the findings baseline, and the SARIF emitter.
  Importing this package registers the deep rules into the shared
  lint registry.
"""

from .compression_report import (
    CompressorReportRow,
    compare_compressors,
    format_report,
)
from .dataset_stats import DatasetStats, dataset_stats
from .gradient_stats import GradientProfile, histogram, profile_gradient
from .sweeps import SweepCell, sweep_sketch_configs

from .callgraph import (
    BlindSpot,
    CallSite,
    ClassInfo,
    FunctionNode,
    Project,
    build_project,
    build_project_from_sources,
    module_name_for_relpath,
)
from .dataflow import CFG, BasicBlock, ForwardAnalysis, build_cfg
from .driver import DeepStats, analyze_paths, deep_rules
from .baseline import (
    baseline_key,
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from .sarif import render_sarif, to_sarif

# Importing the rule modules registers the deep rules.
from . import rules_flow  # noqa: F401  (registration import)
from . import rules_reachability  # noqa: F401  (registration import)

__all__ = [
    "GradientProfile",
    "profile_gradient",
    "histogram",
    "CompressorReportRow",
    "compare_compressors",
    "format_report",
    "DatasetStats",
    "dataset_stats",
    "SweepCell",
    "sweep_sketch_configs",
    "BlindSpot",
    "CallSite",
    "ClassInfo",
    "FunctionNode",
    "Project",
    "build_project",
    "build_project_from_sources",
    "module_name_for_relpath",
    "CFG",
    "BasicBlock",
    "ForwardAnalysis",
    "build_cfg",
    "DeepStats",
    "analyze_paths",
    "deep_rules",
    "baseline_key",
    "load_baseline",
    "subtract_baseline",
    "write_baseline",
    "render_sarif",
    "to_sarif",
]
