"""Analysis utilities: gradient profiling and compressor comparison."""

from .compression_report import (
    CompressorReportRow,
    compare_compressors,
    format_report,
)
from .dataset_stats import DatasetStats, dataset_stats
from .gradient_stats import GradientProfile, histogram, profile_gradient
from .sweeps import SweepCell, sweep_sketch_configs

__all__ = [
    "GradientProfile",
    "profile_gradient",
    "histogram",
    "CompressorReportRow",
    "compare_compressors",
    "format_report",
    "DatasetStats",
    "dataset_stats",
    "SweepCell",
    "sweep_sketch_configs",
]
