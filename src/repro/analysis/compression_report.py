"""Side-by-side comparison of every registered compressor.

Runs each codec over the same gradient and reports size, compression
rate, reconstruction error, sign safety, and measured encode/decode
time — the quick what-should-I-use answer for a downstream user, and
the engine behind ``python -m repro compare``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..compression import available_compressors, make_compressor

__all__ = ["CompressorReportRow", "compare_compressors", "format_report"]


@dataclass(frozen=True)
class CompressorReportRow:
    """One codec's measurements on a reference gradient."""

    name: str
    num_bytes: int
    compression_rate: float
    keys_lossless: bool
    value_mae: float
    signs_preserved: bool
    encode_seconds: float
    decode_seconds: float


def compare_compressors(
    keys: np.ndarray,
    values: np.ndarray,
    dimension: int,
    names: Optional[Sequence[str]] = None,
) -> List[CompressorReportRow]:
    """Run each named (default: all registered) codec on one gradient.

    Codecs that drop entries (top-k) report the MAE over the entries
    they kept and ``keys_lossless=False``.
    """
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    rows: List[CompressorReportRow] = []
    for name in names or available_compressors():
        compressor = make_compressor(name)
        t0 = time.perf_counter()
        message = compressor.compress(keys, values, dimension)
        t1 = time.perf_counter()
        out_keys, out_values = compressor.decompress(message)
        t2 = time.perf_counter()

        keys_lossless = np.array_equal(out_keys, keys)
        if keys_lossless:
            mae = float(np.mean(np.abs(out_values - values)))
            signs = bool(np.all(np.sign(out_values) * np.sign(values) >= 0))
        else:
            original = dict(zip(keys.tolist(), values.tolist()))
            kept = np.asarray([original[k] for k in out_keys.tolist()])
            mae = (
                float(np.mean(np.abs(out_values - kept))) if kept.size else 0.0
            )
            signs = bool(np.all(np.sign(out_values) * np.sign(kept) >= 0))
        rows.append(
            CompressorReportRow(
                name=name,
                num_bytes=message.num_bytes,
                compression_rate=message.compression_rate,
                keys_lossless=keys_lossless,
                value_mae=mae,
                signs_preserved=signs,
                encode_seconds=t1 - t0,
                decode_seconds=t2 - t1,
            )
        )
    rows.sort(key=lambda r: r.num_bytes)
    return rows


def format_report(rows: Sequence[CompressorReportRow]) -> str:
    """Render a report as an aligned text table."""
    from ..bench.tables import format_table

    return format_table(
        ["codec", "bytes", "rate", "keys", "value MAE", "signs",
         "enc ms", "dec ms"],
        [
            [
                r.name,
                r.num_bytes,
                round(r.compression_rate, 2),
                "lossless" if r.keys_lossless else "subset",
                round(r.value_mae, 6),
                "safe" if r.signs_preserved else "FLIPPED",
                round(r.encode_seconds * 1e3, 2),
                round(r.decode_seconds * 1e3, 2),
            ]
            for r in rows
        ],
        title="compressor comparison (sorted by size)",
    )
