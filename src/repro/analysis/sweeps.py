"""Hyper-parameter sweep over SketchML configs on a reference gradient.

The engine behind Figure 13 / Table 3 style sensitivity studies, usable
standalone: evaluate a grid of :class:`~repro.core.config.SketchMLConfig`
overrides on one gradient and report size / error / timing per cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.compressor import SketchMLCompressor
from ..core.config import SketchMLConfig

__all__ = ["SweepCell", "sweep_sketch_configs"]


@dataclass(frozen=True)
class SweepCell:
    """One grid point's measurements."""

    overrides: Dict[str, object]
    num_bytes: int
    compression_rate: float
    mean_abs_error: float
    max_abs_error: float
    encode_seconds: float
    decode_seconds: float

    def label(self) -> str:
        if not self.overrides:
            return "default"
        return ",".join(f"{k}={v}" for k, v in sorted(self.overrides.items()))


def sweep_sketch_configs(
    keys: np.ndarray,
    values: np.ndarray,
    dimension: int,
    grid: Sequence[Dict[str, object]],
    base: SketchMLConfig = None,
) -> List[SweepCell]:
    """Evaluate each override dict in ``grid`` on one gradient.

    Args:
        keys / values / dimension: the reference sparse gradient.
        grid: override dicts applied to ``base`` (``{}`` = the base
            config itself).
        base: starting config (default: the paper's defaults).

    Returns:
        One :class:`SweepCell` per grid point, in grid order.
    """
    base = base or SketchMLConfig()
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    cells: List[SweepCell] = []
    for overrides in grid:
        config = base.with_overrides(**overrides)
        compressor = SketchMLCompressor(config)
        t0 = time.perf_counter()
        message = compressor.compress(keys, values, dimension)
        t1 = time.perf_counter()
        _, decoded = compressor.decompress(message)
        t2 = time.perf_counter()
        errors = np.abs(decoded - values)
        cells.append(
            SweepCell(
                overrides=dict(overrides),
                num_bytes=message.num_bytes,
                compression_rate=message.compression_rate,
                mean_abs_error=float(errors.mean()) if errors.size else 0.0,
                max_abs_error=float(errors.max()) if errors.size else 0.0,
                encode_seconds=t1 - t0,
                decode_seconds=t2 - t1,
            )
        )
    return cells
