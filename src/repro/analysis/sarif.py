"""Minimal SARIF 2.1.0 emitter for lint findings.

SARIF (Static Analysis Results Interchange Format) is what code-review
UIs and CI annotation surfaces ingest.  This writes the minimal valid
subset: one run, the tool driver with its rule catalogue, and one
result per finding with a physical location.  Columns are converted
from the linter's 0-based ``col`` to SARIF's 1-based ``startColumn``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

from ..lint.framework import Finding

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

_LEVEL_FOR_SEVERITY = {"error": "error", "warning": "warning"}


def to_sarif(
    findings: Iterable[Finding],
    rule_rows: Sequence[Tuple[str, str, str]],
    tool_name: str = "repro-lint",
) -> Dict[str, object]:
    """Build the SARIF document as a plain dict.

    ``rule_rows`` is ``(rule_id, severity, description)`` — the output
    of :func:`repro.lint.framework.rule_descriptions` — so the rule
    catalogue always matches the registry that produced the findings.
    """
    rules: List[Dict[str, object]] = [
        {
            "id": rule_id,
            "shortDescription": {"text": description},
            "defaultConfiguration": {
                "level": _LEVEL_FOR_SEVERITY.get(severity, "warning")
            },
        }
        for rule_id, severity, description in rule_rows
    ]
    results: List[Dict[str, object]] = [
        {
            "ruleId": finding.rule_id,
            "level": _LEVEL_FOR_SEVERITY.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": {"name": tool_name, "rules": rules}},
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Iterable[Finding],
    rule_rows: Sequence[Tuple[str, str, str]],
    tool_name: str = "repro-lint",
) -> str:
    return json.dumps(
        to_sarif(findings, rule_rows, tool_name), indent=2, sort_keys=True
    )
