"""Dataset-level statistics: the Table-1 style summary plus skew measures.

Answers, for any :class:`~repro.data.sparse.SparseDataset`, the
questions the paper's experiment setup answers for KDD10/KDD12/CTR:
size, density, feature-popularity skew (the Zipf head that drives both
gradient nonuniformity and the Fig. 11 saturation), and label balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.sparse import SparseDataset

__all__ = ["DatasetStats", "dataset_stats"]


@dataclass(frozen=True)
class DatasetStats:
    """Summary of a sparse dataset.

    Attributes:
        num_rows / num_features / nnz: Table-1 numbers.
        density: ``nnz / (rows * features)``.
        avg_nnz_per_row / max_nnz_per_row: row-size profile.
        head_mass_100: fraction of all nonzeros hitting the 100 most
            popular features — the Zipf-head concentration.
        active_features: features appearing at least once.
        estimated_zipf_exponent: log-log slope fit of the feature
            frequency/rank curve (≈ the generator's ``zipf_exponent``).
        positive_label_fraction: share of +1 labels (classification).
    """

    num_rows: int
    num_features: int
    nnz: int
    density: float
    avg_nnz_per_row: float
    max_nnz_per_row: int
    head_mass_100: float
    active_features: int
    estimated_zipf_exponent: float
    positive_label_fraction: float


def dataset_stats(dataset: SparseDataset) -> DatasetStats:
    """Compute a :class:`DatasetStats` for a dataset."""
    if dataset.num_rows == 0 or dataset.nnz == 0:
        raise ValueError("cannot summarise an empty dataset")
    counts = np.bincount(dataset.indices, minlength=dataset.num_features)
    sorted_counts = np.sort(counts)[::-1]
    head_mass = float(sorted_counts[:100].sum() / dataset.nnz)
    active = int((counts > 0).sum())

    # Log-log regression of frequency vs rank over the active head.
    top = sorted_counts[sorted_counts > 0][:1_000]
    if top.size >= 10:
        ranks = np.arange(1, top.size + 1, dtype=np.float64)
        slope = np.polyfit(np.log(ranks), np.log(top.astype(np.float64)), 1)[0]
        zipf_exponent = float(-slope)
    else:
        zipf_exponent = float("nan")

    row_sizes = np.diff(dataset.indptr)
    labels = dataset.labels
    positive = float((labels > 0).mean()) if labels.size else 0.0
    return DatasetStats(
        num_rows=dataset.num_rows,
        num_features=dataset.num_features,
        nnz=dataset.nnz,
        density=dataset.nnz / (dataset.num_rows * dataset.num_features),
        avg_nnz_per_row=float(row_sizes.mean()),
        max_nnz_per_row=int(row_sizes.max()),
        head_mass_100=head_mass,
        active_features=active,
        estimated_zipf_exponent=zipf_exponent,
        positive_label_fraction=positive,
    )
