"""Per-function control-flow graphs and a forward dataflow engine.

The call graph (:mod:`repro.analysis.callgraph`) answers *what can call
what*; this module answers *what values flow where inside one
function*.  It deliberately stays small:

* :func:`build_cfg` lowers a function body to basic blocks with
  explicit successor edges, handling ``if``/``while``/``for``/
  ``try``/``with``/``return``/``break``/``continue``/``raise`` —
  enough to make branch joins honest for a *may* analysis;
* :class:`ForwardAnalysis` is a classic worklist solver: subclasses
  provide the lattice (``initial_state`` / ``join`` / ``transfer``)
  and get per-block entry states at the fixpoint.

The ``seed-flow`` rule instantiates it with a may-taint domain
(variable → tainted-RNG provenance); anything else that needs a flow
fact later (escaping buffers, version pinning) plugs in the same way.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Generic, List, Optional, Sequence, Set, TypeVar

__all__ = ["BasicBlock", "CFG", "build_cfg", "ForwardAnalysis"]


@dataclass
class BasicBlock:
    """A straight-line run of statements with explicit successors."""

    index: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: Set[int] = field(default_factory=set)

    def add_successor(self, other: "BasicBlock") -> None:
        self.successors.add(other.index)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block


class _CFGBuilder:
    """Lowers a statement list onto a :class:`CFG`.

    ``try`` handling is conservative for a may-analysis: the protected
    body may jump to every handler at any point, so the handler joins
    the state from the body's entry *and* exit.  ``with`` bodies run
    unconditionally (context managers that suppress are out of scope).
    """

    def __init__(self) -> None:
        self.cfg = CFG()
        # (break target, continue target) stack for loops
        self.loop_stack: List[tuple] = []

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        end = self._lower(body, self.cfg.blocks[self.cfg.entry.index])
        end.add_successor(self.cfg.exit)
        return self.cfg

    def _lower(self, body: Sequence[ast.stmt], cur: BasicBlock) -> BasicBlock:
        for stmt in body:
            cur = self._lower_stmt(stmt, cur)
        return cur

    def _lower_stmt(self, stmt: ast.stmt, cur: BasicBlock) -> BasicBlock:
        if isinstance(stmt, ast.If):
            cur.statements.append(stmt)  # carries the test expression
            then_block = self.cfg.new_block()
            cur.add_successor(then_block)
            then_end = self._lower(stmt.body, then_block)
            after = self.cfg.new_block()
            then_end.add_successor(after)
            if stmt.orelse:
                else_block = self.cfg.new_block()
                cur.add_successor(else_block)
                self._lower(stmt.orelse, else_block).add_successor(after)
            else:
                cur.add_successor(after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self.cfg.new_block()
            head.statements.append(stmt)  # test / iterable evaluation
            cur.add_successor(head)
            after = self.cfg.new_block()
            head.add_successor(after)  # zero-iteration path
            body_block = self.cfg.new_block()
            head.add_successor(body_block)
            self.loop_stack.append((after, head))
            body_end = self._lower(stmt.body, body_block)
            self.loop_stack.pop()
            body_end.add_successor(head)
            if stmt.orelse:
                else_block = self.cfg.new_block()
                head.add_successor(else_block)
                self._lower(stmt.orelse, else_block).add_successor(after)
            return after
        if isinstance(stmt, ast.Try):
            body_entry = self.cfg.new_block()
            cur.add_successor(body_entry)
            body_end = self._lower(stmt.body, body_entry)
            after = self.cfg.new_block()
            else_end = body_end
            if stmt.orelse:
                else_block = self.cfg.new_block()
                body_end.add_successor(else_block)
                else_end = self._lower(stmt.orelse, else_block)
            for handler in stmt.handlers:
                handler_block = self.cfg.new_block()
                # an exception may fire before or after any body stmt
                body_entry.add_successor(handler_block)
                body_end.add_successor(handler_block)
                self._lower(handler.body, handler_block).add_successor(after)
            if stmt.finalbody:
                final_block = self.cfg.new_block()
                else_end.add_successor(final_block)
                final_end = self._lower(stmt.finalbody, final_block)
                final_end.add_successor(after)
            else:
                else_end.add_successor(after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.statements.append(stmt)  # context-manager expressions
            body_block = self.cfg.new_block()
            cur.add_successor(body_block)
            body_end = self._lower(stmt.body, body_block)
            after = self.cfg.new_block()
            body_end.add_successor(after)
            return after
        if isinstance(stmt, ast.Return):
            cur.statements.append(stmt)
            cur.add_successor(self.cfg.exit)
            return self.cfg.new_block()  # unreachable continuation
        if isinstance(stmt, ast.Raise):
            cur.statements.append(stmt)
            cur.add_successor(self.cfg.exit)
            return self.cfg.new_block()
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                cur.add_successor(self.loop_stack[-1][0])
            return self.cfg.new_block()
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                cur.add_successor(self.loop_stack[-1][1])
            return self.cfg.new_block()
        cur.statements.append(stmt)
        return cur


def build_cfg(fn_node: ast.AST) -> CFG:
    """CFG for a function definition (or any object with ``.body``)."""
    body = getattr(fn_node, "body", [])
    return _CFGBuilder().build(body)


S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Worklist fixpoint solver over a :class:`CFG`.

    Subclasses define the lattice:

    * :meth:`initial_state` — the entry fact (e.g. parameter taint);
    * :meth:`join` — least upper bound of predecessor exit states;
    * :meth:`transfer` — push a fact through one block's statements.

    States must be comparable with ``==`` (termination check); the
    domain must have finite ascending chains (sets over program
    variables do).
    """

    def initial_state(self) -> S:
        raise NotImplementedError

    def join(self, states: List[S]) -> S:
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state: S) -> S:
        raise NotImplementedError

    def run(self, cfg: CFG) -> Dict[int, S]:
        """Solve to fixpoint; returns the entry state of every block."""
        preds: Dict[int, List[int]] = {b.index: [] for b in cfg.blocks}
        for block in cfg.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        entry_states: Dict[int, S] = {cfg.entry.index: self.initial_state()}
        exit_states: Dict[int, S] = {}
        worklist = [cfg.entry.index]
        while worklist:
            index = worklist.pop(0)
            block = cfg.blocks[index]
            incoming = [
                exit_states[p] for p in preds[index] if p in exit_states
            ]
            if index == cfg.entry.index:
                incoming.append(self.initial_state())
            state = (
                self.join(incoming) if incoming else self.initial_state()
            )
            entry_states[index] = state
            new_exit = self.transfer(block, state)
            if exit_states.get(index) == new_exit and index in exit_states:
                continue
            exit_states[index] = new_exit
            for succ in sorted(block.successors):
                if succ not in worklist:
                    worklist.append(succ)
        return entry_states
