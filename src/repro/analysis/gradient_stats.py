"""Gradient distribution analysis — the measurements behind Figure 4.

Quantifies the two dataset/gradient properties the whole paper rests
on: value *nonuniformity* (mass concentrated near zero) and key
*clustering* (hot features at low ids, cheap deltas).  Used by the
Fig. 4 bench, the examples, and available to downstream users deciding
whether SketchML fits their workload (the paper's "Limitation"
paragraph: dense or uniform gradients benefit less).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.delta_encoding import delta_key_stats

__all__ = ["GradientProfile", "profile_gradient", "histogram"]


@dataclass(frozen=True)
class GradientProfile:
    """Summary statistics of one sparse gradient.

    Attributes:
        nnz: nonzero count ``d``.
        dimension: model dimension ``D``.
        density: ``d / D`` (the paper's gradient sparsity metric).
        value_min / value_max: value range (Fig. 4's x-axis extent).
        near_zero_fraction: fraction of values within a tenth of the
            max magnitude — the Fig. 4 concentration measure.
        concentration_90: smallest fraction of entries holding 90% of
            the L1 mass (low = heavy-tailed, good for quantile buckets).
        positive_fraction: share of positive values.
        bytes_per_key: delta-binary cost of the key set.
        uniformity_ks: Kolmogorov–Smirnov distance between the empirical
            magnitude CDF and a uniform CDF over the range; 0 = exactly
            uniform (ZipML-friendly), near 1 = extremely skewed.
    """

    nnz: int
    dimension: int
    density: float
    value_min: float
    value_max: float
    near_zero_fraction: float
    concentration_90: float
    positive_fraction: float
    bytes_per_key: float
    uniformity_ks: float

    @property
    def is_sketchml_friendly(self) -> bool:
        """Heuristic from the paper's Limitation paragraph: sparse and
        nonuniform gradients are where SketchML shines."""
        return self.density < 0.25 and self.uniformity_ks > 0.3


def profile_gradient(
    keys: np.ndarray, values: np.ndarray, dimension: int
) -> GradientProfile:
    """Compute a :class:`GradientProfile` for a sparse gradient."""
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if keys.shape != values.shape or keys.ndim != 1:
        raise ValueError("keys and values must be parallel 1-D arrays")
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    if keys.size == 0:
        raise ValueError("cannot profile an empty gradient")

    magnitudes = np.abs(values)
    max_mag = float(magnitudes.max())
    sorted_desc = np.sort(magnitudes)[::-1]
    cum = np.cumsum(sorted_desc)
    total = cum[-1]
    if total > 0:
        concentration_90 = float(
            (np.searchsorted(cum, 0.9 * total) + 1) / keys.size
        )
    else:
        concentration_90 = 1.0

    # KS distance of magnitudes vs Uniform(0, max_mag).
    if max_mag > 0:
        sorted_asc = np.sort(magnitudes)
        empirical = np.arange(1, keys.size + 1) / keys.size
        uniform_cdf = sorted_asc / max_mag
        uniformity_ks = float(np.abs(empirical - uniform_cdf).max())
    else:
        uniformity_ks = 0.0

    return GradientProfile(
        nnz=int(keys.size),
        dimension=int(dimension),
        density=keys.size / dimension,
        value_min=float(values.min()),
        value_max=float(values.max()),
        near_zero_fraction=(
            float((magnitudes < 0.1 * max_mag).mean()) if max_mag > 0 else 1.0
        ),
        concentration_90=concentration_90,
        positive_fraction=float((values > 0).mean()),
        bytes_per_key=delta_key_stats(keys).bytes_per_key,
        uniformity_ks=uniformity_ks,
    )


def histogram(
    values: np.ndarray, bins: int = 20
) -> Tuple[np.ndarray, np.ndarray]:
    """Figure 4's histogram: ``(bin_edges, counts)``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot histogram an empty array")
    if bins <= 0:
        raise ValueError("bins must be positive")
    counts, edges = np.histogram(values, bins=bins)
    return edges, counts
