"""Flow rules: RNG seed provenance and lock-acquisition order.

* ``seed-flow`` is a forward may-taint analysis over the
  :mod:`repro.analysis.dataflow` engine: an RNG born from an
  *unseeded* constructor (``np.random.default_rng()`` with no seed,
  ``random.Random()``, a wall-clock seed) taints the variable holding
  it; taint propagates through assignments and project-function
  returns/parameters to a fixpoint; a finding fires where a tainted
  value is passed into a function defined in a seed-scoped module
  (:data:`~repro.lint.policy.SEED_SCOPE_PREFIXES` — the codec, the
  sketches, the compressors, the runtime).  The shallow
  ``rng-discipline`` rule flags unseeded constructors *written in*
  library code; this rule catches the one constructed elsewhere (a
  script, a benchmark harness) and handed in.

* ``lock-order`` builds the lock-acquisition graph of the runtime
  (:data:`~repro.lint.policy.LOCK_SCOPE_PREFIXES`): locks are
  ``threading.Lock``/``RLock``/``Condition`` objects bound to class
  attributes or module globals; acquiring is a ``with`` on one.  While
  a lock is held, every lock acquired lexically inside the block — or
  anywhere in a project function the block calls, transitively — adds
  an ordering edge.  Cycles in that graph are potential deadlocks;
  a blocking primitive called while holding a lock is a stall that
  serialises every other acquirer.  Self-edges are ignored
  (re-entrant acquisition of one lock is ``RLock``'s business, not an
  ordering bug).
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..lint.framework import (
    Finding,
    ModuleSource,
    ProjectRule,
    SEVERITY_ERROR,
    dotted_name,
    register_rule,
)
from ..lint.policy import is_lock_scoped, is_seed_scoped
from .dataflow import BasicBlock, ForwardAnalysis, build_cfg
from .rules_reachability import _blocking_reason

if TYPE_CHECKING:  # runtime import would cycle through repro.lint
    from .callgraph import CallSite, FunctionNode, Project

__all__ = ["SeedFlowRule", "LockOrderRule"]

#: RNG constructors that must receive a seed to be deterministic.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Seed expressions that are wall-clock/entropy — seeded in form only.
NONDETERMINISTIC_SEEDS = frozenset(
    {"time.time", "time.time_ns", "time.monotonic", "os.urandom",
     "uuid.uuid4", "secrets.randbits", "secrets.token_bytes"}
)


def _is_tainted_constructor(module: ModuleSource, call: ast.Call) -> bool:
    """True for an RNG constructor whose seed is absent or wall-clock."""
    name = module.resolve_call(call)
    if name not in RNG_CONSTRUCTORS:
        return False
    seed_args = list(call.args) + [
        kw.value for kw in call.keywords if kw.arg in ("seed", "x")
    ]
    if not seed_args:
        return True
    for arg in seed_args:
        if isinstance(arg, ast.Call):
            seed_name = module.resolve_call(arg)
            if seed_name in NONDETERMINISTIC_SEEDS:
                return True
        if isinstance(arg, ast.Constant) and arg.value is None:
            return True
    return False


def _stmt_scan_parts(stmt: ast.stmt) -> List[ast.AST]:
    """The expression parts a CFG block actually *executes* for a stmt.

    Compound statements sit in a block only to carry their test /
    iterable / context expressions — their bodies live in other
    blocks, so scanning the whole node would double-count.
    """
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


class _TaintEvents:
    """What one replay pass of a function observed."""

    def __init__(self) -> None:
        self.returns_tainted = False
        self.param_taint: List[Tuple[str, str]] = []  # (callee, param)
        self.findings: List[Tuple[ast.Call, str]] = []


class _FunctionTaint(ForwardAnalysis):
    """May-taint over variable names (``x``, ``self.rng``)."""

    def __init__(
        self,
        project: Project,
        fn: FunctionNode,
        param_taint: Dict[str, FrozenSet[str]],
        returns_tainted: Dict[str, bool],
    ) -> None:
        self.project = project
        self.fn = fn
        self.param_taint = param_taint
        self.returns_tainted = returns_tainted
        self.sites = {id(site.node): site for site in fn.call_sites}

    def initial_state(self) -> FrozenSet[str]:
        return self.param_taint.get(self.fn.qualname, frozenset())

    def join(self, states: List[FrozenSet[str]]) -> FrozenSet[str]:
        out: Set[str] = set()
        for state in states:
            out |= state
        return frozenset(out)

    def transfer(
        self, block: BasicBlock, state: FrozenSet[str]
    ) -> FrozenSet[str]:
        for stmt in block.statements:
            state = self.step(stmt, state)
        return state

    # ------------------------------------------------------------------
    def expr_tainted(self, expr: ast.AST, state: FrozenSet[str]) -> bool:
        name = dotted_name(expr)
        if name is not None and name in state:
            return True
        if isinstance(expr, ast.Call):
            if _is_tainted_constructor(self.fn.module, expr):
                return True
            site = self.sites.get(id(expr))
            if site is not None and any(
                self.returns_tainted.get(t, False) for t in site.targets
            ):
                return True
            return False
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body, state) or self.expr_tainted(
                expr.orelse, state
            )
        if isinstance(expr, (ast.BoolOp,)):
            return any(self.expr_tainted(v, state) for v in expr.values)
        if isinstance(expr, ast.NamedExpr):
            return self.expr_tainted(expr.value, state)
        return False

    def step(
        self,
        stmt: ast.stmt,
        state: FrozenSet[str],
        events: Optional[_TaintEvents] = None,
    ) -> FrozenSet[str]:
        if events is not None:
            self._observe(stmt, state, events)
        if isinstance(stmt, ast.Assign):
            tainted = self.expr_tainted(stmt.value, state)
            names = [dotted_name(t) for t in stmt.targets]
            out = set(state)
            for name in names:
                if name is None:
                    continue
                if tainted:
                    out.add(name)
                else:
                    out.discard(name)
            return frozenset(out)
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            name = dotted_name(stmt.target)
            if name is not None:
                out = set(state)
                if self.expr_tainted(stmt.value, state):
                    out.add(name)
                else:
                    out.discard(name)
                return frozenset(out)
        return state

    # ------------------------------------------------------------------
    def _callee_param(self, target: str, call: ast.Call, pos: int,
                      keyword: Optional[str]) -> Optional[str]:
        callee = self.project.functions.get(target)
        if callee is None or not isinstance(
            callee.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return None
        params = [a.arg for a in callee.node.args.args]
        if callee.cls is not None and params and params[0] in ("self", "cls"):
            params = params[1:]
        if keyword is not None:
            all_params = params + [
                a.arg for a in callee.node.args.kwonlyargs
            ]
            return keyword if keyword in all_params else None
        if 0 <= pos < len(params):
            return params[pos]
        return None

    def _observe(
        self, stmt: ast.stmt, state: FrozenSet[str], events: _TaintEvents
    ) -> None:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if self.expr_tainted(stmt.value, state):
                events.returns_tainted = True
        for part in _stmt_scan_parts(stmt):
            for node in ast.walk(part):
                if not isinstance(node, ast.Call):
                    continue
                site = self.sites.get(id(node))
                if site is None or not site.targets:
                    continue
                args = [(i, None, a) for i, a in enumerate(node.args)] + [
                    (-1, kw.arg, kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                ]
                for pos, keyword, arg in args:
                    if not self.expr_tainted(arg, state):
                        continue
                    for target in site.targets:
                        param = self._callee_param(target, node, pos, keyword)
                        if param is not None:
                            events.param_taint.append((target, param))
                        callee = self.project.functions.get(target)
                        if callee is not None and is_seed_scoped(
                            callee.relpath
                        ):
                            events.findings.append(
                                (
                                    node,
                                    "unseeded RNG flows into "
                                    f"{callee.relpath} via "
                                    f"{target.replace('repro.', '', 1)}()"
                                    f" (argument {param or pos + 1})",
                                )
                            )

    def replay(self, cfg, entry_states) -> _TaintEvents:
        events = _TaintEvents()
        for block in cfg.blocks:
            state = entry_states.get(block.index)
            if state is None:
                continue
            for stmt in block.statements:
                state = self.step(stmt, state, events)
        return events


@register_rule
class SeedFlowRule(ProjectRule):
    """Every RNG reaching seed-scoped code descends from a seeded ctor.

    Interprocedural fixpoint: per-function taint (dataflow engine) +
    two global summaries — *returns-tainted* (the function can return
    an unseeded RNG) and *tainted parameters* (some caller passes one
    in).  Iterates until the summaries stabilise, then reports every
    call site where a tainted value crosses into a module under
    :data:`~repro.lint.policy.SEED_SCOPE_PREFIXES`.
    """

    rule_id = "seed-flow"
    severity = SEVERITY_ERROR
    description = (
        "unseeded np.random.Generator/random.Random must not flow "
        "into codec/runtime code (deep tier)"
    )

    MAX_ITERATIONS = 12

    def check_project(self, project: Project) -> Iterator[Finding]:
        param_taint: Dict[str, FrozenSet[str]] = {}
        returns_tainted: Dict[str, bool] = {}
        cfgs = {
            qualname: build_cfg(fn.node)
            for qualname, fn in project.functions.items()
        }
        events_by_fn: Dict[str, _TaintEvents] = {}
        for _ in range(self.MAX_ITERATIONS):
            changed = False
            for qualname in sorted(project.functions):
                fn = project.functions[qualname]
                analysis = _FunctionTaint(
                    project, fn, param_taint, returns_tainted
                )
                entry_states = analysis.run(cfgs[qualname])
                events = analysis.replay(cfgs[qualname], entry_states)
                events_by_fn[qualname] = events
                if events.returns_tainted and not returns_tainted.get(
                    qualname, False
                ):
                    returns_tainted[qualname] = True
                    changed = True
                for callee, param in events.param_taint:
                    cur = param_taint.get(callee, frozenset())
                    if param not in cur:
                        param_taint[callee] = cur | {param}
                        changed = True
            if not changed:
                break
        for qualname in sorted(events_by_fn):
            fn = project.functions[qualname]
            for node, message in events_by_fn[qualname].findings:
                yield self.finding(fn.module, node, message)


# ----------------------------------------------------------------------
# lock-order
# ----------------------------------------------------------------------
LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)


def _collect_locks(project: Project) -> Tuple[
    Dict[str, Dict[str, str]], Dict[str, str]
]:
    """Lock attributes per class and module-global locks, in scope.

    Returns ``(class_locks, global_locks)``: ``class_locks[cls_qual]``
    maps attribute name → lock id (``ClassName.attr``);
    ``global_locks`` maps ``module_qual.NAME`` → lock id.
    """
    class_locks: Dict[str, Dict[str, str]] = {}
    global_locks: Dict[str, str] = {}
    for cls_qual, cls in project.classes.items():
        if not is_lock_scoped(cls.module.relpath):
            continue
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                if cls.module.resolve_call(node.value) not in LOCK_CONSTRUCTORS:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        class_locks.setdefault(cls_qual, {})[target.attr] = (
                            f"{cls.name}.{target.attr}"
                        )
    for relpath, module in project.modules.items():
        if not is_lock_scoped(relpath):
            continue
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if module.resolve_call(node.value) not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    short = relpath.rsplit("/", 1)[-1][:-3]
                    global_locks[target.id] = f"{short}.{target.id}"
    return class_locks, global_locks


class _LockGraph:
    def __init__(self) -> None:
        # edge -> (module, node) anchor of the acquisition that made it
        self.edges: Dict[Tuple[str, str], Tuple[ModuleSource, ast.AST, str]] = {}

    def add(
        self,
        held: str,
        acquired: str,
        module: ModuleSource,
        node: ast.AST,
        how: str,
    ) -> None:
        if held == acquired:
            return  # re-entrancy is RLock's business, not ordering
        self.edges.setdefault((held, acquired), (module, node, how))

    def successors(self, lock: str) -> List[str]:
        return sorted(b for (a, b) in self.edges if a == lock)

    def cycles(self) -> List[List[str]]:
        """Simple cycles, each reported once in canonical rotation."""
        found: Set[Tuple[str, ...]] = set()
        out: List[List[str]] = []
        nodes = sorted({a for a, _ in self.edges} | {b for _, b in self.edges})

        def dfs(start: str, cur: str, path: List[str]) -> None:
            for nxt in self.successors(cur):
                if nxt == start:
                    cycle = path[:]
                    pivot = cycle.index(min(cycle))
                    canon = tuple(cycle[pivot:] + cycle[:pivot])
                    if canon not in found:
                        found.add(canon)
                        out.append(list(canon))
                elif nxt not in path and nxt > start:
                    # only walk nodes ordered after start: each cycle is
                    # then discovered exactly once, from its minimum
                    dfs(start, nxt, path + [nxt])

        for node in nodes:
            dfs(node, node, [node])
        return out


@register_rule
class LockOrderRule(ProjectRule):
    """Consistent lock order and no blocking calls under a lock.

    Scope: :data:`~repro.lint.policy.LOCK_SCOPE_PREFIXES` (the runtime
    layer).  Acquisition edges come from ``with`` blocks: lexically
    nested ``with`` on another lock, or a call — followed transitively
    through the project call graph — into a function that acquires
    one.  Findings:

    * a cycle in the acquisition graph (potential deadlock between
      driver and worker threads), reported once per cycle;
    * a blocking primitive (socket send/recv, ``time.sleep``,
      subprocess waits) called directly while a lock is held — every
      other acquirer stalls behind the slow operation.

    ``lock.acquire()`` outside a ``with`` is not tracked; the runtime
    style is ``with``-only.  Self-edges (re-entrant acquisition) are
    ignored.
    """

    rule_id = "lock-order"
    severity = SEVERITY_ERROR
    description = (
        "no lock-acquisition cycles or lock-held blocking calls in "
        "the runtime (deep tier)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        class_locks, global_locks = _collect_locks(project)
        self._locks_reachable_cache: Dict[str, FrozenSet[str]] = {}

        def direct_locks(fn: FunctionNode) -> Set[str]:
            out: Set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        lock = self._lock_of(
                            fn, item.context_expr, class_locks, global_locks,
                            project,
                        )
                        if lock is not None:
                            out.add(lock)
            return out

        self._direct = {
            q: direct_locks(fn) for q, fn in project.functions.items()
        }

        def locks_reachable(qualname: str) -> FrozenSet[str]:
            cached = self._locks_reachable_cache.get(qualname)
            if cached is not None:
                return cached
            out: Set[str] = set()
            for reached in project.reachable([qualname]):
                out |= self._direct.get(reached, set())
            result = frozenset(out)
            self._locks_reachable_cache[qualname] = result
            return result

        graph = _LockGraph()
        blocking: List[Finding] = []
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if not is_lock_scoped(fn.relpath):
                continue
            sites = {id(site.node): site for site in fn.call_sites}
            self._walk_stmts(
                fn, getattr(fn.node, "body", []), [], class_locks,
                global_locks, project, graph, sites, locks_reachable,
                blocking,
            )
        for finding in blocking:
            yield finding
        for cycle in graph.cycles():
            first_edge = (cycle[0], cycle[1] if len(cycle) > 1 else cycle[0])
            module, node, how = graph.edges.get(
                first_edge, next(iter(graph.edges.values()))
            )
            chain = " -> ".join(cycle + [cycle[0]])
            yield self.finding(
                module, node,
                f"lock-order cycle: {chain} (first edge acquired {how}) — "
                "two threads taking these locks in different orders "
                "deadlock",
            )

    # ------------------------------------------------------------------
    def _lock_of(
        self,
        fn: FunctionNode,
        expr: ast.expr,
        class_locks: Dict[str, Dict[str, str]],
        global_locks: Dict[str, str],
        project: Project,
    ) -> Optional[str]:
        name = dotted_name(expr)
        if name is None:
            return None
        if name.startswith("self.") and fn.cls is not None:
            attr = name[len("self."):]
            for cls in project.mro(fn.cls):
                lock = class_locks.get(cls, {}).get(attr)
                if lock is not None:
                    return lock
            return None
        return global_locks.get(name)

    def _walk_stmts(
        self,
        fn: FunctionNode,
        stmts,
        held: List[str],
        class_locks,
        global_locks,
        project: Project,
        graph: _LockGraph,
        sites: Dict[int, CallSite],
        locks_reachable,
        blocking: List[Finding],
    ) -> None:
        def recurse(body, held_now) -> None:
            self._walk_stmts(
                fn, body, held_now, class_locks, global_locks, project,
                graph, sites, locks_reachable, blocking,
            )

        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = []
                for item in stmt.items:
                    lock = self._lock_of(
                        fn, item.context_expr, class_locks, global_locks,
                        project,
                    )
                    if lock is not None:
                        acquired.append(lock)
                    elif held:
                        # a non-lock context manager entered while held
                        self._scan_calls(
                            fn, item.context_expr, held, project, graph,
                            sites, locks_reachable, blocking,
                        )
                for lock in acquired:
                    for holder in held:
                        graph.add(holder, lock, fn.module, stmt, "lexically")
                recurse(stmt.body, held + acquired)
                continue
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # nested definitions run later, not under this lock
                recurse(stmt.body, [])
                continue
            if held:
                for part in _stmt_scan_parts(stmt):
                    self._scan_calls(
                        fn, part, held, project, graph, sites,
                        locks_reachable, blocking,
                    )
            for attr in ("body", "orelse", "finalbody"):
                recurse(getattr(stmt, attr, []), held)
            for handler in getattr(stmt, "handlers", []):
                recurse(handler.body, held)

    def _scan_calls(
        self, fn, root, held, project, graph, sites, locks_reachable,
        blocking,
    ) -> None:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            site = sites.get(id(node))
            if site is None:
                continue
            reason = _blocking_reason(fn, site)
            if reason:
                for holder in held:
                    blocking.append(
                        self.finding(
                            fn.module, node,
                            f"{reason} while holding {holder}; every "
                            "other acquirer stalls behind it",
                        )
                    )
            for target in site.targets:
                for lock in sorted(locks_reachable(target)):
                    for holder in held:
                        graph.add(
                            holder, lock, fn.module, node,
                            f"via call to "
                            f"{target.replace('repro.', '', 1)}",
                        )
