"""Reachability rules: reactor blocking and wire-primitive escapes.

Both rules generalise an existing shallow rule from *lexical* scope
(which module the text sits in) to *call-graph* scope (which code can
actually run from where):

* ``reactor-reachability`` extends ``async-discipline``: a helper in
  ``util.py`` that calls ``time.sleep`` is legal text in ``util.py``,
  but if the aio event loop can reach it, the reactor stalls just the
  same.  The rule walks everything transitively callable from the
  functions defined in :data:`~repro.lint.policy.ASYNC_MODULES` and
  flags blocking primitives *outside* those modules (inside them the
  shallow rule already reports, with better locality).

* ``wire-escape`` extends ``wire-format``: the shallow rule flags a
  byte primitive written outside :data:`~repro.lint.policy.
  WIRE_MODULES`, but not the *caller* that launders one through a
  helper, nor a call that bypasses the codec API by invoking an
  underscore-private function of a wire module directly.  This rule
  computes the escape set (non-wire functions that reach a byte
  primitive without passing through the public codec API) and flags
  every call edge into it, plus cross-module calls to private wire
  helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Set

from ..lint.framework import Finding, SEVERITY_ERROR, register_rule
from ..lint.framework import ProjectRule
from ..lint.policy import ASYNC_MODULES, WIRE_MODULES

if TYPE_CHECKING:  # runtime import would cycle through repro.lint
    from .callgraph import CallSite, FunctionNode, Project

__all__ = ["ReactorReachabilityRule", "WireEscapeRule"]

#: Dotted external calls that block the calling thread outright.  A
#: superset of the shallow rule's list: the reactor can also stall in a
#: subprocess wait or a blocking connect reached through helpers.
BLOCKING_EXTERNAL_CALLS = frozenset(
    {
        "time.sleep",
        "select.select",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.waitpid",
        "os.wait",
        "signal.pause",
    }
)

#: Method names that block on a socket (or install the blocking-socket
#: idiom).  Non-blocking counterparts (recv_into/sendmsg/send/accept/
#: setblocking) stay legal, mirroring the shallow rule.
BLOCKING_METHOD_NAMES = frozenset(
    {"recv", "recvfrom", "sendall", "makefile", "settimeout"}
)

#: Queue methods that block by default — only meaningful when the
#: containing module actually imports ``queue`` (``dict.get`` and
#: friends would otherwise drown the rule in false positives).
BLOCKING_QUEUE_METHODS = frozenset({"get", "put", "join"})


def _module_imports_queue(fn: FunctionNode) -> bool:
    if "queue" in fn.module.import_aliases.values():
        return True
    return any(
        src.lstrip(".") == "queue"
        for src, _ in fn.module.from_imports.values()
    )


def _blocking_reason(fn: FunctionNode, site: CallSite) -> str:
    """Why this call site blocks, or '' if it does not."""
    if site.external in BLOCKING_EXTERNAL_CALLS:
        return f"{site.external}() blocks the calling thread"
    method = site.method
    if method is None and site.external is not None and "." in site.external:
        method = site.external.rsplit(".", 1)[1]
    if method in BLOCKING_METHOD_NAMES:
        return f".{method}() is a blocking-socket call"
    if method in BLOCKING_QUEUE_METHODS and _module_imports_queue(fn):
        return f".{method}() on a queue blocks by default"
    return ""


def reactor_roots(project: Project) -> List[str]:
    """Event-loop entry points: every function in an async module."""
    return project.functions_in(ASYNC_MODULES)


def _format_path(path: List[str]) -> str:
    return " -> ".join(p.replace("repro.", "", 1) for p in path)


@register_rule
class ReactorReachabilityRule(ProjectRule):
    """No blocking primitive transitively reachable from the reactor.

    Roots are all functions defined in
    :data:`~repro.lint.policy.ASYNC_MODULES` (the event-loop modules).
    Everything reachable from them over the project call graph is
    checked for blocking external calls (``time.sleep``,
    ``subprocess.*``, blocking connects) and blocking socket/queue
    method calls.  Findings inside the async modules themselves are
    left to the shallow ``async-discipline`` rule; this rule reports
    the *indirect* ones, with the call chain from the reactor in the
    message.  Unresolvable dynamic dispatch is reported separately by
    the driver as blind spots.
    """

    rule_id = "reactor-reachability"
    severity = SEVERITY_ERROR
    description = (
        "no blocking call transitively reachable from event-loop "
        "entry points (deep tier)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        roots = reactor_roots(project)
        for qualname in sorted(project.reachable(roots)):
            fn = project.functions[qualname]
            if fn.relpath in ASYNC_MODULES:
                continue  # shallow async-discipline's turf
            for site in fn.call_sites:
                reason = _blocking_reason(fn, site)
                if not reason:
                    continue
                path = project.call_path(roots, qualname) or [qualname]
                yield self.finding(
                    fn.module, site.node,
                    f"{reason}, and the reactor reaches it: "
                    f"{_format_path(path)}",
                )


#: External dotted calls that read or write raw byte layouts.
BYTE_PRIMITIVE_PREFIXES = ("struct.",)
BYTE_PRIMITIVE_CALLS = frozenset({"numpy.frombuffer"})
BYTE_PRIMITIVE_METHODS = frozenset({"tobytes"})


def _uses_byte_primitive(site: CallSite) -> bool:
    if site.external is not None:
        if site.external in BYTE_PRIMITIVE_CALLS:
            return True
        if site.external.startswith(BYTE_PRIMITIVE_PREFIXES):
            return True
    return site.method in BYTE_PRIMITIVE_METHODS


@register_rule
class WireEscapeRule(ProjectRule):
    """Byte primitives unreachable from outside the codec API.

    Two escape shapes are flagged:

    * a call from a non-wire function into the *escape set* — the
      fixpoint of non-wire functions that use a byte primitive
      directly or call another escape-set function.  (The direct
      primitive use itself is the shallow ``wire-format`` rule's
      finding; this rule adds the laundering callers.)  Calls into
      public wire-module functions do not propagate — that is the
      sanctioned path.

    * a call from outside :data:`~repro.lint.policy.WIRE_MODULES` to
      an underscore-private function or method of a wire module — the
      codec API is its public names; private helpers may assume caller
      invariants the golden tests never see violated.
    """

    rule_id = "wire-escape"
    severity = SEVERITY_ERROR
    description = (
        "byte primitives only reachable through the public codec API "
        "of wire modules (deep tier)"
    )

    def _escape_set(self, project: Project) -> Set[str]:
        escaped: Set[str] = set()
        for qualname, fn in project.functions.items():
            if fn.relpath in WIRE_MODULES:
                continue
            if any(_uses_byte_primitive(s) for s in fn.call_sites):
                escaped.add(qualname)
        # Propagate to callers: a non-wire function whose callee is in
        # the escape set escapes too (the callee is not a sanctioned
        # codec entry point, by construction).
        changed = True
        while changed:
            changed = False
            for qualname, targets in project.edges.items():
                fn = project.functions[qualname]
                if fn.relpath in WIRE_MODULES or qualname in escaped:
                    continue
                if any(t in escaped for t in targets):
                    escaped.add(qualname)
                    changed = True
        return escaped

    def check_project(self, project: Project) -> Iterator[Finding]:
        escaped = self._escape_set(project)
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if fn.relpath in WIRE_MODULES:
                continue
            for site in fn.call_sites:
                for target in site.targets:
                    callee = project.functions.get(target)
                    if callee is None:
                        continue
                    if target in escaped:
                        yield self.finding(
                            fn.module, site.node,
                            f"call into {_format_path([target])}, which "
                            "reaches byte-format primitives outside the "
                            "designated wire modules",
                        )
                    elif (
                        callee.relpath in WIRE_MODULES
                        and callee.name.startswith("_")
                        and not callee.name.startswith("__")
                    ):
                        yield self.finding(
                            fn.module, site.node,
                            f"call to private wire helper "
                            f"{_format_path([target])} bypasses the "
                            "public codec API",
                        )
