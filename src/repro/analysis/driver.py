"""Deep-tier driver: parse the tree once, run the whole-program rules.

The shallow driver (:func:`repro.lint.framework.lint_paths`) runs each
per-module rule over one file at a time.  This driver parses every
file under the given paths into one :class:`~repro.analysis.callgraph.
Project` and runs the registered :class:`~repro.lint.framework.
ProjectRule` subclasses over it, applying the same per-line
``# repro: noqa[rule-id] — reason`` suppressions.

Dynamic-dispatch blind spots (calls the resolver could not follow) are
surfaced in :class:`DeepStats` so ``--deep`` output can report how
much of the call graph is actually covered rather than silently
analysing a subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..lint.framework import (
    Finding,
    ModuleSource,
    ProjectRule,
    build_rules,
    iter_python_files,
)
from .callgraph import Project, build_project

__all__ = ["DeepStats", "analyze_paths", "deep_rules"]


@dataclass(frozen=True)
class DeepStats:
    """Coverage telemetry for one deep-analysis run."""

    modules: int
    functions: int
    classes: int
    edges: int
    blind_spots: int

    def summary(self) -> str:
        return (
            f"{self.modules} modules, {self.functions} functions, "
            f"{self.classes} classes, {self.edges} call edges, "
            f"{self.blind_spots} dynamic-dispatch blind spots"
        )


def deep_rules(select: Optional[Sequence[str]] = None) -> List[ProjectRule]:
    """The selected whole-program rules (all registered ones by default)."""
    return [
        rule
        for rule in build_rules(select)
        if isinstance(rule, ProjectRule)
    ]


def _apply_deep_suppressions(
    modules: Sequence[ModuleSource], findings: List[Finding]
) -> List[Finding]:
    """Drop findings a justified noqa on their line suppresses.

    Unlike the shallow driver this does *not* re-emit noqa-justification
    findings — the shallow tier already reports those once per module;
    the deep tier only honours the suppressions.
    """
    by_path = {module.path: module for module in modules}
    kept: List[Finding] = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None:
            supp = module.suppressions.get(finding.line)
            if supp is not None and finding.rule_id in supp.rule_ids:
                continue
        kept.append(finding)
    return kept


def analyze_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], DeepStats, Project]:
    """Run the deep tier over every ``.py`` file under ``paths``.

    Returns location-sorted findings (suppressions applied), coverage
    stats, and the project itself (for tooling/tests).
    """
    modules: List[ModuleSource] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
        modules.append(ModuleSource(filename, text))
    project = build_project(modules)
    findings: List[Finding] = []
    for rule in deep_rules(select):
        findings.extend(rule.check_project(project))
    findings = _apply_deep_suppressions(modules, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    stats = DeepStats(
        modules=len(project.modules),
        functions=len(project.functions),
        classes=len(project.classes),
        edges=project.edge_count(),
        blind_spots=len(project.blind_spots),
    )
    return findings, stats, project
