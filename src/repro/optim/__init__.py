"""Optimizers and learning-rate schedules."""

from .optimizers import Adam, AdaGrad, Momentum, Optimizer, SGD, make_optimizer
from .schedules import (
    ConstantLR,
    ExponentialDecayLR,
    InverseDecayLR,
    LRSchedule,
    StepDecayLR,
    make_schedule,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Momentum",
    "AdaGrad",
    "Adam",
    "make_optimizer",
    "LRSchedule",
    "ConstantLR",
    "InverseDecayLR",
    "ExponentialDecayLR",
    "StepDecayLR",
    "make_schedule",
]
