"""Sparse-aware optimizers: SGD variants, AdaGrad, and Adam (§4.1).

Every optimizer applies a *sparse* update — only the dimensions present
in the gradient's key set move — which is both what a parameter-server
deployment does and a prerequisite for SketchML's decayed gradients to
be compensated per-dimension (§3.3 Solution 2 pairs the MinMaxSketch
with Adam's adaptive learning rate precisely because Adam rescales slow
dimensions individually).

All optimizer state (momentum, second moments) is kept dense but only
touched on active keys, the standard lazy sparse-update scheme.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "AdaGrad", "Adam", "make_optimizer"]


class Optimizer:
    """Abstract sparse optimizer.

    Args:
        learning_rate: base step size ``eta``.
    """

    name = "abstract"

    def __init__(self, learning_rate: float = 0.1) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def prepare(self, num_parameters: int) -> None:
        """Allocate state for a parameter vector of the given size."""

    def step(self, theta: np.ndarray, keys: np.ndarray, values: np.ndarray) -> None:
        """Apply one sparse update to ``theta`` in place."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear optimizer state between runs."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.learning_rate})"


class SGD(Optimizer):
    """Plain stochastic gradient descent: ``theta[k] -= eta * g[k]``."""

    name = "sgd"

    def step(self, theta: np.ndarray, keys: np.ndarray, values: np.ndarray) -> None:
        theta[keys] -= self.learning_rate * values


class Momentum(Optimizer):
    """Heavy-ball momentum (Polyak) with optional Nesterov correction."""

    name = "momentum"

    def __init__(
        self, learning_rate: float = 0.1, beta: float = 0.9, nesterov: bool = False
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta < 1.0:
            raise ValueError("beta must be in [0, 1)")
        self.beta = float(beta)
        self.nesterov = bool(nesterov)
        self._velocity: np.ndarray | None = None

    def prepare(self, num_parameters: int) -> None:
        self._velocity = np.zeros(num_parameters, dtype=np.float64)

    def reset(self) -> None:
        if self._velocity is not None:
            self._velocity[:] = 0.0

    def step(self, theta: np.ndarray, keys: np.ndarray, values: np.ndarray) -> None:
        if self._velocity is None:
            self.prepare(theta.size)
        v = self._velocity
        v[keys] = self.beta * v[keys] + values
        if self.nesterov:
            update = self.beta * v[keys] + values
        else:
            update = v[keys]
        theta[keys] -= self.learning_rate * update


class AdaGrad(Optimizer):
    """Per-dimension adaptive learning rate from accumulated squares."""

    name = "adagrad"

    def __init__(self, learning_rate: float = 0.1, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate)
        self.epsilon = float(epsilon)
        self._accum: np.ndarray | None = None

    def prepare(self, num_parameters: int) -> None:
        self._accum = np.zeros(num_parameters, dtype=np.float64)

    def reset(self) -> None:
        if self._accum is not None:
            self._accum[:] = 0.0

    def step(self, theta: np.ndarray, keys: np.ndarray, values: np.ndarray) -> None:
        if self._accum is None:
            self.prepare(theta.size)
        self._accum[keys] += values**2
        theta[keys] -= (
            self.learning_rate * values / (np.sqrt(self._accum[keys]) + self.epsilon)
        )


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) with the paper's hyper-parameters.

    §4.1: ``beta1 = 0.9``, ``beta2 = 0.999``, ``epsilon = 1e-8``.  The
    update follows the paper's formulation::

        m = beta1 * m + (1 - beta1) * g
        v = beta2 * v + (1 - beta2) * g^2
        theta -= eta / (sqrt(v) + eps) * m

    with standard bias correction (on by default) using a per-dimension
    step counter, the correct form under sparse (lazy) updates.
    """

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.1,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        bias_correction: bool = True,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.bias_correction = bool(bias_correction)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._steps: np.ndarray | None = None

    def prepare(self, num_parameters: int) -> None:
        self._m = np.zeros(num_parameters, dtype=np.float64)
        self._v = np.zeros(num_parameters, dtype=np.float64)
        self._steps = np.zeros(num_parameters, dtype=np.int64)

    def reset(self) -> None:
        if self._m is not None:
            self._m[:] = 0.0
            self._v[:] = 0.0
            self._steps[:] = 0

    def step(self, theta: np.ndarray, keys: np.ndarray, values: np.ndarray) -> None:
        if self._m is None:
            self.prepare(theta.size)
        m, v = self._m, self._v
        m[keys] = self.beta1 * m[keys] + (1.0 - self.beta1) * values
        v[keys] = self.beta2 * v[keys] + (1.0 - self.beta2) * values**2
        if self.bias_correction:
            self._steps[keys] += 1
            t = self._steps[keys]
            m_hat = m[keys] / (1.0 - self.beta1**t)
            v_hat = v[keys] / (1.0 - self.beta2**t)
        else:
            m_hat = m[keys]
            v_hat = v[keys]
        theta[keys] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def make_optimizer(name: str, learning_rate: float = 0.1, **kwargs) -> Optimizer:
    """Build an optimizer by name (``sgd``/``momentum``/``adagrad``/``adam``)."""
    optimizers = {
        "sgd": SGD,
        "momentum": Momentum,
        "adagrad": AdaGrad,
        "adam": Adam,
    }
    try:
        cls = optimizers[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {sorted(optimizers)}"
        ) from None
    return cls(learning_rate=learning_rate, **kwargs)
