"""Learning-rate schedules.

Orthogonal to the per-dimension adaptivity inside the optimizers; a
schedule scales the base learning rate by iteration count.  Used by the
sensitivity and ablation benches to mirror common SGD practice.
"""

from __future__ import annotations

import math

__all__ = [
    "LRSchedule",
    "ConstantLR",
    "InverseDecayLR",
    "ExponentialDecayLR",
    "StepDecayLR",
    "make_schedule",
]


class LRSchedule:
    """Maps an iteration counter to a learning-rate multiplier."""

    def multiplier(self, iteration: int) -> float:
        raise NotImplementedError

    def __call__(self, iteration: int) -> float:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        return self.multiplier(iteration)


class ConstantLR(LRSchedule):
    """No decay (the default everywhere in the paper)."""

    def multiplier(self, iteration: int) -> float:
        return 1.0


class InverseDecayLR(LRSchedule):
    """``1 / (1 + rate * t)`` — the classic Robbins–Monro style decay."""

    def __init__(self, rate: float = 0.01) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = float(rate)

    def multiplier(self, iteration: int) -> float:
        return 1.0 / (1.0 + self.rate * iteration)


class ExponentialDecayLR(LRSchedule):
    """``gamma ** t`` decay."""

    def __init__(self, gamma: float = 0.999) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = float(gamma)

    def multiplier(self, iteration: int) -> float:
        return self.gamma**iteration


class StepDecayLR(LRSchedule):
    """Multiply by ``factor`` every ``step_size`` iterations."""

    def __init__(self, step_size: int = 100, factor: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        self.step_size = int(step_size)
        self.factor = float(factor)

    def multiplier(self, iteration: int) -> float:
        return self.factor ** math.floor(iteration / self.step_size)


def make_schedule(name: str, **kwargs) -> LRSchedule:
    """Build a schedule by name."""
    schedules = {
        "constant": ConstantLR,
        "inverse": InverseDecayLR,
        "exponential": ExponentialDecayLR,
        "step": StepDecayLR,
    }
    try:
        cls = schedules[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; choose from {sorted(schedules)}"
        ) from None
    return cls(**kwargs)
