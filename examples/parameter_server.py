"""Stale-synchronous parameter server with compressed gradients.

SketchML's lineage is the parameter-server world (the paper cites SSP
and the authors' heterogeneity-aware PS).  This example runs the
event-driven SSP trainer with straggler workers and shows two effects
together:

* bounded staleness shortens wall-clock time when workers are
  heterogeneous (the point of SSP);
* SketchML's compression keeps helping under asynchrony — lossy,
  sign-safe gradients stay convergent even when applied stale.

Run:  python examples/parameter_server.py
"""

from repro import IdentityCompressor, SketchMLCompressor, cluster1_like
from repro.data import kdd10_like, train_test_split
from repro.distributed import SSPConfig, SSPTrainer
from repro.models import LogisticRegression
from repro.optim import Adam


def run(train, test, num_features, staleness, factory, label):
    trainer = SSPTrainer(
        model=LogisticRegression(num_features, reg_lambda=0.01),
        optimizer=Adam(learning_rate=0.01),
        compressor_factory=factory,
        network=cluster1_like(),
        config=SSPConfig(
            num_workers=8,
            staleness=staleness,
            epochs=3,
            seed=0,
            heterogeneity=2.0,  # slowest worker 3x slower than fastest
            compute_seconds_per_nnz=3e-4,
        ),
    )
    history = trainer.train(train, test)
    print(
        f"{label:<28} staleness={staleness}  "
        f"simulated={trainer.simulated_seconds:8.2f}s  "
        f"final loss={history.test_losses[-1]:.4f}  "
        f"rate={history.avg_compression_rate:5.2f}x"
    )
    return trainer.simulated_seconds


def main() -> None:
    data = kdd10_like(seed=0, scale=0.4)
    train, test = train_test_split(data, seed=0)
    print(f"{train.num_rows:,} train rows, 8 workers, heterogeneity 3x\n")

    print("-- effect of the staleness bound (uncompressed) --")
    lockstep = run(train, test, data.num_features, 0, IdentityCompressor,
                   "Adam, lockstep")
    stale = run(train, test, data.num_features, 4, IdentityCompressor,
                "Adam, staleness 4")
    print(f"  -> bounded staleness is {lockstep / stale:.2f}x faster "
          "with stragglers\n")

    print("-- compression under asynchrony --")
    run(train, test, data.num_features, 4, IdentityCompressor,
        "Adam, staleness 4")
    run(train, test, data.num_features, 4, SketchMLCompressor,
        "SketchML, staleness 4")


if __name__ == "__main__":
    main()
