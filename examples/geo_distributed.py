"""Geo-distributed training over a WAN (Case 3 of the paper's intro).

"Data movement over wide-area-network (WAN) is much slower than
local-area-network (LAN). Reducing the communication between data
centers can help geo-distributed ML."  This example trains the same
model over a LAN preset and a WAN preset and shows that compression
matters far more when the wire is slow: the Adam→SketchML speedup
widens dramatically on the WAN.

Run:  python examples/geo_distributed.py
"""

from repro import (
    DistributedTrainer,
    IdentityCompressor,
    SketchMLCompressor,
    TrainerConfig,
    cluster1_like,
    wan_like,
)
from repro.data import kdd10_like, train_test_split
from repro.models import LinearSVM
from repro.optim import Adam

NETWORKS = {
    "LAN (lab cluster)": cluster1_like(),
    "WAN (geo-distributed)": wan_like(),
}


def train_once(train, test, num_features, factory, network):
    trainer = DistributedTrainer(
        model=LinearSVM(num_features, reg_lambda=0.01),
        optimizer=Adam(learning_rate=0.01),
        compressor_factory=factory,
        network=network,
        config=TrainerConfig(
            num_workers=5,
            epochs=3,
            seed=0,
            compute_seconds_per_nnz=3e-4,
        ),
    )
    return trainer.train(train, test)


def main() -> None:
    data = kdd10_like(seed=1, scale=0.4)
    train, test = train_test_split(data, seed=1)

    print(f"{'network':<24} {'method':<10} {'epoch (s)':>10} {'network share':>14}")
    print("-" * 62)
    speedups = {}
    for net_name, network in NETWORKS.items():
        times = {}
        for method_name, factory in (
            ("Adam", IdentityCompressor),
            ("SketchML", SketchMLCompressor),
        ):
            history = train_once(
                train, test, data.num_features, factory, network
            )
            times[method_name] = history.avg_epoch_seconds
            share = sum(e.network_seconds for e in history.epochs) / sum(
                e.epoch_seconds for e in history.epochs
            )
            print(
                f"{net_name:<24} {method_name:<10} "
                f"{history.avg_epoch_seconds:>10.2f} {share:>13.0%}"
            )
        speedups[net_name] = times["Adam"] / times["SketchML"]

    print()
    for net_name, speedup in speedups.items():
        print(f"SketchML speedup on {net_name}: {speedup:.1f}x")
    print("\nthe slower the wire, the more gradient compression buys you —")
    print("exactly the geo-distributed motivation of the paper's Case 3.")


if __name__ == "__main__":
    main()
