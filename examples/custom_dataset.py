"""End-to-end user workflow on a LIBSVM file.

Everything a downstream user does with their own data: write/read
LIBSVM, summarise the dataset, shrink the feature space with the
hashing trick, and train with compressed gradients — the full pipeline
from file on disk to converged model.

Run:  python examples/custom_dataset.py
"""

import os
import tempfile

from repro import SketchMLCompressor, DistributedTrainer, TrainerConfig, cluster1_like
from repro.analysis import dataset_stats
from repro.data import (
    generate_profile,
    hash_features,
    read_libsvm,
    train_test_split,
    write_libsvm,
)
from repro.models import LogisticRegression
from repro.optim import Adam


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "my_data.libsvm")

        # Stand-in for "your data": a synthetic KDD10-like file on disk.
        write_libsvm(generate_profile("kdd10", seed=3, scale=0.25), path)
        print(f"wrote {os.path.getsize(path) / 1e6:.1f} MB to {path}")

        data = read_libsvm(path)
        stats = dataset_stats(data)
        print(f"loaded : {stats.num_rows:,} rows x {stats.num_features:,} features "
              f"({stats.nnz:,} nonzeros, {stats.density:.5%} dense)")
        print(f"feature skew: top-100 features hold {stats.head_mass_100:.0%} "
              f"of nonzeros (zipf ≈ {stats.estimated_zipf_exponent:.2f})\n")

        # The hashing trick: shrink 200k features into 2**14 buckets.
        hashed = hash_features(data, target_dim=2**14, seed=0)
        print(f"hashed to {hashed.num_features:,} dimensions "
              f"({hashed.nnz:,} nonzeros after collision merging)\n")

        train, test = train_test_split(hashed, seed=0)
        trainer = DistributedTrainer(
            model=LogisticRegression(hashed.num_features, reg_lambda=0.01),
            optimizer=Adam(learning_rate=0.01),
            compressor_factory=SketchMLCompressor,
            network=cluster1_like(),
            config=TrainerConfig(num_workers=5, epochs=4, seed=0,
                                 compute_seconds_per_nnz=3e-4),
        )
        history = trainer.train(train, test)
        print("epoch  sim-seconds  test loss")
        for epoch, (seconds, loss) in enumerate(
            zip(history.epoch_seconds, history.test_losses)
        ):
            print(f"{epoch:>5}  {seconds:>11.2f}  {loss:.4f}")
        print(f"\ncompression rate: {history.avg_compression_rate:.2f}x; "
              f"bytes on wire: {history.total_bytes_sent / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
