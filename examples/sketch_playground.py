"""Tour of the sketch substrates SketchML is built from.

Shows, on streaming data:

* quantile sketches (GK and KLL) approximating the value distribution
  in a single pass with a few hundred retained items;
* Count-Min always *over*-estimating frequencies — the one-sidedness
  that makes it unusable for bucket indexes (§3.3);
* MinMaxSketch always *under*-estimating bucket indexes — the opposite
  one-sidedness SGD tolerates;
* mergeability: per-worker sketches combined at the driver.

Run:  python examples/sketch_playground.py
"""

import numpy as np

from repro.core import MinMaxSketch
from repro.sketch import CountMinSketch, GKSummary, KLLSketch

N = 200_000


def quantile_demo(rng) -> None:
    print("== quantile sketches on 200k Laplace-distributed values ==")
    values = rng.laplace(scale=0.01, size=N)
    gk = GKSummary(epsilon=0.01)
    gk.insert_many(values)
    kll = KLLSketch(k=256, seed=0)
    kll.insert_many(values)
    print(f"{'phi':>6} {'exact':>10} {'GK':>10} {'KLL':>10}")
    for phi in (0.01, 0.25, 0.5, 0.75, 0.99):
        exact = np.quantile(values, phi)
        print(f"{phi:>6} {exact:>10.5f} {gk.query(phi):>10.5f} {kll.query(phi):>10.5f}")
    print(f"GK retains {gk.num_tuples} tuples; KLL retains "
          f"{kll.retained_items} items — vs {N:,} inputs\n")


def merge_demo(rng) -> None:
    print("== mergeability: 8 worker sketches -> 1 driver sketch ==")
    values = rng.normal(size=N)
    driver = KLLSketch(k=256, seed=0)
    for i, chunk in enumerate(np.array_split(values, 8)):
        local = KLLSketch(k=256, seed=i + 1)
        local.insert_many(chunk)
        driver.merge(local)
    for phi in (0.1, 0.5, 0.9):
        print(f"  phi={phi}: merged={driver.query(phi):+.4f} "
              f"exact={np.quantile(values, phi):+.4f}")
    print()


def frequency_vs_minmax_demo(rng) -> None:
    print("== Count-Min overestimates; MinMaxSketch underestimates ==")
    num_keys = 5_000
    keys = np.sort(rng.choice(10**6, size=num_keys, replace=False))
    indexes = rng.integers(0, 128, size=num_keys)

    cm = CountMinSketch(num_rows=2, num_bins=2_000, seed=0)
    for key, idx in zip(keys.tolist(), indexes.tolist()):
        cm.insert(key, count=idx)
    cm_decoded = cm.query_many(keys)

    mm = MinMaxSketch(num_rows=2, num_bins=2_000, index_range=128, seed=0)
    mm.insert_many(keys, indexes)
    mm_decoded = mm.query_many(keys)

    print(f"  Count-Min : {int((cm_decoded > indexes).sum()):>5} overestimates, "
          f"{int((cm_decoded < indexes).sum()):>5} underestimates")
    print(f"  MinMax    : {int((mm_decoded > indexes).sum()):>5} overestimates, "
          f"{int((mm_decoded < indexes).sum()):>5} underestimates")
    print("  -> amplified gradients diverge; decayed gradients just slow down,")
    print("     and Adam's adaptive learning rate compensates (§3.3).\n")


def main() -> None:
    rng = np.random.default_rng(7)
    quantile_demo(rng)
    merge_demo(rng)
    frequency_vs_minmax_demo(rng)


if __name__ == "__main__":
    main()
