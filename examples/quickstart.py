"""Quickstart: compress one sparse gradient with SketchML.

Builds a realistic sparse gradient (ascending integer keys, values
piled up near zero), pushes it through the full SketchML pipeline and
each Figure-8 ablation stage, and prints the wire sizes, compression
rates, and reconstruction error.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SketchMLCompressor, SketchMLConfig

DIMENSION = 1_000_000  # model dimensions (D)
NNZ = 50_000  # nonzero gradient entries (d)


def main() -> None:
    rng = np.random.default_rng(42)
    keys = np.sort(rng.choice(DIMENSION, size=NNZ, replace=False))
    values = rng.laplace(scale=0.01, size=NNZ)  # nonuniform, near zero
    values[values == 0.0] = 1e-6

    print(f"gradient: d={NNZ:,} nonzeros of D={DIMENSION:,} dimensions")
    print(f"raw size: {12 * NNZ / 1024:.1f} KiB (4-byte keys + 8-byte values)\n")

    stages = [
        SketchMLConfig.adam(),
        SketchMLConfig.keys_only(),
        SketchMLConfig.keys_and_quantization(),
        SketchMLConfig.full(),
    ]
    header = f"{'stage':<22} {'size (KiB)':>10} {'rate':>6} {'value MAE':>10} {'keys':>9}"
    print(header)
    print("-" * len(header))
    for config in stages:
        compressor = SketchMLCompressor(config)
        out_keys, out_values, message = compressor.roundtrip(keys, values, DIMENSION)
        mae = float(np.mean(np.abs(out_values - values)))
        keys_ok = "lossless" if np.array_equal(out_keys, keys) else "LOSSY!"
        print(
            f"{config.ablation_label:<22} {message.num_bytes / 1024:>10.1f} "
            f"{message.compression_rate:>6.2f} {mae:>10.6f} {keys_ok:>9}"
        )

    # The guarantees that make the lossy stages safe for SGD:
    full = SketchMLCompressor(SketchMLConfig.full())
    _, decoded, message = full.roundtrip(keys, values, DIMENSION)
    assert np.all(np.sign(decoded) == np.sign(values)), "signs never flip"
    assert np.abs(decoded).max() <= np.abs(values).max(), "never amplified"
    print("\nguarantees verified: keys lossless, signs preserved, no amplification")
    print(f"message breakdown: { {k: v for k, v in sorted(message.breakdown.items())} }")


if __name__ == "__main__":
    main()
