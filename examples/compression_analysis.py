"""Analyse a gradient and choose a compressor for it.

Walks the decision a downstream user faces: profile the gradient
(Fig. 4-style statistics), compare every registered codec on it, and
visualise the size/error trade-off — all in the terminal.

Run:  python examples/compression_analysis.py
"""

import numpy as np

from repro.analysis import compare_compressors, format_report, profile_gradient
from repro.bench import bar_chart, sparkline
from repro.models import LogisticRegression
from repro.data import kdd12_like


def main() -> None:
    # A real first gradient from the KDD12-like workload.
    data = kdd12_like(seed=0, scale=0.25)
    model = LogisticRegression(data.num_features, reg_lambda=0.0)
    batch = np.arange(int(data.num_rows * 0.1))
    keys, values, _ = model.batch_gradient(data, batch, model.init_theta())

    profile = profile_gradient(keys, values, data.num_features)
    print("== gradient profile (the Fig. 4 statistics) ==")
    print(f"  nonzeros            : {profile.nnz:,} of {profile.dimension:,} "
          f"({profile.density:.4%} dense)")
    print(f"  value range         : [{profile.value_min:+.5f}, "
          f"{profile.value_max:+.5f}]")
    print(f"  near zero           : {profile.near_zero_fraction:.0%} of values "
          f"under a tenth of the max magnitude")
    print(f"  90% of L1 mass in   : {profile.concentration_90:.1%} of entries")
    print(f"  KS nonuniformity    : {profile.uniformity_ks:.2f} (0 = uniform)")
    print(f"  delta-key cost      : {profile.bytes_per_key:.2f} bytes/key")
    print(f"  SketchML-friendly   : {profile.is_sketchml_friendly}\n")

    sorted_mags = np.sort(np.abs(values))[:: max(1, keys.size // 60)]
    print("magnitude profile (sorted):", sparkline(sorted_mags), "\n")

    print("== codec comparison ==")
    rows = compare_compressors(keys, values, data.num_features)
    print(format_report(rows))
    print()

    lossless = [r for r in rows if r.keys_lossless]
    print("== bytes on the wire (lossless-key codecs) ==")
    print(bar_chart(
        [r.name for r in lossless],
        [r.num_bytes / 1024 for r in lossless],
        width=44,
        unit=" KiB",
    ))


if __name__ == "__main__":
    main()
