"""Distributed logistic regression: SketchML vs Adam vs ZipML.

Reproduces the paper's core experiment at example scale: a KDD10-like
sparse dataset partitioned over ten simulated workers, trained with
mini-batch Adam SGD while gradients travel through each compressor.
Prints per-epoch simulated times, bytes on the wire, and the loss
trajectory — SketchML's epochs are several times cheaper at nearly the
same convergence per epoch.

Run:  python examples/distributed_training.py
"""

from repro import (
    DistributedTrainer,
    IdentityCompressor,
    SketchMLCompressor,
    TrainerConfig,
    ZipMLCompressor,
    cluster1_like,
)
from repro.data import kdd10_like, train_test_split
from repro.models import LogisticRegression
from repro.optim import Adam

METHODS = {
    "Adam (no compression)": IdentityCompressor,
    "ZipML (16-bit uniform)": lambda: ZipMLCompressor(bits=16),
    "SketchML": SketchMLCompressor,
}


def main() -> None:
    data = kdd10_like(seed=0, scale=0.5)
    train, test = train_test_split(data, seed=0)
    print(f"dataset: {train.num_rows:,} train rows, {data.num_features:,} features, "
          f"{train.avg_nnz_per_row:.0f} nnz/row\n")

    for name, factory in METHODS.items():
        trainer = DistributedTrainer(
            model=LogisticRegression(data.num_features, reg_lambda=0.01),
            optimizer=Adam(learning_rate=0.01),
            compressor_factory=factory,
            network=cluster1_like(),
            config=TrainerConfig(
                num_workers=10,
                batch_fraction=0.1,
                epochs=5,
                seed=0,
                compute_seconds_per_nnz=3e-4,
            ),
        )
        history = trainer.train(train, test)
        print(f"== {name} ==")
        print(f"  avg epoch time : {history.avg_epoch_seconds:8.2f} s (simulated)")
        print(f"  bytes sent     : {history.total_bytes_sent / 1024:8.1f} KiB")
        print(f"  compression    : {history.avg_compression_rate:8.2f}x")
        losses = ", ".join(f"{loss:.4f}" for loss in history.test_losses)
        print(f"  test loss/epoch: {losses}\n")


if __name__ == "__main__":
    main()
