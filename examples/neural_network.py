"""SketchML on a neural network (the paper's Appendix B.3 scenario).

Trains a multilayer perceptron on synthetic MNIST-like 20×20 images
with compressed gradient exchange.  MLP gradients are *dense*, so key
compression contributes little — the regime the paper's "Limitation"
paragraph calls out — but quantile-bucket quantization still shrinks
messages several-fold without derailing convergence.

Run:  python examples/neural_network.py
"""

import numpy as np

from repro import (
    DistributedTrainer,
    IdentityCompressor,
    SketchMLCompressor,
    TrainerConfig,
    ZipMLCompressor,
)
from repro.data import mnist_like
from repro.distributed import NetworkModel
from repro.models import DenseDataset, MLPClassifier
from repro.optim import Adam


def main() -> None:
    images, labels = mnist_like(num_train=1_200, seed=0)
    train = DenseDataset(images[:1_000], labels[:1_000])
    test = DenseDataset(images[1_000:], labels[1_000:])
    print(f"data: {train.num_rows} train / {test.num_rows} test images of "
          f"{train.num_features} pixels, 10 classes\n")

    for name, factory in (
        ("Adam", IdentityCompressor),
        ("ZipML", lambda: ZipMLCompressor(bits=16)),
        ("SketchML", SketchMLCompressor),
    ):
        model = MLPClassifier(
            input_dim=400, hidden_dims=(64, 64), num_classes=10, seed=1
        )
        trainer = DistributedTrainer(
            model=model,
            optimizer=Adam(learning_rate=0.005),
            compressor_factory=factory,
            network=NetworkModel(bandwidth_bytes_per_sec=1e6, latency_sec=2e-3),
            config=TrainerConfig(
                num_workers=5,
                batch_fraction=0.25,
                epochs=5,
                seed=0,
                compute_seconds_per_nnz=1e-6,
            ),
        )
        history = trainer.train(train, test)
        accuracy = model.accuracy(test, np.arange(test.num_rows), trainer.theta)
        print(f"== {name} ==")
        print(f"  epoch time  : {history.avg_epoch_seconds:6.2f} s (simulated)")
        print(f"  compression : {history.avg_compression_rate:6.2f}x")
        print(f"  final loss  : {history.test_losses[-1]:.4f}")
        print(f"  accuracy    : {accuracy:.3f}\n")


if __name__ == "__main__":
    main()
