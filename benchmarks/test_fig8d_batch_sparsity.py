"""Figure 8(d): impact of batch size and sparsity.

Three panels in the paper (KDD10, SketchML):

1. batch ratio 0.1 → 0.01 drives gradient sparsity down (fewer rows
   per batch touch fewer dimensions);
2. smaller batches mean more synchronisation rounds per epoch, so the
   run time per epoch *increases*;
3. bytes per encoded key grow slightly as gradients get sparser
   (larger key deltas), staying ≈1.25–1.3 overall.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment
from repro.core.delta_encoding import delta_key_stats

BATCH_RATIOS = [0.1, 0.03, 0.01]


def run_batch_sweep():
    out = {}
    for ratio in BATCH_RATIOS:
        spec = ExperimentSpec(
            profile="kdd10",
            model="lr",
            method="SketchML",
            num_workers=10,
            epochs=2,
            batch_fraction=ratio,
            cluster="cluster1",
        )
        out[ratio] = run_experiment(spec)
    return out


def test_fig8d_batch_ratio_and_sparsity(benchmark, archive):
    results = run_once(benchmark, run_batch_sweep)

    train, _ = __import__("repro.bench", fromlist=["load_split"]).load_split("kdd10")
    dimension = train.num_features
    rows = []
    for ratio in BATCH_RATIOS:
        history = results[ratio]
        nnz = np.mean([e.gradient_nnz for e in history.epochs])
        rows.append(
            [
                ratio,
                round(nnz / dimension * 100, 4),
                round(history.avg_epoch_seconds, 2),
            ]
        )
    table1 = format_table(
        ["batch ratio", "gradient sparsity (%)", "epoch time (s)"],
        rows,
        title="Figure 8(d): batch ratio vs sparsity vs run time (KDD10-like)",
    )

    # Right panel: bytes/key as sparsity varies, measured directly.
    rng = np.random.default_rng(0)
    key_rows = []
    for density in (0.1, 0.05, 0.01, 0.001):
        nnz = max(16, int(dimension * density))
        keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
        key_rows.append([density, round(delta_key_stats(keys).bytes_per_key, 3)])
    table2 = format_table(
        ["gradient density", "bytes per key"],
        key_rows,
        title="Figure 8(d) right panel: delta-key cost vs density",
    )
    archive("fig8d_batch_sparsity", table1 + "\n\n" + table2)

    sparsities = [row[1] for row in rows]
    times = [row[2] for row in rows]
    assert sparsities[0] > sparsities[1] > sparsities[2], (
        "smaller batches must produce sparser gradients"
    )
    assert times[2] > times[0], "smaller batches must cost more time per epoch"
    byte_costs = [row[1] for row in key_rows]
    # ~1.25 at the paper's 10% density, drifting up as keys spread out.
    assert byte_costs[0] == pytest.approx(1.25, abs=0.1)
    assert all(1.0 <= b < 2.5 for b in byte_costs)
    assert byte_costs[-1] >= byte_costs[0], "sparser keys cost more bytes each"
