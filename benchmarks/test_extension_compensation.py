"""Extension bench: recovering the decayed gradient mass.

Two codec-level mechanisms beyond the paper's Adam-based compensation,
measured with an aggressively lossy sketch (few bins → strong decay)
and plain SGD (no per-dimension rescaling to hide behind):

* **decay_scale** — the encoder measures its own round-trip decay and
  ships an 8-byte correction;
* **error feedback** — residuals carried into the next gradient.

Both must beat the plain lossy pipeline; the table reports all three.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table, load_split
from repro.compression import ErrorFeedbackCompressor
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.distributed import DistributedTrainer, TrainerConfig, cluster1_like
from repro.models import LogisticRegression
from repro.optim import SGD

LOSSY = dict(minmax_cols_factor=0.02, num_groups=2)


def run_variants():
    train, test = load_split("kdd10", scale=0.4)
    variants = {
        "lossy SketchML": lambda: SketchMLCompressor(
            SketchMLConfig.full(**LOSSY)
        ),
        "+ decay scale": lambda: SketchMLCompressor(
            SketchMLConfig.full(compensate_decay=True, **LOSSY)
        ),
        "+ error feedback": lambda: ErrorFeedbackCompressor(
            SketchMLCompressor(SketchMLConfig.full(**LOSSY))
        ),
    }
    results = {}
    for name, factory in variants.items():
        trainer = DistributedTrainer(
            model=LogisticRegression(train.num_features, reg_lambda=0.01),
            optimizer=SGD(learning_rate=0.5),
            compressor_factory=factory,
            network=cluster1_like(),
            config=TrainerConfig(num_workers=4, epochs=5, seed=0,
                                 method_label=name),
        )
        results[name] = trainer.train(train, test)
    return results


def test_extension_decay_compensation(benchmark, archive):
    results = run_once(benchmark, run_variants)
    rows = [
        [name]
        + [round(loss, 4) for loss in h.test_losses]
        + [round(h.avg_compression_rate, 2)]
        for name, h in results.items()
    ]
    archive(
        "extension_compensation",
        format_table(
            ["variant"] + [f"ep{i}" for i in range(5)] + ["rate"],
            rows,
            title="Extension: recovering decayed gradients (plain SGD, lossy sketch)",
        ),
    )

    final = {name: h.test_losses[-1] for name, h in results.items()}
    # The shipped decay scale strictly improves plain-SGD convergence.
    assert final["+ decay scale"] < final["lossy SketchML"]
    for name, h in results.items():
        assert np.isfinite(h.test_losses[-1]), name

    # Error feedback's guarantee is about *cumulative decoded mass*, and
    # in this two-stage pipeline (worker EF cannot see the driver's
    # re-compression) it does not translate into a per-epoch loss win —
    # an honest negative result recorded in the table above.  Assert
    # the mechanism-level property directly instead:
    rng = np.random.default_rng(0)
    dim = 20_000
    keys = np.sort(rng.choice(dim, size=800, replace=False))
    target = rng.laplace(scale=0.01, size=800)
    target[target == 0.0] = 1e-6

    def cumulative_error(compressor, rounds=30):
        total = np.zeros(dim)
        for _ in range(rounds):
            got_keys, got_values = compressor.decompress(
                compressor.compress(keys, target, dim)
            )
            np.add.at(total, got_keys, got_values)
        intended = np.zeros(dim)
        np.add.at(intended, keys, rounds * target)
        return float(np.linalg.norm(total - intended))

    plain_err = cumulative_error(
        SketchMLCompressor(SketchMLConfig.full(**LOSSY))
    )
    ef_err = cumulative_error(
        ErrorFeedbackCompressor(SketchMLCompressor(SketchMLConfig.full(**LOSSY)))
    )
    # Under this severely collision-bound sketch the residual itself is
    # re-decayed every round, so the gain is modest here (the
    # quantization-bound case in tests/test_error_feedback_and_local_sgd
    # shows the >3x version); it must still strictly help.
    assert ef_err < plain_err * 0.85, "EF must reduce the accumulated bias"
