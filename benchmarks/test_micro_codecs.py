"""Micro-benchmarks: encode/decode throughput of every compressor.

Not a paper figure — supporting data for Fig. 8(c)'s CPU-overhead story
and a regression guard on codec performance.
"""

import numpy as np
import pytest

from repro.compression import (
    Float16Compressor,
    IdentityCompressor,
    OneBitCompressor,
    TopKCompressor,
    ZipMLCompressor,
)
from repro.core import SketchMLCompressor, SketchMLConfig

DIMENSION = 1_000_000
NNZ = 50_000


def make_gradient(seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(DIMENSION, size=NNZ, replace=False))
    values = rng.laplace(scale=0.01, size=NNZ)
    values[values == 0.0] = 1e-6
    return keys, values


COMPRESSORS = {
    "identity": IdentityCompressor,
    "zipml16": lambda: ZipMLCompressor(bits=16),
    "zipml8": lambda: ZipMLCompressor(bits=8),
    "onebit": lambda: OneBitCompressor(error_feedback=False),
    "topk": lambda: TopKCompressor(ratio=0.1, error_feedback=False),
    "float16": Float16Compressor,
    "sketchml": lambda: SketchMLCompressor(SketchMLConfig.full()),
    "sketchml_q256_r16": lambda: SketchMLCompressor(
        SketchMLConfig.full(num_buckets=256, num_groups=16)
    ),
}


@pytest.mark.parametrize("name", sorted(COMPRESSORS))
def test_compress_throughput(benchmark, name):
    keys, values = make_gradient()
    comp = COMPRESSORS[name]()

    def run():
        return comp.compress(keys, values, DIMENSION)

    message = benchmark(run)
    assert message.num_bytes > 0


@pytest.mark.parametrize("name", sorted(COMPRESSORS))
def test_decompress_throughput(benchmark, name):
    keys, values = make_gradient(seed=1)
    comp = COMPRESSORS[name]()
    message = comp.compress(keys, values, DIMENSION)

    def run():
        return comp.decompress(message)

    out_keys, _ = benchmark(run)
    assert out_keys.size > 0


def test_quantile_sketch_insert_throughput(benchmark):
    from repro.sketch.quantile import KLLSketch

    rng = np.random.default_rng(2)
    values = rng.laplace(size=200_000)

    def run():
        sk = KLLSketch(k=128, seed=0)
        sk.insert_many(values)
        return sk

    sk = benchmark(run)
    assert len(sk) == values.size


def test_wire_serialization_throughput(benchmark):
    from repro.core import (
        SketchMLCompressor,
        deserialize_message,
        serialize_message,
    )

    keys, values = make_gradient(seed=4)
    message = SketchMLCompressor().compress(keys, values, DIMENSION)

    def run():
        return deserialize_message(serialize_message(message))

    rebuilt = benchmark(run)
    assert rebuilt.nnz == message.nnz


def test_minmax_sketch_insert_query_throughput(benchmark):
    from repro.core import MinMaxSketch

    rng = np.random.default_rng(3)
    keys = np.sort(rng.choice(10**7, size=100_000, replace=False))
    indexes = rng.integers(0, 128, size=100_000)

    def run():
        sk = MinMaxSketch(num_rows=2, num_bins=20_000, index_range=128, seed=0)
        sk.insert_many(keys, indexes)
        return sk.query_many(keys)

    decoded = benchmark(run)
    assert np.all(decoded <= indexes)
