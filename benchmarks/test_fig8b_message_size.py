"""Figure 8(b): average message size and compression rate per stage.

Paper values (KDD10, LR): 35.58 → 27.39 → 6.63 → 4.92 MB, i.e.
compression rates 1.00 / 1.30 / 5.36 / 7.24.  Our messages are ~10³×
smaller, but the ordering and the approximate per-stage ratios must
reproduce (delta keys ≈ 1.3×; quantization the large jump; MinMax a
further gain).
"""

import pytest

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment

STAGES = ["Adam", "Adam+Key", "Adam+Key+Quan", "Adam+Key+Quan+MinMax"]


def run_stages():
    out = {}
    for stage in STAGES:
        spec = ExperimentSpec(
            profile="kdd10",
            model="lr",
            method=stage,
            num_workers=10,
            epochs=3,
            cluster="cluster1",
        )
        out[stage] = run_experiment(spec)
    return out


def test_fig8b_message_size_and_compression_rate(benchmark, archive):
    results = run_once(benchmark, run_stages)

    rows = []
    for stage in STAGES:
        history = results[stage]
        last = history.epochs[-1]
        rows.append(
            [
                stage,
                round(last.avg_message_bytes / 1024, 2),
                round(history.avg_compression_rate, 2),
            ]
        )
    archive(
        "fig8b_message_size",
        format_table(
            ["stage", "avg message (KiB)", "compression rate"],
            rows,
            title="Figure 8(b): message size & compression rate (KDD10-like, LR)",
        ),
    )

    rates = [results[s].avg_compression_rate for s in STAGES]
    assert rates[0] == pytest.approx(1.0, rel=0.02)
    # Paper: delta keys alone give 1.30x.
    assert rates[1] == pytest.approx(1.30, rel=0.1)
    # Quantization is the big jump; MinMax adds a further gain.
    assert rates[2] > 2.5 * rates[1]
    assert rates[3] > rates[2]
    sizes = [results[s].epochs[-1].avg_message_bytes for s in STAGES]
    assert sizes == sorted(sizes, reverse=True)
