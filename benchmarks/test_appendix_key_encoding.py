"""§3.4 / §A.3: delta-binary keys vs the alternative lossless codecs.

Quantifies the paper's codec claims: ~1.27 bytes/key at realistic
sparsity (3.2× below raw 4-byte ints), RLE/Huffman useless for
scattered keys, bitmap only competitive when dense.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table
from repro.compression.lossless import all_key_codecs

DIMENSION = 2**20


def measure_codecs():
    rng = np.random.default_rng(0)
    results = {}
    for density in (0.1, 0.01, 0.001):
        nnz = int(DIMENSION * density)
        keys = np.sort(rng.choice(DIMENSION, size=nnz, replace=False))
        for codec in all_key_codecs(DIMENSION):
            results[(density, codec.name)] = codec.bytes_per_key(keys)
    return results


def test_appendix_key_codec_comparison(benchmark, archive):
    results = run_once(benchmark, measure_codecs)

    codec_names = sorted({name for _, name in results})
    densities = sorted({d for d, _ in results}, reverse=True)
    rows = [
        [name] + [round(results[(d, name)], 3) for d in densities]
        for name in codec_names
    ]
    archive(
        "appendix_key_encoding",
        format_table(
            ["codec"] + [f"density={d}" for d in densities],
            rows,
            title="§3.4/§A.3: bytes per key by codec and gradient density",
        ),
    )

    for density in densities:
        delta = results[(density, "delta_binary")]
        # Paper §4.2: ~1.25-1.27 bytes/key at the evaluated sparsities
        # (≥1%); extreme sparsity needs wider deltas but stays well
        # under raw int32.
        assert delta < (1.6 if density >= 0.01 else 2.5)
        assert results[(density, "raw_int32")] / delta > 1.9
        # RLE cannot beat delta-binary on scattered keys.
        assert results[(density, "rle_bitmap")] > delta
        # Huffman over delta *bytes* (the strongest Huffman variant we
        # could give the paper's argument) is at best marginally
        # smaller at high density and loses as keys spread out — and it
        # is orders of magnitude slower to code (see the throughput
        # bench below), which is the practical reason §3.4 dismisses it.
        assert results[(density, "huffman_delta")] > 0.8 * delta
    assert results[(0.001, "huffman_delta")] > results[(0.001, "delta_binary")]
    # Bitmap: cost per key explodes as density falls (fixed D/8 bytes).
    assert results[(0.001, "bitmap")] > 50 * results[(0.1, "bitmap")]


def test_delta_key_throughput(benchmark):
    """Micro-benchmark: encode+decode throughput of the key codec."""
    from repro.core import decode_keys, encode_keys

    rng = np.random.default_rng(1)
    keys = np.sort(rng.choice(DIMENSION, size=100_000, replace=False))

    def roundtrip():
        return decode_keys(encode_keys(keys))

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, keys)


def test_delta_binary_much_faster_than_huffman(benchmark):
    """The practical §3.4 argument: byte-flag coding is vectorisable,
    Huffman is bit-serial — delta-binary codes the same keys orders of
    magnitude faster."""
    import time

    from repro.compression.lossless import (
        DeltaBinaryKeyCodec,
        HuffmanDeltaKeyCodec,
    )

    rng = np.random.default_rng(2)
    keys = np.sort(rng.choice(DIMENSION, size=20_000, replace=False))

    def timed(codec):
        t0 = time.perf_counter()
        codec.decode(codec.encode(keys))
        return time.perf_counter() - t0

    delta_time = benchmark.pedantic(
        lambda: timed(DeltaBinaryKeyCodec()), rounds=1, iterations=1
    )
    huffman_time = timed(HuffmanDeltaKeyCodec())
    assert huffman_time > 20 * delta_time
