"""Figure 10: test loss against wall-clock time, 3 algorithms × 2 datasets.

The paper's curves show SketchML reaching any given loss level sooner
than Adam and ZipML because its epochs are several times cheaper while
its per-epoch convergence stays close to the exact-gradient baseline.
We regenerate the (time, loss) series and assert that at matched time
budgets SketchML's loss is the lowest.
"""

import numpy as np

from conftest import run_once
from repro.bench import ExperimentSpec, format_series, run_experiment

MODELS = ["lr", "svm", "linear"]
METHODS = ["SketchML", "Adam", "ZipML"]


def run_fig10():
    results = {}
    for profile in ("kdd12", "ctr"):
        for model in MODELS:
            for method in METHODS:
                spec = ExperimentSpec(
                    profile=profile,
                    model=model,
                    method=method,
                    num_workers=10,
                    epochs=6,
                    cluster="cluster2",
                )
                results[(profile, model, method)] = run_experiment(spec)
    return results


def loss_at_time(history, budget):
    """Last observed loss at or before the given time budget."""
    curve = history.loss_curve()
    best = None
    for t, loss in curve:
        if t <= budget:
            best = loss
    return best


def test_fig10_convergence_curves(benchmark, archive):
    results = run_once(benchmark, run_fig10)

    from repro.bench import line_chart

    sections = []
    for profile in ("kdd12", "ctr"):
        for model in MODELS:
            chart = line_chart(
                {
                    method: results[(profile, model, method)].loss_curve()
                    for method in METHODS
                },
                width=60,
                height=12,
            )
            sections.append(f"[{profile} / {model}]\n{chart}")
    for (profile, model, method), history in sorted(results.items()):
        sections.append(
            format_series(
                f"fig10 {profile} {model} {method}",
                history.loss_curve(),
                x_label="seconds",
                y_label="test loss",
            )
        )
    archive("fig10_convergence", "\n\n".join(sections))

    for profile in ("kdd12", "ctr"):
        for model in MODELS:
            sketch = results[(profile, model, "SketchML")]
            adam = results[(profile, model, "Adam")]
            zipml = results[(profile, model, "ZipML")]
            # Evaluate everyone at the time SketchML finished (its whole
            # run fits inside the others' budgets).
            budget = sketch.cumulative_seconds[-1]
            sketch_loss = sketch.loss_curve()[-1][1]
            adam_loss = loss_at_time(adam, budget)
            zipml_loss = loss_at_time(zipml, budget)
            for other_name, other_loss in (("Adam", adam_loss), ("ZipML", zipml_loss)):
                if other_loss is None:
                    continue  # competitor finished no epoch in the budget
                assert sketch_loss <= other_loss + 1e-6, (
                    f"{profile}/{model}: SketchML loss {sketch_loss:.4f} vs "
                    f"{other_name} {other_loss:.4f} at t={budget:.1f}s"
                )
            # And the final losses are comparable — compression does not
            # derail convergence (within 5% of Adam's final loss).
            assert sketch.loss_curve()[-1][1] <= adam.loss_curve()[-1][1] * 1.05
            assert np.isfinite(sketch_loss)
