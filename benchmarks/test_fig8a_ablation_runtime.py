"""Figure 8(a): run time per epoch as components are added.

Paper setting: KDD10 on ten executors of Cluster-1; bars for
Adam → Adam+Key → Adam+Key+Quan → Adam+Key+Quan+MinMax across
LR / SVM / Linear.  Each added component must reduce the epoch time.
"""

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment

STAGES = ["Adam", "Adam+Key", "Adam+Key+Quan", "Adam+Key+Quan+MinMax"]
MODELS = ["lr", "svm", "linear"]


def run_ablation():
    results = {}
    for model in MODELS:
        for stage in STAGES:
            spec = ExperimentSpec(
                profile="kdd10",
                model=model,
                method=stage,
                num_workers=10,
                epochs=3,
                cluster="cluster1",
            )
            results[(model, stage)] = run_experiment(spec)
    return results


def test_fig8a_component_ablation(benchmark, archive):
    results = run_once(benchmark, run_ablation)

    rows = [
        [model.upper()] + [round(results[(model, s)].avg_epoch_seconds, 2) for s in STAGES]
        for model in MODELS
    ]
    archive(
        "fig8a_ablation_runtime",
        format_table(
            ["model"] + STAGES,
            rows,
            title="Figure 8(a): run time per epoch (seconds), KDD10-like, 10 workers",
        ),
    )

    for model in MODELS:
        times = [results[(model, s)].avg_epoch_seconds for s in STAGES]
        # Every component strictly helps, as in the paper's bars.
        assert times[1] < times[0], f"{model}: delta keys must beat Adam"
        assert times[2] < times[1], f"{model}: quantization must beat keys-only"
        assert times[3] <= times[2] * 1.05, f"{model}: MinMax must not regress"
        # Full stack is a multiple faster than plain Adam (paper: ~4-6x).
        assert times[0] / times[3] > 2.0, f"{model}: full stack under 2x speedup"
