"""Figure 12 (Appendix B.1): distributed SketchML vs a single-node system.

Paper: scikit-learn on one machine vs SketchML on 5 and 10 machines,
KDD10, twenty epochs.  SketchML-5 is ~2× faster than the serial system
(compute parallelism + fast parallel loading), and SketchML-10 adds a
further ~1.3-1.6×.
"""

from conftest import run_once
from repro.baselines import SingleNodeConfig, SingleNodeTrainer
from repro.bench import ExperimentSpec, format_table, load_split, run_experiment
from repro.models import LogisticRegression
from repro.optim import Adam

EPOCHS = 5
COMPUTE_PER_NNZ = 3e-4


def run_fig12():
    train, test = load_split("kdd10")
    serial = SingleNodeTrainer(
        LogisticRegression(train.num_features, reg_lambda=0.01),
        Adam(learning_rate=0.01),
        SingleNodeConfig(
            epochs=EPOCHS,
            compute_seconds_per_nnz=COMPUTE_PER_NNZ,
            # Single disk: load the full file at laptop-scaled
            # throughput; the cluster splits loading W ways.
            disk_bytes_per_sec=2e5,
        ),
    )
    histories = {"SkLearn": serial.train(train, test)}
    for workers in (5, 10):
        spec = ExperimentSpec(
            profile="kdd10",
            model="lr",
            method="SketchML",
            num_workers=workers,
            epochs=EPOCHS,
            cluster="cluster1",
        )
        histories[f"SketchML-{workers}"] = run_experiment(spec)
    return histories


def test_fig12_single_node_comparison(benchmark, archive):
    histories = run_once(benchmark, run_fig12)

    rows = [
        [name, round(sum(h.epoch_seconds), 2), round(h.avg_epoch_seconds, 2)]
        for name, h in histories.items()
    ]
    archive(
        "fig12_single_node",
        format_table(
            ["system", f"total time for {EPOCHS} epochs (s)", "avg epoch (s)"],
            rows,
            title="Figure 12: single-node system vs distributed SketchML (KDD10-like, LR)",
        ),
    )

    total = {name: sum(h.epoch_seconds) for name, h in histories.items()}
    # SketchML-5 beats the serial system; SketchML-10 beats SketchML-5.
    assert total["SketchML-5"] < total["SkLearn"]
    assert total["SketchML-10"] < total["SketchML-5"]
    # Paper's factors: 2-2.7x serial->5 workers, 1.3-1.6x for 5->10.
    assert total["SkLearn"] / total["SketchML-5"] > 1.5
