"""Figure 13 + Table 3 (Appendix B.2): hyper-parameter sensitivity.

Paper setting: KDD12, Linear Regression, defaults (quantile size 128,
MinMaxSketch rows 2, columns d/5).  Findings to reproduce:

* quantile size 128 → 256 barely changes epoch time but reduces
  quantization error (faster convergence per epoch);
* rows 2 → 4 costs communication (slower epochs: Table 3 shows
  360 → 420 s) for less hash collision;
* columns d/5 → d/2 costs some communication but significantly cuts
  the decode error, improving convergence.
"""

import numpy as np

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment

VARIANTS = {
    "default": {},
    "quan_256": {"num_buckets": 256},
    "row_4": {"minmax_rows": 4},
    "col_d/2": {"minmax_cols_factor": 0.5},
}


def spec_for(name):
    overrides = tuple(sorted(VARIANTS[name].items()))
    return ExperimentSpec(
        profile="kdd12",
        model="linear",
        method="SketchML",
        num_workers=10,
        epochs=5,
        cluster="cluster2",
        sketch_overrides=overrides,
    )


def run_variants():
    return {name: run_experiment(spec_for(name)) for name in VARIANTS}


def decode_error(overrides, seed=0):
    """Mean |decoded - true| of one compressed gradient per variant."""
    from repro.core import SketchMLCompressor, SketchMLConfig

    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(400_000, size=20_000, replace=False))
    values = rng.laplace(scale=0.01, size=20_000)
    values[values == 0.0] = 1e-6
    comp = SketchMLCompressor(SketchMLConfig.full(**overrides))
    _, decoded, _ = comp.roundtrip(keys, values, 400_000)
    return float(np.mean(np.abs(decoded - values)))


def test_fig13_table3_sensitivity(benchmark, archive):
    results = run_once(benchmark, run_variants)

    rows = []
    for name in VARIANTS:
        history = results[name]
        rows.append(
            [
                name,
                round(history.avg_epoch_seconds, 2),
                round(history.loss_curve()[-1][1], 5),
                round(decode_error(VARIANTS[name]), 6),
            ]
        )
    archive(
        "fig13_table3_sensitivity",
        format_table(
            ["variant", "sec/epoch (Table 3)", "final loss", "decode error"],
            rows,
            title="Figure 13 / Table 3: sensitivity (KDD12-like, Linear)",
        ),
    )

    seconds = {name: results[name].avg_epoch_seconds for name in VARIANTS}
    errors = {name: decode_error(VARIANTS[name]) for name in VARIANTS}
    # Table 3: row_4 is the slowest variant (more sketch bytes).
    assert seconds["row_4"] > seconds["default"]
    # quan_256 epoch time is close to default (paper: 360 vs 353).
    assert abs(seconds["quan_256"] - seconds["default"]) / seconds["default"] < 0.15
    # Larger sketches / more buckets cut the decode error.
    assert errors["col_d/2"] < errors["default"]
    assert errors["quan_256"] < errors["default"] * 1.05
