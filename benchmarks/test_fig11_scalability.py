"""Figure 11: scalability over 5 / 10 / 50 workers (KDD12).

Paper shape: every method speeds up from 5 to 10 workers; at 50 workers
Adam *deteriorates* ("the increase of communication cost overwhelms the
benefit of computation cost") while SketchML and ZipML keep improving.

The mechanism needs message-size saturation: at production scale every
worker's batch touches all frequent features, so splitting a fixed
global batch across more workers duplicates the hot keys in every
message and the total gather volume grows with W.  The laptop-scale
default profile never saturates, so this bench uses the
``kdd12-hothead`` profile (hotter Zipf head, larger batches) — see
DESIGN.md §2 and EXPERIMENTS.md.
"""

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment

WORKER_COUNTS = [5, 10, 50]
METHODS = ["SketchML", "Adam", "ZipML"]
MODELS = ["lr", "svm", "linear"]


def spec_for(model, method, workers):
    return ExperimentSpec(
        profile="kdd12-hothead",
        model=model,
        method=method,
        num_workers=workers,
        epochs=3,
        batch_fraction=0.5,
        bandwidth_override=2.5e4,
    )


def run_fig11():
    results = {}
    for model in MODELS:
        for method in METHODS:
            for workers in WORKER_COUNTS:
                results[(model, method, workers)] = run_experiment(
                    spec_for(model, method, workers)
                )
    return results


def test_fig11_scalability(benchmark, archive):
    results = run_once(benchmark, run_fig11)

    tables = []
    for model in MODELS:
        rows = [
            [method]
            + [
                round(results[(model, method, w)].avg_epoch_seconds, 2)
                for w in WORKER_COUNTS
            ]
            for method in METHODS
        ]
        tables.append(
            format_table(
                ["method"] + [f"W={w}" for w in WORKER_COUNTS],
                rows,
                title=f"Figure 11 ({model.upper()}): epoch time vs workers",
            )
        )
    archive("fig11_scalability", "\n\n".join(tables))

    for model in MODELS:
        def t(method, w):
            return results[(model, method, w)].avg_epoch_seconds

        # SketchML is the fastest at every cluster size.
        for w in WORKER_COUNTS:
            assert t("SketchML", w) < t("Adam", w)
        # 5 → 10 workers helps every method (within noise).
        for method in METHODS:
            assert t(method, 10) <= t(method, 5) * 1.05, (
                f"{model}/{method}: no speedup from 5 to 10 workers"
            )
        # At 50 workers Adam deteriorates...
        assert t("Adam", 50) > t("Adam", 10), (
            f"{model}: Adam should slow down at 50 workers"
        )
        # ...while SketchML does not (flat or better).
        assert t("SketchML", 50) <= t("SketchML", 10) * 1.15, (
            f"{model}: SketchML should keep scaling at 50 workers"
        )
