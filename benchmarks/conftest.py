"""Shared infrastructure for the figure/table reproduction benches.

Every bench:

* regenerates one table or figure of the paper (same rows/series),
* archives the text output under ``benchmarks/results/``,
* asserts the paper's *shape* (who wins, direction of trends) — not
  absolute numbers, which depend on the simulated substrate.

Run with ``pytest benchmarks/ --benchmark-only``.  Heavy experiments run
once per process via :func:`repro.bench.run_experiment`'s cache.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Write a bench's text output to benchmarks/results/<name>.txt."""

    def _archive(name: str, content: str) -> str:
        from repro.bench import write_result

        print()
        print(content)
        return write_result(name, content, directory=results_dir)

    return _archive


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
