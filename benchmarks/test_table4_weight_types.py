"""Table 4 (Appendix B.4): weight types of the transferred values.

Paper row 1 (seconds/epoch, KDD12 LR): SketchML 100 < ZipML-8bit 231 <
ZipML-16bit 278 < Adam-float 725 < Adam-double 1041.
Paper row 2 (loss after a fixed budget): SketchML best; ZipML-8bit
worst ("converges badly").
"""

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment

METHODS = ["SketchML", "ZipML-8bit", "ZipML", "Adam-float", "Adam"]
LABELS = {
    "SketchML": "SketchML",
    "ZipML-8bit": "ZipML-8bit",
    "ZipML": "ZipML-16bit",
    "Adam-float": "Adam-float",
    "Adam": "Adam-double",
}


def run_table4():
    results = {}
    for method in METHODS:
        spec = ExperimentSpec(
            profile="kdd12",
            model="lr",
            method=method,
            num_workers=10,
            epochs=6,
            cluster="cluster2",
        )
        results[method] = run_experiment(spec)
    return results


def loss_at_time(history, budget):
    best = None
    for t, loss in history.loss_curve():
        if t <= budget:
            best = loss
    return best


def test_table4_weight_types(benchmark, archive):
    results = run_once(benchmark, run_table4)

    # Fixed time budget = when SketchML finishes its run (the paper's
    # "minimal loss after two hours" — everyone is scored at the same
    # wall-clock instant; slow methods have completed fewer epochs).
    budget = results["SketchML"].cumulative_seconds[-1]
    rows = []
    for method in METHODS:
        history = results[method]
        rows.append(
            [
                LABELS[method],
                round(history.avg_epoch_seconds, 2),
                round(loss_at_time(history, budget) or float("nan"), 5),
            ]
        )
    archive(
        "table4_weight_types",
        format_table(
            ["method", "sec/epoch", f"loss at t={budget:.0f}s"],
            rows,
            title="Table 4: weight types (KDD12-like, LR)",
        ),
    )

    seconds = {m: results[m].avg_epoch_seconds for m in METHODS}
    # Paper's epoch-time ordering.
    assert seconds["SketchML"] < seconds["ZipML-8bit"]
    assert seconds["ZipML-8bit"] < seconds["ZipML"]
    assert seconds["ZipML"] < seconds["Adam-float"]
    assert seconds["Adam-float"] < seconds["Adam"]
    # Within the fixed budget, SketchML reaches the lowest loss.
    losses = {m: loss_at_time(results[m], budget) for m in METHODS}
    for method in METHODS:
        if method != "SketchML" and losses[method] is not None:
            assert losses["SketchML"] <= losses[method] + 1e-6
