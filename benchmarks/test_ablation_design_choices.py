"""Ablations of SketchML's design choices (DESIGN.md §5).

Not paper figures, but each validates one argument the paper makes in
prose:

1. §3.3 motivation — storing bucket indexes in an *additive* Count-Min
   amplifies decoded gradients and wrecks training; MinMax's min/max
   protocol decays them and trains fine.
2. §3.3 Problem 1 — quantizing both signs together produces *reversed*
   gradients; the pos/neg split eliminates every reversal.
3. §3.3 Solution 2 — grouping (r > 1) cuts the decoded index error.
4. §3.3 Solution 2 — Adam's adaptive learning rate recovers most of the
   convergence lost to decayed gradients, vs plain SGD.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table, load_split
from repro.compression.base import (
    CompressedGradient,
    GradientCompressor,
    validate_sparse_gradient,
)
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.core.quantizer import QuantileBucketQuantizer
from repro.distributed import DistributedTrainer, TrainerConfig, cluster1_like
from repro.models import LogisticRegression
from repro.optim import SGD, Adam
from repro.sketch.frequency import CountMinSketch
from repro.sketch.quantile import exact_quantiles


class CountMinIndexCompressor(GradientCompressor):
    """The §3.3 straw man: bucket indexes stored additively in Count-Min.

    Hash collisions *add* indexes together, so decoded indexes — and
    therefore decoded gradient magnitudes — are systematically
    amplified.
    """

    name = "countmin-indexes"

    def __init__(self, num_buckets: int = 128, bins_factor: float = 0.2) -> None:
        self.num_buckets = num_buckets
        self.bins_factor = bins_factor

    def compress(self, keys, values, dimension):
        keys, values = validate_sparse_gradient(keys, values, dimension)
        quantizer = QuantileBucketQuantizer(
            num_buckets=self.num_buckets, sketch="exact"
        ).fit(values)
        signs, indexes = quantizer.encode(values)
        sketch = CountMinSketch(
            num_rows=2,
            num_bins=max(64, int(keys.size * self.bins_factor)),
            seed=0,
        )
        for key, idx in zip(keys.tolist(), indexes.tolist()):
            sketch.insert(key, count=int(idx) + 1)  # +1 so zero is representable
        num_bytes = sketch.size_bytes // 8 + keys.size * 2  # same budget class
        return CompressedGradient(
            payload=(keys.copy(), signs, sketch, quantizer),
            num_bytes=num_bytes,
            dimension=dimension,
            nnz=keys.size,
        )

    def decompress(self, message):
        keys, signs, sketch, quantizer = message.payload
        indexes = np.maximum(sketch.query_many(keys) - 1, 0)
        values = quantizer.decode(signs, indexes)
        return keys, values


def test_ablation_minmax_vs_additive_countmin(benchmark, archive):
    """Additive collision handling amplifies; MinMax never does."""

    def run():
        train, test = load_split("kdd10", scale=0.25)
        results = {}
        for name, factory in (
            ("MinMaxSketch", lambda: SketchMLCompressor(
                SketchMLConfig.full(minmax_cols_factor=0.1))),
            ("CountMin-additive", CountMinIndexCompressor),
        ):
            model = LogisticRegression(train.num_features, reg_lambda=0.01)
            trainer = DistributedTrainer(
                model=model,
                optimizer=Adam(learning_rate=0.01),
                compressor_factory=factory,
                network=cluster1_like(),
                config=TrainerConfig(num_workers=4, epochs=4, seed=0,
                                     method_label=name),
            )
            results[name] = trainer.train(train, test)
        return results

    results = run_once(benchmark, run)
    rows = [
        [name, round(h.test_losses[-1], 4)] for name, h in results.items()
    ]
    # Direct decode behaviour on one gradient.
    rng = np.random.default_rng(0)
    keys = np.sort(rng.choice(100_000, size=4_000, replace=False))
    values = rng.laplace(scale=0.01, size=4_000)
    cm = CountMinIndexCompressor(bins_factor=0.1)
    _, cm_decoded = cm.decompress(cm.compress(keys, values, 100_000))
    mm = SketchMLCompressor(SketchMLConfig.full(minmax_cols_factor=0.1))
    _, mm_decoded, _ = mm.roundtrip(keys, values, 100_000)
    cm_ratio = float(np.abs(cm_decoded).mean() / np.abs(values).mean())
    mm_ratio = float(np.abs(mm_decoded).mean() / np.abs(values).mean())
    archive(
        "ablation_minmax_vs_countmin",
        format_table(
            ["collision protocol", "final test loss", "|decoded|/|true|"],
            [row + [round(r, 3)] for row, r in zip(rows, (mm_ratio, cm_ratio))],
            title="Ablation: MinMax vs additive Count-Min indexes",
        ),
    )
    # The §3.3 argument, measured: additive collision handling inflates
    # magnitudes (amplified, unpredictable updates); min/max handling
    # only decays them.  (At this scale Adam's per-dimension rescaling
    # hides the difference in 4-epoch losses — the decode statistics
    # are the invariant claim.)
    assert cm_ratio > 1.5, "additive indexes should amplify magnitudes"
    assert mm_ratio <= 1.0, "MinMax must never amplify on average"
    assert (cm_decoded > np.abs(values).max()).any() or (
        np.abs(cm_decoded) > np.abs(values)
    ).mean() > 0.3, "Count-Min must overshoot true magnitudes broadly"
    assert np.all(np.abs(mm_decoded) <= np.abs(values).max() + 1e-12)


def test_ablation_signed_vs_split_quantization(benchmark, archive):
    """Quantizing both signs together reverses gradients (§3.3 Case 1/2)."""

    def run():
        rng = np.random.default_rng(1)
        values = rng.laplace(scale=0.01, size=30_000)
        values[values == 0.0] = 1e-6
        q = 64
        # Joint quantization: equi-depth buckets over the signed values.
        phis = np.linspace(0.0, 1.0, q + 1)
        splits = exact_quantiles(values, phis)
        splits = np.maximum.accumulate(splits)
        means = 0.5 * (splits[:-1] + splits[1:])
        idx = np.clip(np.searchsorted(splits[1:-1], values, side="right"), 0, q - 1)
        joint_decoded = means[idx]
        joint_flips = int(np.sum(np.sign(joint_decoded) * np.sign(values) < 0))
        # Split quantization (the paper's Solution 1).
        quant = QuantileBucketQuantizer(num_buckets=q, sketch="exact").fit(values)
        split_decoded = quant.quantize(values)
        split_flips = int(np.sum(np.sign(split_decoded) * np.sign(values) < 0))
        return joint_flips, split_flips, values.size

    joint_flips, split_flips, n = run_once(benchmark, run)
    archive(
        "ablation_sign_separation",
        format_table(
            ["quantization", "reversed gradients", "rate"],
            [
                ["joint (no split)", joint_flips, round(joint_flips / n, 4)],
                ["pos/neg split", split_flips, round(split_flips / n, 4)],
            ],
            title="Ablation: sign reversal with vs without pos/neg separation",
        ),
    )
    assert joint_flips > 0, "joint quantization must reverse some gradients"
    assert split_flips == 0, "the split must eliminate every reversal"


def test_ablation_grouping(benchmark, archive):
    """Grouped sketches (r > 1) cut the decoded index error (§3.3)."""

    def run():
        rng = np.random.default_rng(2)
        keys = np.sort(rng.choice(500_000, size=10_000, replace=False))
        values = rng.laplace(scale=0.01, size=10_000)
        values[values == 0.0] = 1e-6
        errors = {}
        for groups in (1, 4, 8, 16):
            comp = SketchMLCompressor(
                SketchMLConfig.full(num_groups=groups, minmax_cols_factor=0.1)
            )
            _, decoded, msg = comp.roundtrip(keys, values, 500_000)
            errors[groups] = (
                float(np.mean(np.abs(decoded - values))),
                msg.num_bytes,
            )
        return errors

    errors = run_once(benchmark, run)
    archive(
        "ablation_grouping",
        format_table(
            ["groups r", "mean decode error", "message bytes"],
            [[g, round(e, 6), b] for g, (e, b) in sorted(errors.items())],
            title="Ablation: grouped MinMaxSketch (error bound q/r)",
        ),
    )
    assert errors[8][0] < errors[1][0], "r=8 must beat ungrouped"
    assert errors[16][0] <= errors[4][0] * 1.1


def test_ablation_adam_vs_sgd_under_decay(benchmark, archive):
    """Adam compensates decayed gradients far better than plain SGD."""

    def run():
        train, test = load_split("kdd10", scale=0.25)
        results = {}
        for name, optimizer in (
            ("Adam", Adam(learning_rate=0.01)),
            ("SGD", SGD(learning_rate=0.5)),
        ):
            model = LogisticRegression(train.num_features, reg_lambda=0.01)
            trainer = DistributedTrainer(
                model=model,
                optimizer=optimizer,
                compressor_factory=lambda: SketchMLCompressor(
                    SketchMLConfig.full(minmax_cols_factor=0.05)
                ),
                network=cluster1_like(),
                config=TrainerConfig(num_workers=4, epochs=5, seed=0,
                                     method_label=name),
            )
            results[name] = trainer.train(train, test)
        return results

    results = run_once(benchmark, run)
    rows = [
        [name] + [round(loss, 4) for loss in h.test_losses]
        for name, h in results.items()
    ]
    archive(
        "ablation_adam_vs_sgd",
        format_table(
            ["optimizer"] + [f"epoch {i}" for i in range(5)],
            rows,
            title="Ablation: Adam vs SGD with decayed (MinMax) gradients",
        ),
    )
    assert results["Adam"].test_losses[-1] < results["SGD"].test_losses[-1]
