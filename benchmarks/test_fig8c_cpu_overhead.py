"""Figure 8(c): CPU overhead of compression.

The paper reports ~25% extra average CPU usage from compression while
peak CPU is barely affected.  Our proxy: the measured encode+decode
share of total compute per epoch — zero for Adam, modest (well below
half once the modelled gradient work is included) for the full stack.
"""

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment

STAGES = ["Adam", "Adam+Key", "Adam+Key+Quan", "Adam+Key+Quan+MinMax"]


def run_stages():
    out = {}
    for stage in STAGES:
        spec = ExperimentSpec(
            profile="kdd10",
            model="lr",
            method=stage,
            num_workers=10,
            epochs=3,
            cluster="cluster1",
        )
        out[stage] = run_experiment(spec)
    return out


def test_fig8c_compression_cpu_overhead(benchmark, archive):
    results = run_once(benchmark, run_stages)

    rows = []
    for stage in STAGES:
        history = results[stage]
        encode = sum(e.encode_seconds for e in history.epochs)
        decode = sum(e.decode_seconds for e in history.epochs)
        compute = sum(e.compute_seconds for e in history.epochs)
        rows.append(
            [
                stage,
                round(encode, 3),
                round(decode, 3),
                round(100 * (encode + decode) / compute, 1),
            ]
        )
    archive(
        "fig8c_cpu_overhead",
        format_table(
            ["stage", "encode (s)", "decode (s)", "codec share of compute (%)"],
            rows,
            title="Figure 8(c): CPU overhead of compression (KDD10-like, LR)",
        ),
    )

    overhead = {
        stage: row[3] for stage, row in zip(STAGES, rows)
    }
    # Adam has (almost) no codec cost; the full stack costs more than
    # keys-only; and the overhead stays a minority of total compute.
    assert overhead["Adam"] < 1.0
    assert overhead["Adam+Key+Quan+MinMax"] > overhead["Adam+Key"]
    assert overhead["Adam+Key+Quan+MinMax"] < 50.0
