"""Extension bench: Local SGD vs per-batch gradient compression.

Answers the natural question the paper leaves open: instead of
compressing every gradient, why not just synchronise less often?
Measured on the same simulated cluster, the answer *favours the
paper's approach* for sparse workloads:

* Local SGD with H=4 sends 4x fewer messages, but each delta covers
  the union of coordinates its 4 batches touched — for sparse models
  the per-sync message grows almost 4x, so total bytes shrink only
  ~20%, not 4x;
* SketchML's per-batch compression cuts bytes ~4x outright at a
  comparable loss trajectory;
* the two *compose*: Local SGD whose deltas travel through SketchML
  moves the fewest bytes of all.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table, load_split
from repro.compression import IdentityCompressor
from repro.core import SketchMLCompressor
from repro.distributed import (
    DistributedTrainer,
    LocalSGDConfig,
    LocalSGDTrainer,
    TrainerConfig,
    cluster1_like,
)
from repro.models import LogisticRegression
from repro.optim import Adam

EPOCHS = 4


def run_variants():
    train, test = load_split("kdd10", scale=0.4)
    results = {}

    def model():
        return LogisticRegression(train.num_features, reg_lambda=0.01)

    results["per-batch Adam"] = DistributedTrainer(
        model(), Adam(learning_rate=0.01), IdentityCompressor,
        cluster1_like(),
        TrainerConfig(num_workers=4, epochs=EPOCHS, seed=0),
    ).train(train, test)
    results["per-batch SketchML"] = DistributedTrainer(
        model(), Adam(learning_rate=0.01), SketchMLCompressor,
        cluster1_like(),
        TrainerConfig(num_workers=4, epochs=EPOCHS, seed=0),
    ).train(train, test)
    results["local-sgd H=4"] = LocalSGDTrainer.with_adam(
        model(), 0.01, IdentityCompressor, cluster1_like(),
        LocalSGDConfig(num_workers=4, sync_interval=4, epochs=EPOCHS, seed=0),
    ).train(train, test)
    results["local-sgd H=4 + SketchML"] = LocalSGDTrainer.with_adam(
        model(), 0.01, SketchMLCompressor, cluster1_like(),
        LocalSGDConfig(num_workers=4, sync_interval=4, epochs=EPOCHS, seed=0),
    ).train(train, test)
    return results


def test_extension_local_sgd_vs_compression(benchmark, archive):
    results = run_once(benchmark, run_variants)
    rows = [
        [
            name,
            round(h.total_bytes_sent / 1024, 1),
            round(h.test_losses[-1], 4),
            round(h.avg_compression_rate, 2),
        ]
        for name, h in results.items()
    ]
    archive(
        "extension_local_sgd",
        format_table(
            ["variant", "KiB on wire", "final loss", "rate"],
            rows,
            title="Extension: Local SGD vs gradient compression (KDD10-like)",
        ),
    )

    bytes_sent = {name: h.total_bytes_sent for name, h in results.items()}
    losses = {name: h.test_losses[-1] for name, h in results.items()}
    # Local SGD saves bytes vs per-batch uncompressed — but only the
    # within-window dedup, nowhere near 1/H on sparse data...
    assert bytes_sent["local-sgd H=4"] < bytes_sent["per-batch Adam"]
    assert bytes_sent["local-sgd H=4"] > bytes_sent["per-batch Adam"] / 3
    # ...while SketchML's per-batch compression cuts far deeper.
    assert bytes_sent["per-batch SketchML"] < bytes_sent["local-sgd H=4"] / 2
    # Composition moves the fewest bytes of all variants.
    assert bytes_sent["local-sgd H=4 + SketchML"] == min(bytes_sent.values())
    # Everyone still converges (finite, below the ln 2 prior).
    for name, loss in losses.items():
        assert np.isfinite(loss) and loss < np.log(2.0), name
    # Per-batch SketchML's loss trajectory is at least as tight as
    # Local SGD's at the matched epoch budget.
    assert losses["per-batch SketchML"] <= losses["local-sgd H=4"] * 1.03
