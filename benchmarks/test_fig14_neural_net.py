"""Figure 14 (Appendix B.3): SketchML on a neural network.

Paper: an MLP (20×20 input, two hidden layers, 10-way softmax) on
MNIST, batch 60.  Short-term, the compressed methods out-run Adam;
long-term SketchML achieves the best loss while ZipML's uniform
quantization loses the shrinking gradients.  MLP gradients are *dense*,
so key compression contributes little — the regime the paper's
"Limitation" paragraph describes.

Scaled substitution: synthetic 20×20 images (see DESIGN.md §2) and a
narrower hidden layer so the bench stays laptop-sized.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_series, format_table, method_factory
from repro.data import mnist_like
from repro.distributed import DistributedTrainer, NetworkModel, TrainerConfig
from repro.models import DenseDataset, MLPClassifier
from repro.optim import Adam

METHODS = ["SketchML", "Adam", "ZipML"]
EPOCHS = 6


def run_fig14():
    images, labels = mnist_like(num_train=1_500, seed=0)
    train = DenseDataset(images[:1_200], labels[:1_200])
    test = DenseDataset(images[1_200:], labels[1_200:])
    histories = {}
    for method in METHODS:
        model = MLPClassifier(
            input_dim=400, hidden_dims=(64, 64), num_classes=10, seed=1
        )
        trainer = DistributedTrainer(
            model=model,
            optimizer=Adam(learning_rate=0.005),
            compressor_factory=method_factory(method),
            network=NetworkModel(bandwidth_bytes_per_sec=1e6, latency_sec=2e-3),
            config=TrainerConfig(
                num_workers=5,
                batch_fraction=0.25,
                epochs=EPOCHS,
                seed=0,
                method_label=method,
                compute_seconds_per_nnz=1e-6,
            ),
        )
        histories[method] = trainer.train(train, test)
    return histories


def loss_at_time(history, budget):
    best = None
    for t, loss in history.loss_curve():
        if t <= budget:
            best = loss
    return best


def test_fig14_neural_net(benchmark, archive):
    histories = run_once(benchmark, run_fig14)

    sections = [
        format_series(
            f"fig14 MLP {method}",
            histories[method].loss_curve(),
            x_label="seconds",
            y_label="test loss",
        )
        for method in METHODS
    ]
    summary = format_table(
        ["method", "sec/epoch", "final loss", "compression rate"],
        [
            [
                m,
                round(histories[m].avg_epoch_seconds, 2),
                round(histories[m].loss_curve()[-1][1], 4),
                round(histories[m].avg_compression_rate, 2),
            ]
            for m in METHODS
        ],
        title="Figure 14: MLP on MNIST-like images, 5 workers",
    )
    archive("fig14_neural_net", summary + "\n\n" + "\n\n".join(sections))

    sketch = histories["SketchML"]
    adam = histories["Adam"]
    zipml = histories["ZipML"]
    # Compressed methods run cheaper epochs than Adam.
    assert sketch.avg_epoch_seconds < adam.avg_epoch_seconds
    assert zipml.avg_epoch_seconds < adam.avg_epoch_seconds
    # At SketchML's finishing time it has the lowest loss seen so far.
    budget = sketch.cumulative_seconds[-1]
    sketch_final = sketch.loss_curve()[-1][1]
    for other in (adam, zipml):
        other_loss = loss_at_time(other, budget)
        if other_loss is not None:
            assert sketch_final <= other_loss + 0.02
    # Training actually works: loss drops well below the 10-class prior.
    assert sketch_final < 0.5 * np.log(10)
    # Dense gradients: key compression is marginal, so the overall rate
    # stays below the sparse-workload rates (the paper's Limitation).
    assert histories["SketchML"].avg_compression_rate < 15
