"""Extension benches: heavy-hitter hybrid SketchML and QSGD comparison.

* The hybrid compressor (an extension beyond the paper) sends the top
  1–5% magnitudes exactly; measured: worst-case decode error collapses
  for a few percent more bytes.
* Corollary A.3 measured: quantile-bucket quantization's variance
  against QSGD's (uniform stochastic) as the gradient dimension grows —
  the quantile bound wins for large d on near-zero-heavy data.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table
from repro.compression import HeavyHitterSketchMLCompressor, QSGDCompressor
from repro.core import SketchMLCompressor, SketchMLConfig


def gradient(nnz, dimension, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-6
    return keys, values


def test_extension_heavy_hitter_hybrid(benchmark, archive):
    def run():
        keys, values = gradient(20_000, 500_000, seed=1)
        rows = []
        for fraction in (0.0, 0.01, 0.02, 0.05):
            if fraction == 0.0:
                comp = SketchMLCompressor(SketchMLConfig.full())
                label = "plain SketchML"
            else:
                comp = HeavyHitterSketchMLCompressor(heavy_fraction=fraction)
                label = f"hybrid {fraction:.0%}"
            _, decoded, msg = comp.roundtrip(keys, values, 500_000)
            rows.append(
                [
                    label,
                    msg.num_bytes,
                    round(float(np.abs(decoded - values).max()), 6),
                    round(float(np.mean(np.abs(decoded - values))), 7),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    archive(
        "extension_hybrid",
        format_table(
            ["variant", "bytes", "max error", "mean error"],
            rows,
            title="Extension: heavy-hitter hybrid vs plain SketchML",
        ),
    )
    plain_bytes, plain_max = rows[0][1], rows[0][2]
    hybrid2_bytes, hybrid2_max = rows[2][1], rows[2][2]
    assert hybrid2_max < plain_max / 2, "2% heavy set should halve max error"
    assert hybrid2_bytes < plain_bytes * 1.35, "size overhead stays modest"


def test_corollary_a3_quantile_vs_qsgd_variance(benchmark, archive):
    def run():
        rows = []
        for d in (1_000, 10_000, 100_000):
            rng = np.random.default_rng(d)
            keys = np.arange(d)
            values = rng.laplace(scale=0.01, size=d)
            values[values == 0.0] = 1e-6

            quant = SketchMLCompressor(
                SketchMLConfig.keys_and_quantization(num_buckets=256)
            )
            _, q_decoded, _ = quant.roundtrip(keys, values, d)
            quantile_var = float(np.sum((q_decoded - values) ** 2))

            qsgd = QSGDCompressor(num_levels=255, seed=0)
            qsgd_vars = []
            for _ in range(5):
                _, s_decoded, _ = qsgd.roundtrip(keys, values, d)
                qsgd_vars.append(float(np.sum((s_decoded - values) ** 2)))
            rows.append([d, quantile_var, float(np.mean(qsgd_vars))])
        return rows

    rows = run_once(benchmark, run)
    archive(
        "extension_qsgd_variance",
        format_table(
            ["d", "quantile-bucket variance", "QSGD variance (mean of 5)"],
            [[d, round(a, 6), round(b, 6)] for d, a, b in rows],
            title="Corollary A.3: quantization variance, equal 1-byte budgets",
        ),
    )
    # Corollary A.3 is asymptotic: "quantile-bucket quantification
    # generates a better bound when d goes to infinite".  Measured, the
    # crossover is real — at small d QSGD's uniform levels win, but the
    # quantile quantizer overtakes by d=10k and the gap widens with d.
    ratios = {d: qsgd / quant for d, quant, qsgd in rows}
    assert ratios[100_000] > ratios[10_000] > ratios[1_000]
    assert ratios[100_000] > 5.0
    assert ratios[10_000] > 1.0  # quantile already ahead at 10k dims
