"""Figure 9: end-to-end run time per epoch, SketchML vs Adam vs ZipML.

Paper: KDD12 with 10 executors (a), CTR with 50 executors (b), on the
congested production cluster.  Ordering everywhere: SketchML < ZipML <
Adam; and the speedup on CTR is smaller than on KDD12 because CTR's
denser rows shift cost from communication to computation (§4.3.2).
"""

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment

MODELS = ["lr", "svm", "linear"]
METHODS = ["SketchML", "Adam", "ZipML"]


def spec_for(profile, model, method, workers):
    return ExperimentSpec(
        profile=profile,
        model=model,
        method=method,
        num_workers=workers,
        epochs=6,
        cluster="cluster2",
    )


def run_fig9():
    results = {}
    for profile, workers in (("kdd12", 10), ("ctr", 10)):
        for model in MODELS:
            for method in METHODS:
                key = (profile, model, method)
                results[key] = run_experiment(spec_for(profile, model, method, workers))
    return results


def test_fig9_end_to_end_runtime(benchmark, archive):
    results = run_once(benchmark, run_fig9)

    tables = []
    for profile, label in (("kdd12", "KDD12-like"), ("ctr", "CTR-like")):
        rows = [
            [model.upper()]
            + [round(results[(profile, model, m)].avg_epoch_seconds, 2) for m in METHODS]
            for model in MODELS
        ]
        tables.append(
            format_table(
                ["model"] + METHODS,
                rows,
                title=f"Figure 9 ({label}): run time per epoch (seconds)",
            )
        )
    archive("fig9_end_to_end_runtime", "\n\n".join(tables))

    for profile in ("kdd12", "ctr"):
        for model in MODELS:
            sketch = results[(profile, model, "SketchML")].avg_epoch_seconds
            adam = results[(profile, model, "Adam")].avg_epoch_seconds
            zipml = results[(profile, model, "ZipML")].avg_epoch_seconds
            assert sketch < zipml < adam, (
                f"{profile}/{model}: expected SketchML < ZipML < Adam, "
                f"got {sketch:.2f} / {zipml:.2f} / {adam:.2f}"
            )

    # §4.3.2: the KDD12 speedup exceeds the CTR speedup (denser rows
    # make CTR more computation-bound).
    def speedup(profile, model):
        return (
            results[(profile, model, "Adam")].avg_epoch_seconds
            / results[(profile, model, "SketchML")].avg_epoch_seconds
        )

    assert speedup("kdd12", "lr") > speedup("ctr", "lr")
