"""Table 2: converged loss and time to convergence (KDD12, §4.4 rule).

"An algorithm is considered as converged if the variation of loss is
less than 1% within five epochs."  The paper's table shows all three
methods converging to nearly identical losses, with SketchML converging
~2-5× sooner in wall-clock terms.
"""

from conftest import run_once
from repro.bench import ExperimentSpec, format_table, run_experiment
from repro.distributed import time_to_converge

MODELS = ["lr", "svm", "linear"]
METHODS = ["SketchML", "Adam", "ZipML"]


def run_table2():
    results = {}
    for model in MODELS:
        for method in METHODS:
            spec = ExperimentSpec(
                profile="kdd12",
                model=model,
                method=method,
                num_workers=10,
                epochs=10,
                cluster="cluster2",
            )
            results[(model, method)] = run_experiment(spec)
    return results


def test_table2_model_accuracy(benchmark, archive):
    results = run_once(benchmark, run_table2)

    converged = {
        key: time_to_converge(history, tolerance=0.01, window=5)
        for key, history in results.items()
    }
    rows = []
    for model in MODELS:
        row = [model.upper()]
        for method in METHODS:
            loss, seconds = converged[(model, method)]
            row.append(f"{loss:.4f} / {seconds:.0f}s")
        rows.append(row)
    archive(
        "table2_model_accuracy",
        format_table(
            ["model"] + METHODS,
            rows,
            title="Table 2: minimal loss / converged time (KDD12-like)",
        ),
    )

    for model in MODELS:
        sketch_loss, sketch_time = converged[(model, "SketchML")]
        adam_loss, adam_time = converged[(model, "Adam")]
        zipml_loss, zipml_time = converged[(model, "ZipML")]
        # All methods reach nearly the same model quality (paper: losses
        # agree to ~3 decimal places; we allow 5%).
        assert abs(sketch_loss - adam_loss) / adam_loss < 0.05
        assert abs(zipml_loss - adam_loss) / adam_loss < 0.05
        # SketchML converges fastest in wall-clock time.
        assert sketch_time < adam_time
        assert sketch_time < zipml_time
