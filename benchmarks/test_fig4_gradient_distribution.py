"""Figure 4: gradient values follow a nonuniform, near-zero distribution.

The paper trains KDD CUP 2010 with SGD, takes the first gradient, and
histograms its values: the range is wide but most mass sits near zero.
We regenerate the histogram on the KDD10-like dataset and assert the
nonuniformity that motivates quantile-bucket quantification.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table, load_split
from repro.models import LogisticRegression


def first_gradient():
    train, _ = load_split("kdd10", scale=0.5)
    model = LogisticRegression(train.num_features, reg_lambda=0.0)
    batch = np.arange(int(train.num_rows * 0.1))
    keys, values, _ = model.batch_gradient(train, batch, model.init_theta())
    return values


def test_fig4_gradient_value_histogram(benchmark, archive):
    values = run_once(benchmark, first_gradient)

    edges = np.histogram_bin_edges(values, bins=20)
    counts, _ = np.histogram(values, bins=edges)
    rows = [
        [f"[{lo:+.4f}, {hi:+.4f})", int(c)]
        for lo, hi, c in zip(edges[:-1], edges[1:], counts)
    ]
    archive(
        "fig4_gradient_distribution",
        format_table(
            ["value interval", "count"],
            rows,
            title="Figure 4: distribution of first-gradient values (KDD10-like, LR)",
        ),
    )

    # Shape assertions: wide range, but mass concentrated near zero.
    magnitudes = np.abs(values)
    assert values.min() < 0 < values.max()
    near_zero_fraction = (magnitudes < 0.1 * magnitudes.max()).mean()
    assert near_zero_fraction > 0.7, "gradient values must pile up near zero"
    # The dominant histogram bin holds far more than a uniform share.
    assert counts.max() > 5 * counts.mean()
