"""Extension bench: SSP parameter-server mode with compressed gradients.

Beyond the paper's bulk-synchronous Spark substrate: the event-driven
SSP trainer (parameter-server lineage, refs [19]/[22]) with straggler
workers.  Two claims measured:

* bounded staleness shortens simulated wall-clock vs lockstep when
  workers are heterogeneous;
* SketchML's compression composes with asynchrony — same byte savings,
  convergence preserved under stale updates.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table, load_split
from repro.compression import IdentityCompressor
from repro.core import SketchMLCompressor
from repro.distributed import SSPConfig, SSPTrainer, cluster1_like
from repro.models import LogisticRegression
from repro.optim import Adam


def run_ssp(train, test, staleness, factory, label):
    trainer = SSPTrainer(
        model=LogisticRegression(train.num_features, reg_lambda=0.01),
        optimizer=Adam(learning_rate=0.01),
        compressor_factory=factory,
        network=cluster1_like(),
        config=SSPConfig(
            num_workers=8,
            staleness=staleness,
            epochs=3,
            seed=0,
            heterogeneity=2.0,
            compute_seconds_per_nnz=3e-4,
            method_label=label,
        ),
    )
    history = trainer.train(train, test)
    return trainer.simulated_seconds, history


def test_extension_ssp_staleness_and_compression(benchmark, archive):
    def run():
        train, test = load_split("kdd10", scale=0.4)
        results = {}
        for staleness in (0, 2, 8):
            results[("Adam", staleness)] = run_ssp(
                train, test, staleness, IdentityCompressor, "Adam"
            )
        results[("SketchML", 8)] = run_ssp(
            train, test, 8, SketchMLCompressor, "SketchML"
        )
        return results

    results = run_once(benchmark, run)
    rows = []
    for (method, staleness), (seconds, history) in sorted(results.items()):
        rows.append(
            [
                method,
                staleness,
                round(seconds, 2),
                round(history.test_losses[-1], 4),
                round(history.avg_compression_rate, 2),
            ]
        )
    archive(
        "extension_ssp",
        format_table(
            ["method", "staleness", "simulated sec", "final loss", "rate"],
            rows,
            title="Extension: SSP parameter server with stragglers (8 workers)",
        ),
    )

    adam_times = {s: results[("Adam", s)][0] for s in (0, 2, 8)}
    # Relaxing the staleness bound never slows the cluster down and
    # helps at the largest bound.
    assert adam_times[2] <= adam_times[0] * 1.02
    assert adam_times[8] < adam_times[0]
    # Compression composes with asynchrony: convergent and compressed.
    sketch_seconds, sketch_history = results[("SketchML", 8)]
    assert sketch_history.test_losses[-1] < np.log(2.0)
    assert sketch_history.avg_compression_rate > 2.0
    # And it moves fewer bytes than Adam at the same staleness.
    assert (
        sketch_history.total_bytes_sent
        < results[("Adam", 8)][1].total_bytes_sent / 2
    )
