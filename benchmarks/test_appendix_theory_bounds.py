"""Appendix A: measured error against the proved bounds.

* A.1 — quantile-bucket quantization variance vs the Theorem A.2 bound;
* A.2 — MinMaxSketch exact-decode rate vs the Eq. (2) lower bound and
  the one-sided (never amplified) error guarantee.
"""

import numpy as np

from conftest import run_once
from repro.bench import format_table
from repro.core import MinMaxSketch, QuantileBucketQuantizer


def measure_bounds():
    rng = np.random.default_rng(0)
    rows_a1 = []
    for q in (32, 128, 512):
        values = rng.laplace(scale=0.01, size=40_000)
        values[values == 0.0] = 1e-6
        quant = QuantileBucketQuantizer(num_buckets=q, sketch="exact").fit(values)
        actual = float(np.sum((quant.quantize(values) - values) ** 2))
        bound = quant.variance_bound(values)
        rows_a1.append([q, actual, bound, actual / bound])

    rows_a2 = []
    v = 2_000
    keys = np.sort(rng.choice(10**6, size=v, replace=False))
    indexes = rng.permutation(v)
    for w in (512, 2_048, 8_192):
        sk = MinMaxSketch(num_rows=2, num_bins=w, index_range=v, seed=1)
        sk.insert_many(keys, indexes)
        decoded = sk.query_many(keys)
        exact = float((decoded == indexes).mean())
        overestimates = int((decoded > indexes).sum())
        ls = np.arange(1, v + 1)
        bound = float(
            (1.0 - (1.0 - (1.0 - 1.0 / w) ** (v - ls)) ** 2).mean()
        )
        rows_a2.append([w, exact, bound, overestimates])
    return rows_a1, rows_a2


def test_appendix_theory_bounds(benchmark, archive):
    rows_a1, rows_a2 = run_once(benchmark, measure_bounds)

    table1 = format_table(
        ["q", "measured variance", "Theorem A.2 bound", "ratio"],
        [[r[0], round(r[1], 6), round(r[2], 6), round(r[3], 3)] for r in rows_a1],
        title="A.1: quantization variance vs bound (Laplace gradients)",
    )
    table2 = format_table(
        ["bins w", "exact-decode rate", "Eq.(2) lower bound", "overestimates"],
        [[r[0], round(r[1], 4), round(r[2], 4), r[3]] for r in rows_a2],
        title="A.2: MinMaxSketch correctness rate vs bound (s=2)",
    )
    archive("appendix_theory_bounds", table1 + "\n\n" + table2)

    for _, actual, bound, ratio in rows_a1:
        assert actual <= bound
        assert ratio < 1.0
    for _, exact, bound, overestimates in rows_a2:
        assert exact >= bound - 0.05  # Monte-Carlo slack
        assert overestimates == 0  # one-sided error, always
