"""Tests for the sparse optimizers and LR schedules."""

import numpy as np
import pytest

from repro.optim import (
    Adam,
    AdaGrad,
    ConstantLR,
    ExponentialDecayLR,
    InverseDecayLR,
    Momentum,
    SGD,
    StepDecayLR,
    make_optimizer,
    make_schedule,
)


def quadratic_gradient(theta, target):
    """Gradient of 0.5 ||theta - target||^2 over all keys."""
    keys = np.arange(theta.size)
    return keys, theta - target


class TestFactory:
    def test_make_optimizer(self):
        assert isinstance(make_optimizer("sgd"), SGD)
        assert isinstance(make_optimizer("adam", learning_rate=0.5), Adam)
        assert isinstance(make_optimizer("momentum"), Momentum)
        assert isinstance(make_optimizer("adagrad"), AdaGrad)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            make_optimizer("lbfgs")

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            Momentum(beta=1.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.5)


@pytest.mark.parametrize(
    "optimizer",
    [
        SGD(learning_rate=0.1),
        Momentum(learning_rate=0.05, beta=0.9),
        Momentum(learning_rate=0.05, beta=0.9, nesterov=True),
        AdaGrad(learning_rate=0.5),
        Adam(learning_rate=0.2),
    ],
    ids=lambda o: repr(o),
)
class TestConvergenceOnQuadratic:
    def test_converges_to_target(self, optimizer):
        optimizer.reset()
        rng = np.random.default_rng(0)
        target = rng.normal(size=20)
        theta = np.zeros(20)
        optimizer.prepare(20)
        for _ in range(500):
            keys, values = quadratic_gradient(theta, target)
            optimizer.step(theta, keys, values)
        np.testing.assert_allclose(theta, target, atol=0.05)


class TestSparseUpdates:
    def test_only_active_keys_move(self):
        for optimizer in (SGD(0.1), Momentum(0.1), AdaGrad(0.1), Adam(0.1)):
            theta = np.zeros(10)
            optimizer.prepare(10)
            optimizer.step(theta, np.asarray([2, 7]), np.asarray([1.0, -1.0]))
            moved = np.flatnonzero(theta)
            assert moved.tolist() == [2, 7]

    def test_adam_direction_opposes_gradient(self):
        adam = Adam(learning_rate=0.1)
        theta = np.zeros(4)
        adam.prepare(4)
        adam.step(theta, np.asarray([0, 1]), np.asarray([1.0, -1.0]))
        assert theta[0] < 0
        assert theta[1] > 0

    def test_adam_adapts_to_gradient_scale(self):
        """Adam's per-dimension normalisation: dimensions with tiny
        gradients take steps comparable to large-gradient dimensions —
        the property §3.3 uses to compensate decayed gradients."""
        adam = Adam(learning_rate=0.1)
        theta = np.zeros(2)
        adam.prepare(2)
        for _ in range(20):
            adam.step(theta, np.asarray([0, 1]), np.asarray([1.0, 1e-4]))
        # Both dimensions should have moved a similar (O(lr)) amount.
        assert abs(theta[1]) > 0.25 * abs(theta[0])

    def test_sgd_step_is_linear(self):
        sgd = SGD(learning_rate=0.5)
        theta = np.zeros(3)
        sgd.step(theta, np.asarray([1]), np.asarray([2.0]))
        assert theta[1] == pytest.approx(-1.0)

    def test_reset_clears_state(self):
        adam = Adam(learning_rate=0.1)
        theta = np.zeros(3)
        adam.prepare(3)
        adam.step(theta, np.asarray([0]), np.asarray([1.0]))
        adam.reset()
        assert adam._m[0] == 0.0
        assert adam._v[0] == 0.0
        assert adam._steps[0] == 0

    def test_momentum_accumulates(self):
        mom = Momentum(learning_rate=0.1, beta=0.9)
        theta = np.zeros(1)
        mom.prepare(1)
        mom.step(theta, np.asarray([0]), np.asarray([1.0]))
        first_step = -theta[0]
        theta[:] = 0
        mom.reset()
        for _ in range(10):
            mom.step(theta, np.asarray([0]), np.asarray([1.0]))
        # With momentum the 10-step displacement exceeds 10 plain steps.
        assert -theta[0] > 10 * first_step

    def test_lazy_bias_correction_counts_per_dimension(self):
        adam = Adam(learning_rate=0.1)
        theta = np.zeros(2)
        adam.prepare(2)
        adam.step(theta, np.asarray([0]), np.asarray([1.0]))
        adam.step(theta, np.asarray([0, 1]), np.asarray([1.0, 1.0]))
        assert adam._steps[0] == 2
        assert adam._steps[1] == 1


class TestSchedules:
    def test_constant(self):
        s = ConstantLR()
        assert s(0) == s(100) == 1.0

    def test_inverse_decay(self):
        s = InverseDecayLR(rate=0.1)
        assert s(0) == 1.0
        assert s(10) == pytest.approx(0.5)

    def test_exponential(self):
        s = ExponentialDecayLR(gamma=0.5)
        assert s(3) == pytest.approx(0.125)

    def test_step_decay(self):
        s = StepDecayLR(step_size=10, factor=0.5)
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            ConstantLR()(-1)

    def test_factory_and_validation(self):
        assert isinstance(make_schedule("constant"), ConstantLR)
        assert isinstance(make_schedule("inverse", rate=0.5), InverseDecayLR)
        with pytest.raises(ValueError, match="unknown schedule"):
            make_schedule("cosine")
        with pytest.raises(ValueError):
            ExponentialDecayLR(gamma=0.0)
        with pytest.raises(ValueError):
            StepDecayLR(step_size=0)
        with pytest.raises(ValueError):
            InverseDecayLR(rate=-1)
