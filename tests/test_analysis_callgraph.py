"""Unit tests for the project call-graph builder.

Synthetic module trees are fed through
``build_project_from_sources({relpath: source})`` — the same entry the
deep rules use — so every resolution feature (aliased imports,
``from x import y as z``, relative imports, re-exports, method lookup
through the MRO, subclass override dispatch, recursion, cycles) is
pinned by a small readable fixture.  A hypothesis test checks the
semantic property the reachability rules rely on: adding edges never
shrinks a reachable set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Project,
    build_project_from_sources,
    module_name_for_relpath,
)


def edges_of(project):
    return {
        (src, dst)
        for src, targets in project.edges.items()
        for dst in targets
    }


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_for_relpath("runtime/aio.py") == "repro.runtime.aio"

    def test_top_level(self):
        assert module_name_for_relpath("cli.py") == "repro.cli"

    def test_package_init_collapses(self):
        assert module_name_for_relpath("core/__init__.py") == "repro.core"

    def test_root_init(self):
        assert module_name_for_relpath("__init__.py") == "repro"


class TestImportResolution:
    def test_plain_function_call(self):
        project = build_project_from_sources({
            "a.py": "def f():\n    g()\n\ndef g():\n    pass\n",
        })
        assert ("repro.a.f", "repro.a.g") in edges_of(project)

    def test_from_import(self):
        project = build_project_from_sources({
            "a.py": "def helper():\n    pass\n",
            "b.py": "from .a import helper\n\ndef f():\n    helper()\n",
        })
        assert ("repro.b.f", "repro.a.helper") in edges_of(project)

    def test_from_import_as_alias(self):
        project = build_project_from_sources({
            "a.py": "def helper():\n    pass\n",
            "b.py": "from .a import helper as h\n\ndef f():\n    h()\n",
        })
        assert ("repro.b.f", "repro.a.helper") in edges_of(project)

    def test_module_import_alias(self):
        project = build_project_from_sources({
            "pkg/a.py": "def helper():\n    pass\n",
            "b.py": (
                "import repro.pkg.a as aa\n\ndef f():\n    aa.helper()\n"
            ),
        })
        assert ("repro.b.f", "repro.pkg.a.helper") in edges_of(project)

    def test_relative_parent_import(self):
        project = build_project_from_sources({
            "util.py": "def helper():\n    pass\n",
            "pkg/b.py": (
                "from ..util import helper\n\ndef f():\n    helper()\n"
            ),
        })
        assert ("repro.pkg.b.f", "repro.util.helper") in edges_of(project)

    def test_reexport_through_package_init(self):
        project = build_project_from_sources({
            "pkg/__init__.py": "from .impl import helper\n",
            "pkg/impl.py": "def helper():\n    pass\n",
            "b.py": (
                "from . import pkg\n\ndef f():\n    pkg.helper()\n"
            ),
        })
        assert ("repro.b.f", "repro.pkg.impl.helper") in edges_of(project)

    def test_external_call_recorded_not_edged(self):
        project = build_project_from_sources({
            "a.py": "import time\n\ndef f():\n    time.sleep(1)\n",
        })
        assert edges_of(project) == set()
        fn = project.functions["repro.a.f"]
        externals = [s.external for s in fn.call_sites if s.external]
        assert "time.sleep" in externals


class TestMethodResolution:
    def test_self_call(self):
        project = build_project_from_sources({
            "a.py": (
                "class C:\n"
                "    def f(self):\n        self.g()\n"
                "    def g(self):\n        pass\n"
            ),
        })
        assert ("repro.a.C.f", "repro.a.C.g") in edges_of(project)

    def test_inherited_method_via_mro(self):
        project = build_project_from_sources({
            "a.py": (
                "class Base:\n"
                "    def g(self):\n        pass\n"
                "class C(Base):\n"
                "    def f(self):\n        self.g()\n"
            ),
        })
        assert ("repro.a.C.f", "repro.a.Base.g") in edges_of(project)

    def test_subclass_override_dispatch(self):
        # A call through a base-typed parameter must include every
        # project override, or reachability through ABCs is unsound.
        project = build_project_from_sources({
            "a.py": (
                "class Base:\n"
                "    def g(self):\n        pass\n"
                "class Sub(Base):\n"
                "    def g(self):\n        pass\n"
                "def f(x: Base):\n    x.g()\n"
            ),
        })
        e = edges_of(project)
        assert ("repro.a.f", "repro.a.Base.g") in e
        assert ("repro.a.f", "repro.a.Sub.g") in e

    def test_attr_type_from_constructor_assignment(self):
        project = build_project_from_sources({
            "a.py": (
                "class Helper:\n"
                "    def g(self):\n        pass\n"
                "class C:\n"
                "    def __init__(self):\n        self.h = Helper()\n"
                "    def f(self):\n        self.h.g()\n"
            ),
        })
        assert ("repro.a.C.f", "repro.a.Helper.g") in edges_of(project)

    def test_constructor_edge_to_init(self):
        project = build_project_from_sources({
            "a.py": (
                "class C:\n"
                "    def __init__(self):\n        pass\n"
                "def f():\n    C()\n"
            ),
        })
        assert ("repro.a.f", "repro.a.C.__init__") in edges_of(project)

    def test_super_call(self):
        project = build_project_from_sources({
            "a.py": (
                "class Base:\n"
                "    def f(self):\n        pass\n"
                "class C(Base):\n"
                "    def f(self):\n        super().f()\n"
            ),
        })
        assert ("repro.a.C.f", "repro.a.Base.f") in edges_of(project)


class TestBlindSpots:
    def test_unresolved_receiver_is_reported(self):
        project = build_project_from_sources({
            "a.py": (
                "def f(conn):\n    conn.execute()\n"
            ),
        })
        fn = project.functions["repro.a.f"]
        assert any(s.method == "execute" for s in fn.call_sites)
        assert any(
            b.caller == "repro.a.f" and b.line == 2
            for b in project.blind_spots
        )

    def test_callable_parameter_is_reported(self):
        project = build_project_from_sources({
            "a.py": "def f(callback):\n    callback()\n",
        })
        assert any(
            "function-valued parameter" in b.receiver
            for b in project.blind_spots
        )


class TestReachability:
    def test_recursion_terminates(self):
        project = build_project_from_sources({
            "a.py": "def f():\n    f()\n",
        })
        assert project.reachable(["repro.a.f"]) == {"repro.a.f"}

    def test_mutual_cycle(self):
        project = build_project_from_sources({
            "a.py": (
                "def f():\n    g()\n\ndef g():\n    f()\n\n"
                "def lonely():\n    pass\n"
            ),
        })
        reach = project.reachable(["repro.a.f"])
        assert reach == {"repro.a.f", "repro.a.g"}

    def test_class_cycle_in_bases_terminates(self):
        # Pathological but must not hang: A(B) and B(A).
        project = build_project_from_sources({
            "a.py": (
                "class A(B):\n    def f(self):\n        self.g()\n"
                "class B(A):\n    def g(self):\n        pass\n"
            ),
        })
        assert ("repro.a.A.f", "repro.a.B.g") in edges_of(project)

    def test_call_path_is_shortest(self):
        project = build_project_from_sources({
            "a.py": (
                "def root():\n    mid()\n    leaf()\n\n"
                "def mid():\n    leaf()\n\n"
                "def leaf():\n    pass\n"
            ),
        })
        path = project.call_path(["repro.a.root"], "repro.a.leaf")
        assert path == ["repro.a.root", "repro.a.leaf"]

    def test_module_body_owns_import_time_calls(self):
        project = build_project_from_sources({
            "a.py": (
                "def setup():\n    pass\n\nsetup()\n"
            ),
        })
        assert (
            "repro.a.<module>", "repro.a.setup"
        ) in edges_of(project)
        # calls inside def bodies do NOT belong to the module body
        project2 = build_project_from_sources({
            "a.py": "def f():\n    g()\n\ndef g():\n    pass\n",
        })
        body = project2.functions["repro.a.<module>"]
        assert body.call_sites == []


# ----------------------------------------------------------------------
# reachability is monotone under adding edges
# ----------------------------------------------------------------------
@given(
    n=st.integers(min_value=2, max_value=12),
    base_edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=11),
        ),
        max_size=30,
    ),
    extra_edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=11),
        ),
        min_size=1,
        max_size=10,
    ),
    root=st.integers(min_value=0, max_value=11),
)
@settings(max_examples=60, deadline=None)
def test_reachability_monotone_under_adding_edges(
    n, base_edges, extra_edges, root
):
    def make_project(edges):
        project = Project()
        # reachable() only needs functions + edges; build them directly
        # (the names are what build_project would produce for a module
        # of n functions).
        names = [f"repro.m.f{i}" for i in range(n)]
        for name in names:
            project.functions[name] = object()  # presence is all that counts
        for a, b in edges:
            if a < n and b < n:
                project.edges.setdefault(names[a], set()).add(names[b])
        return project, names

    small, names = make_project(base_edges)
    big, _ = make_project(base_edges + extra_edges)
    r = names[root % n]
    assert small.reachable([r]) <= big.reachable([r])
