"""Golden serialized messages: the wire format is pinned byte-for-byte.

``tests/golden/wire/`` holds committed ``serialize_message`` outputs
for a spread of configurations (sketch/quantization variants, hash
families, packed indexes, one-sided gradients).  Two invariants:

* **encode** — re-compressing the deterministically regenerated
  gradient and serializing it reproduces the committed bytes exactly
  (every dtype on the wire is explicitly little-endian, so this holds
  on any host);
* **decode** — deserializing the committed bytes and decompressing
  yields exactly the keys/values recorded at capture time.

A diff here means the wire format changed: bump the serialization
version and regenerate the fixtures deliberately, never silently.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro import kernels
from repro.core.compressor import SketchMLCompressor
from repro.core.config import SketchMLConfig
from repro.core.serialization import deserialize_message, serialize_message

WIRE_DIR = os.path.join(os.path.dirname(__file__), "golden", "wire")

with open(os.path.join(WIRE_DIR, "manifest.json")) as _f:
    _MANIFEST = json.load(_f)

CASES = _MANIFEST["cases"]


def regenerate_gradient(case):
    rng = np.random.default_rng(case["seed"])
    keys = np.sort(
        rng.choice(case["dimension"], size=case["nnz"], replace=False)
    )
    values = rng.laplace(scale=0.01, size=case["nnz"])
    values[values == 0.0] = 1e-4
    if case["sign_mode"] == "pos":
        values = np.abs(values)
    return keys, values


def fixture_bytes(case):
    with open(os.path.join(WIRE_DIR, case["name"] + ".bin"), "rb") as f:
        return f.read()


def test_manifest_format_and_coverage():
    assert _MANIFEST["format"] == "repro-golden-wire/1"
    names = [c["name"] for c in CASES]
    assert len(names) == len(set(names))
    assert len(names) >= 9


@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_fixture_file_matches_manifest_digest(case):
    data = fixture_bytes(case)
    assert len(data) == case["num_bytes"]
    assert hashlib.sha256(data).hexdigest() == case["sha256"]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_encode_is_byte_identical(case):
    keys, values = regenerate_gradient(case)
    compressor = SketchMLCompressor(
        SketchMLConfig.full(seed=case["seed"], **case["overrides"])
    )
    message = compressor.compress(keys, values, case["dimension"])
    assert serialize_message(message) == fixture_bytes(case)


@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_decode_is_value_identical(case):
    message = deserialize_message(fixture_bytes(case))
    compressor = SketchMLCompressor(
        SketchMLConfig.full(seed=case["seed"], **case["overrides"])
    )
    decoded_keys, decoded_values = compressor.decompress(message)
    keys_digest = hashlib.sha256(
        np.ascontiguousarray(decoded_keys, dtype="<i8").tobytes()  # repro: noqa[wire-format] — digesting decoded arrays for golden comparison, not emitting wire bytes
    ).hexdigest()
    values_digest = hashlib.sha256(
        np.ascontiguousarray(decoded_values, dtype="<f8").tobytes()  # repro: noqa[wire-format] — digesting decoded arrays for golden comparison, not emitting wire bytes
    ).hexdigest()
    assert keys_digest == case["decoded_keys_sha256"]
    assert values_digest == case["decoded_values_sha256"]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_serialize_roundtrip_of_fixture(case):
    # deserialize → serialize is the identity on committed bytes.
    data = fixture_bytes(case)
    assert serialize_message(deserialize_message(data)) == data


@pytest.mark.parametrize("mode", ["scalar", "vectorised"])
@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_goldens_pinned_under_both_kernel_paths(case, mode):
    """The committed bytes pin the format for *both* codec paths.

    Decode each golden and re-encode the regenerated gradient with the
    kernel switch forced to one side; scalar and vectorised must each
    reproduce the committed bytes and decoded-value digests exactly, so
    neither path can drift away from the wire format on its own.
    """
    forced = (
        kernels.scalar_kernels()
        if mode == "scalar"
        else kernels.vectorised_kernels()
    )
    config = SketchMLConfig.full(seed=case["seed"], **case["overrides"])
    with forced:
        keys, values = regenerate_gradient(case)
        message = SketchMLCompressor(config).compress(
            keys, values, case["dimension"]
        )
        assert serialize_message(message) == fixture_bytes(case)
        decoded_keys, decoded_values = SketchMLCompressor(config).decompress(
            deserialize_message(fixture_bytes(case))
        )
    keys_digest = hashlib.sha256(
        np.ascontiguousarray(decoded_keys, dtype="<i8").tobytes()  # repro: noqa[wire-format] — digesting decoded arrays for golden comparison, not emitting wire bytes
    ).hexdigest()
    values_digest = hashlib.sha256(
        np.ascontiguousarray(decoded_values, dtype="<f8").tobytes()  # repro: noqa[wire-format] — digesting decoded arrays for golden comparison, not emitting wire bytes
    ).hexdigest()
    assert keys_digest == case["decoded_keys_sha256"]
    assert values_digest == case["decoded_values_sha256"]
