"""Golden serialized messages: the wire format is pinned byte-for-byte.

``tests/golden/wire/`` holds committed ``serialize_message`` outputs
for a spread of configurations (sketch/quantization variants, hash
families, packed indexes, one-sided gradients), at *both* payload
versions: ``<name>.bin`` is the frozen v1 encoding, ``<name>.v2.bin``
the v2 encoding with entropy coding requested.  Invariants:

* **encode** — re-compressing the deterministically regenerated
  gradient and serializing it at each payload version reproduces the
  committed bytes exactly (every dtype on the wire is explicitly
  little-endian, so this holds on any host);
* **decode** — deserializing the committed bytes of either version
  and decompressing yields exactly the keys/values recorded at
  capture time;
* **cross-version** — the v2 bytes decode to the *same message* as
  the v1 bytes: re-serializing either decode at either version is the
  identity on the committed fixtures.

A diff here means the wire format changed: bump the payload version
and regenerate the fixtures deliberately with ``repro golden
--write``, never silently.  The fixture logic itself lives in
:mod:`repro.golden` (exercised by ``repro golden --check`` in CI).
"""

import hashlib
import json
import os
import shutil

import numpy as np
import pytest

from repro import kernels
from repro.core.compressor import SketchMLCompressor
from repro.core.config import SketchMLConfig
from repro.core.serialization import deserialize_message, serialize_message
from repro.golden import (
    CASE_SPECS,
    GOLDEN_FORMAT,
    case_payloads,
    check_goldens,
    regenerate_gradient,
    write_goldens,
)

WIRE_DIR = os.path.join(os.path.dirname(__file__), "golden", "wire")

with open(os.path.join(WIRE_DIR, "manifest.json")) as _f:
    _MANIFEST = json.load(_f)

CASES = _MANIFEST["cases"]
VERSIONS = (1, 2)


def fixture_bytes(case, version=1):
    suffix = ".bin" if version == 1 else ".v2.bin"
    with open(os.path.join(WIRE_DIR, case["name"] + suffix), "rb") as f:
        return f.read()


def serialize_at(message, version):
    if version == 1:
        return serialize_message(message)
    return serialize_message(message, version=2, entropy=True)


def test_manifest_format_and_coverage():
    assert _MANIFEST["format"] == GOLDEN_FORMAT
    names = [c["name"] for c in CASES]
    assert len(names) == len(set(names))
    assert len(names) >= 9
    # The committed matrix covers exactly the canonical case specs.
    assert sorted(names) == sorted(s["name"] for s in CASE_SPECS)


@pytest.mark.parametrize("version", VERSIONS)
@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_fixture_file_matches_manifest_digest(case, version):
    data = fixture_bytes(case, version)
    entry = case if version == 1 else case["v2"]
    assert len(data) == entry["num_bytes"]
    assert hashlib.sha256(data).hexdigest() == entry["sha256"]


@pytest.mark.parametrize("version", VERSIONS)
@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_encode_is_byte_identical(case, version):
    keys, values = regenerate_gradient(case)
    compressor = SketchMLCompressor(
        SketchMLConfig.full(seed=case["seed"], **case["overrides"])
    )
    message = compressor.compress(keys, values, case["dimension"])
    assert serialize_at(message, version) == fixture_bytes(case, version)


@pytest.mark.parametrize("version", VERSIONS)
@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_decode_is_value_identical(case, version):
    message = deserialize_message(fixture_bytes(case, version))
    compressor = SketchMLCompressor(
        SketchMLConfig.full(seed=case["seed"], **case["overrides"])
    )
    decoded_keys, decoded_values = compressor.decompress(message)
    keys_digest = hashlib.sha256(
        np.ascontiguousarray(decoded_keys, dtype="<i8").tobytes()  # repro: noqa[wire-format] — digesting decoded arrays for golden comparison, not emitting wire bytes
    ).hexdigest()
    values_digest = hashlib.sha256(
        np.ascontiguousarray(decoded_values, dtype="<f8").tobytes()  # repro: noqa[wire-format] — digesting decoded arrays for golden comparison, not emitting wire bytes
    ).hexdigest()
    assert keys_digest == case["decoded_keys_sha256"]
    assert values_digest == case["decoded_values_sha256"]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_serialize_roundtrip_of_fixture(case):
    # deserialize → serialize is the identity on committed bytes, at
    # each version *and* across them: the v2 fixture carries the same
    # message as the frozen v1 bytes.
    v1 = fixture_bytes(case, 1)
    v2 = fixture_bytes(case, 2)
    assert serialize_at(deserialize_message(v1), 1) == v1
    assert serialize_at(deserialize_message(v2), 2) == v2
    assert serialize_at(deserialize_message(v2), 1) == v1
    assert serialize_at(deserialize_message(v1), 2) == v2


@pytest.mark.parametrize("mode", ["scalar", "vectorised"])
@pytest.mark.parametrize("case", CASES, ids=lambda c: c["name"])
def test_goldens_pinned_under_both_kernel_paths(case, mode):
    """The committed bytes pin the format for *both* codec paths.

    Re-encode the regenerated gradient with the kernel switch forced
    to one side; scalar and vectorised must each reproduce the
    committed bytes of both payload versions exactly, so neither path
    can drift away from the wire format on its own.
    """
    forced = (
        kernels.scalar_kernels()
        if mode == "scalar"
        else kernels.vectorised_kernels()
    )
    with forced:
        payloads = case_payloads(case)
    assert payloads[1] == fixture_bytes(case, 1)
    assert payloads[2] == fixture_bytes(case, 2)


class TestGoldenTool:
    def test_check_passes_on_committed_fixtures(self):
        assert check_goldens(WIRE_DIR) == []

    def test_check_fails_closed_on_tampered_fixture(self, tmp_path):
        scratch = tmp_path / "wire"
        shutil.copytree(WIRE_DIR, scratch)
        target = scratch / (CASES[0]["name"] + ".v2.bin")
        data = bytearray(target.read_bytes())
        data[-1] ^= 0xFF
        target.write_bytes(bytes(data))
        problems = check_goldens(str(scratch))
        assert problems
        assert any(CASES[0]["name"] in p for p in problems)

    def test_check_fails_closed_on_missing_file(self, tmp_path):
        scratch = tmp_path / "wire"
        shutil.copytree(WIRE_DIR, scratch)
        os.remove(scratch / (CASES[1]["name"] + ".bin"))
        problems = check_goldens(str(scratch))
        assert any("cannot read" in p for p in problems)

    def test_check_fails_closed_on_missing_manifest(self, tmp_path):
        problems = check_goldens(str(tmp_path))
        assert problems and "manifest" in problems[0]

    def test_write_reproduces_committed_fixtures(self, tmp_path):
        """Regeneration is deterministic: a fresh ``--write`` into an
        empty directory reproduces the committed tree byte-for-byte."""
        scratch = tmp_path / "wire"
        manifest = write_goldens(str(scratch))
        assert manifest["format"] == GOLDEN_FORMAT
        assert check_goldens(str(scratch)) == []
        for case in CASES:
            for version in VERSIONS:
                suffix = ".bin" if version == 1 else ".v2.bin"
                fresh = (scratch / (case["name"] + suffix)).read_bytes()
                assert fresh == fixture_bytes(case, version)
