"""Supervision edge cases over a scriptable fake transport.

The fake lets each test choose exactly what a worker does per attempt
(time out, crash, reply garbage, reply late), so the retry/backoff/
policy machinery is pinned without any real processes or sleeps.
"""

import numpy as np
import pytest

from repro.runtime.framing import (
    KIND_ACK,
    KIND_ERROR,
    KIND_HEARTBEAT,
    iter_chunk_frames,
    pack_ack,
    pack_frame,
    unpack_ack,
)
from repro.runtime.supervision import (
    POLICY_DROP,
    HeartbeatLostError,
    RetryExhaustedError,
    SupervisionConfig,
    Supervisor,
    WorkerCrashedError,
    backoff_delays,
)
from repro.runtime.transport import (
    Transport,
    TransportClosed,
    TransportTimeout,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeTransport(Transport):
    """Scripted transport: each recv pops the next scripted behaviour.

    Script entries per worker: ``("timeout",)``, ``("closed",)``,
    ``("frame", bytes)``.  Sends are recorded for assertion.
    """

    name = "fake"

    def __init__(self, num_workers, clock=None):
        super().__init__(num_workers)
        self.script = {w: [] for w in range(num_workers)}
        self.sent = {w: [] for w in range(num_workers)}
        self._clock = clock

    def send(self, worker_id, frame):
        self.sent[worker_id].append(bytes(frame))

    def recv(self, worker_id, timeout):
        queue = self.script[worker_id]
        if not queue:
            if self._clock is not None:
                # A blocking recv that never delivers consumes the wait.
                self._clock.advance(max(timeout, 0.0) + 1e-9)
            raise TransportTimeout("scripted empty queue")
        action = queue.pop(0)
        if action[0] == "timeout":
            if self._clock is not None:
                self._clock.advance(max(timeout, 0.0) + 1e-9)
            raise TransportTimeout("scripted timeout")
        if action[0] == "closed":
            raise TransportClosed("scripted hangup")
        return action[1]

    def alive(self, worker_id):
        return True

    def terminate(self, worker_id):
        pass

    def close(self):
        pass


def make_supervisor(transport, clock, **overrides):
    defaults = dict(
        message_timeout=1.0,
        max_retries=2,
        backoff_base=0.01,
        backoff_jitter=0.0,
        seed=5,
    )
    defaults.update(overrides)
    sleeps = []

    def sleeper(seconds):
        sleeps.append(seconds)
        clock.advance(seconds)

    sup = Supervisor(
        transport, SupervisionConfig(**defaults),
        sleeper=sleeper, clock=clock,
    )
    return sup, sleeps


def ack(worker_id, value):
    return pack_frame(KIND_ACK, worker_id, pack_ack(value))


class TestRetries:
    def test_reply_on_first_attempt(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        t.script[0] = [("frame", ack(0, 42))]
        sup, sleeps = make_supervisor(t, clock)
        out = sup.request(
            0, b"req", phase="step", expect_kind=KIND_ACK, decode=unpack_ack
        )
        assert out == 42
        assert len(t.sent[0]) == 1
        assert sleeps == []

    def test_timeouts_then_success_resends_same_frame(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        t.script[0] = [("timeout",), ("timeout",), ("frame", ack(0, 7))]
        sup, sleeps = make_supervisor(t, clock)
        out = sup.request(
            0, b"req", phase="step", expect_kind=KIND_ACK, decode=unpack_ack
        )
        assert out == 7
        assert t.sent[0] == [b"req"] * 3
        assert sup.stats["retries"] == 2
        assert sup.stats["timeouts"] == 2
        # Exponential backoff without jitter: base, base*factor.
        assert sleeps == pytest.approx([0.01, 0.02])

    def test_retry_exhaustion_raises_structured_error(self):
        clock = FakeClock()
        t = FakeTransport(3, clock)
        sup, _ = make_supervisor(t, clock)  # empty scripts: all timeout
        with pytest.raises(RetryExhaustedError) as excinfo:
            sup.request(
                2, b"req", phase="update",
                expect_kind=KIND_ACK, decode=unpack_ack,
            )
        err = excinfo.value
        assert err.worker_id == 2
        assert err.phase == "update"
        assert err.attempts == 3  # max_retries=2 → 3 total attempts
        assert "worker 2" in str(err) and "update" in str(err)
        assert isinstance(err.cause, TransportTimeout)

    def test_rejected_reply_triggers_retry(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        t.script[0] = [
            ("frame", pack_frame(KIND_ACK, 0, b"garbage!")),
            ("frame", ack(0, 9)),
        ]
        sup, _ = make_supervisor(t, clock)
        out = sup.request(
            0, b"req", phase="step", expect_kind=KIND_ACK, decode=unpack_ack
        )
        assert out == 9
        assert sup.stats["rejected_replies"] == 1
        assert sup.stats["retries"] == 1

    def test_heartbeats_absorbed_while_waiting(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        t.script[0] = [
            ("frame", pack_frame(KIND_HEARTBEAT, 0)),
            ("frame", pack_frame(KIND_HEARTBEAT, 0)),
            ("frame", ack(0, 1)),
        ]
        sup, _ = make_supervisor(t, clock)
        out = sup.request(
            0, b"req", phase="step", expect_kind=KIND_ACK, decode=unpack_ack
        )
        assert out == 1
        assert sup.stats["heartbeats"] == 2
        assert sup.stats["retries"] == 0

    def test_error_frame_is_a_crash_not_a_retry(self):
        import pickle

        clock = FakeClock()
        t = FakeTransport(1, clock)
        detail = pickle.dumps({"error": "boom"})
        t.script[0] = [("frame", pack_frame(KIND_ERROR, 0, detail))]
        sup, _ = make_supervisor(t, clock)
        with pytest.raises(WorkerCrashedError, match="boom"):
            sup.request(
                0, b"req", phase="step",
                expect_kind=KIND_ACK, decode=unpack_ack,
            )

    def test_already_sent_skips_first_send(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        t.script[0] = [("frame", ack(0, 3))]
        sup, _ = make_supervisor(t, clock)
        sup.request(
            0, b"req", phase="step", expect_kind=KIND_ACK,
            decode=unpack_ack, already_sent=True,
        )
        assert t.sent[0] == []


class TestChunkedReplies:
    """Streamed replies under supervision: stale tails must drain
    within one attempt; genuine corruption must still burn one."""

    @staticmethod
    def _decode(payload):
        return unpack_ack(b"".join(payload))

    def test_stale_chunks_drain_within_one_attempt(self):
        # Leftovers of a previous attempt's timed-out stream (chunks
        # seq 2, 3 and the END) precede the retried full stream; each
        # leftover must count as a stale frame, not a failed attempt.
        clock = FakeClock()
        t = FakeTransport(1, clock)
        stale = list(
            iter_chunk_frames(KIND_ACK, 0, [pack_ack(9)], chunk_bytes=1)
        )
        fresh = list(
            iter_chunk_frames(KIND_ACK, 0, [pack_ack(7)], chunk_bytes=2)
        )
        t.script[0] = [("frame", f) for f in stale[2:] + fresh]
        sup, _ = make_supervisor(t, clock)
        out = sup.request(
            0, b"req", phase="step", expect_kind=KIND_ACK,
            decode=self._decode,
        )
        assert out == 7
        assert sup.stats["retries"] == 0
        assert sup.stats["rejected_replies"] == 0
        assert sup.stats["stale_frames"] == 3  # chunks 2, 3 + stale END

    def test_mid_stream_gap_still_rejects_the_attempt(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        fresh = list(
            iter_chunk_frames(KIND_ACK, 0, [pack_ack(7)], chunk_bytes=1)
        )
        # Chunk seq 1 lost mid-stream: a genuine gap, not a stale tail.
        t.script[0] = [("frame", fresh[0]), ("frame", fresh[2])]
        t.script[0] += [("frame", f) for f in fresh]
        sup, _ = make_supervisor(t, clock)
        out = sup.request(
            0, b"req", phase="step", expect_kind=KIND_ACK,
            decode=self._decode,
        )
        assert out == 7
        assert sup.stats["rejected_replies"] == 1
        assert sup.stats["retries"] == 1


class TestPolicies:
    def test_drop_policy_marks_dead_and_returns_none(self):
        clock = FakeClock()
        t = FakeTransport(2, clock)
        sup, _ = make_supervisor(t, clock, straggler_policy=POLICY_DROP)
        out = sup.request(
            1, b"req", phase="step", expect_kind=KIND_ACK, decode=unpack_ack
        )
        assert out is None
        assert sup.alive == {0}
        assert isinstance(sup.dead[1], RetryExhaustedError)
        assert sup.stats["workers_lost"] == 1
        # Requests to a dead worker are silently skipped.
        assert sup.request(
            1, b"again", phase="step", expect_kind=KIND_ACK
        ) is None

    def test_hangup_under_drop_policy(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        t.script[0] = [("closed",)]
        sup, _ = make_supervisor(t, clock, straggler_policy=POLICY_DROP)
        out = sup.request(0, b"req", phase="epoch", expect_kind=KIND_ACK)
        assert out is None
        assert isinstance(sup.dead[0], WorkerCrashedError)


class TestHeartbeats:
    def test_silent_worker_declared_lost_under_drop(self):
        clock = FakeClock()
        t = FakeTransport(2, clock)
        sup, _ = make_supervisor(
            t, clock, straggler_policy=POLICY_DROP, heartbeat_timeout=5.0
        )
        # Worker 0 keeps talking; worker 1 goes silent.
        clock.advance(6.0)
        t.script[0] = [("frame", pack_frame(KIND_HEARTBEAT, 0))]
        lost = sup.check_heartbeats(phase="epoch")
        assert lost == [1]
        assert sup.alive == {0}
        err = sup.dead[1]
        assert isinstance(err, HeartbeatLostError)
        assert err.worker_id == 1 and err.phase == "epoch"

    def test_silent_worker_raises_under_fail_fast(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        sup, _ = make_supervisor(t, clock, heartbeat_timeout=1.0)
        clock.advance(2.0)
        with pytest.raises(HeartbeatLostError):
            sup.check_heartbeats()

    def test_disabled_timeout_never_loses_workers(self):
        clock = FakeClock()
        t = FakeTransport(1, clock)
        sup, _ = make_supervisor(t, clock, heartbeat_timeout=0.0)
        clock.advance(1e6)
        assert sup.check_heartbeats() == []
        assert sup.alive == {0}


class TestBackoff:
    def test_deterministic_given_seed(self):
        cfg = SupervisionConfig(
            max_retries=4, backoff_base=0.1, backoff_factor=2.0,
            backoff_jitter=0.5, seed=123,
        )
        a = backoff_delays(cfg, np.random.default_rng(123))
        b = backoff_delays(cfg, np.random.default_rng(123))
        assert a == b
        assert len(a) == 4
        # Jitter stays within +/- jitter/2 of the nominal delay.
        for i, d in enumerate(a):
            nominal = 0.1 * 2.0 ** i
            assert 0.75 * nominal <= d <= 1.25 * nominal

    def test_no_jitter_is_pure_exponential(self):
        cfg = SupervisionConfig(
            max_retries=3, backoff_base=0.5, backoff_factor=3.0,
            backoff_jitter=0.0,
        )
        delays = backoff_delays(cfg, np.random.default_rng(0))
        assert delays == pytest.approx([0.5, 1.5, 4.5])


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"message_timeout": 0.0},
            {"init_timeout": -1.0},
            {"max_retries": -1},
            {"backoff_factor": 0.5},
            {"backoff_jitter": 1.5},
            {"heartbeat_interval": -0.1},
            {"straggler_policy": "shrug"},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionConfig(**kwargs)
