"""Trace-driven fleet replay: cost-model fit, simulation, synthesis.

``tests/golden/trace/fleet_8w.jsonl`` is a committed 8-worker ``mp``
flight recording; ``fleet_8w_costmodel.json`` pins the cost model
fitted from it.  The regression test re-fits the trace and compares
against the pin with tight tolerances, so any behavioural change in
the fitting pipeline shows up as a diff, not silence.
"""

import json
import os

import numpy as np
import pytest

from repro.fleet import (
    CostModel,
    FleetScenario,
    ReplayError,
    fit_cost_model,
    run_replay,
    simulate_fleet,
)
from repro.fleet.costmodel import CostModelError
from repro.fleet.replay import synthesize_trace
from repro.telemetry import validate_trace
from repro.telemetry.merge import read_trace

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "trace")
GOLDEN_TRACE = os.path.join(GOLDEN_DIR, "fleet_8w.jsonl")
GOLDEN_MODEL = os.path.join(GOLDEN_DIR, "fleet_8w_costmodel.json")

#: The fit is deterministic, but the pin tolerates library-level float
#: drift (e.g. a numpy reduction reassociating) without going silent
#: on real behavioural changes.
RTOL = 1e-9


@pytest.fixture(scope="module")
def golden_model():
    return fit_cost_model(read_trace(GOLDEN_TRACE))


class TestGoldenFit:
    def test_fit_matches_pinned_model(self, golden_model):
        with open(GOLDEN_MODEL, "r", encoding="utf-8") as fh:
            pinned = CostModel.from_dict(json.load(fh))
        assert golden_model.num_workers == pinned.num_workers == 8
        for got, ref in zip(golden_model.workers, pinned.workers):
            assert got.worker == ref.worker
            assert got.samples == ref.samples
            assert got.mean == pytest.approx(ref.mean, rel=RTOL)
            assert got.std == pytest.approx(ref.std, rel=RTOL)
            assert got.log_mean == pytest.approx(ref.log_mean, rel=RTOL)
            assert got.log_std == pytest.approx(ref.log_std, rel=RTOL)
        assert golden_model.bytes_per_message == pytest.approx(
            pinned.bytes_per_message, rel=RTOL
        )
        assert golden_model.raw_bytes_per_message == pytest.approx(
            pinned.raw_bytes_per_message, rel=RTOL
        )
        assert golden_model.decode_seconds_per_message == pytest.approx(
            pinned.decode_seconds_per_message, rel=RTOL
        )
        assert golden_model.wire_latency_seconds == pytest.approx(
            pinned.wire_latency_seconds, rel=RTOL, abs=1e-12
        )
        assert golden_model.rounds_per_epoch == pytest.approx(
            pinned.rounds_per_epoch, rel=RTOL
        )

    def test_dict_roundtrip_is_identity(self, golden_model):
        assert CostModel.from_dict(golden_model.to_dict()) == golden_model

    def test_fit_is_sane(self, golden_model):
        for wc in golden_model.workers:
            assert wc.samples > 0
            assert wc.mean > 0
            assert wc.std >= 0
        assert golden_model.bytes_per_message > 0
        assert golden_model.decode_seconds_per_message > 0
        assert golden_model.rounds_per_epoch > 0
        assert golden_model.wire_latency_seconds >= 0

    def test_fit_without_step_spans_raises(self):
        events = [
            {"type": "meta", "ts": 0.0, "pid": 1, "seq": 0,
             "schema": "repro-trace/1", "source": "driver"},
        ]
        with pytest.raises(CostModelError, match="worker.step"):
            fit_cost_model(events)


class TestSimulation:
    def test_scales_to_a_thousand_workers(self, golden_model):
        # The acceptance bar: an 8-worker recording extrapolated to a
        # 1000-worker fleet, with load, stragglers, and churn.
        scenario = FleetScenario(
            workers=1000,
            rounds=50,
            seed=7,
            diurnal_amplitude=0.3,
            straggler_rate=0.02,
            straggler_stall=0.5,
            churn_leave_prob=0.002,
            churn_join_prob=0.02,
        )
        result = simulate_fleet(golden_model, scenario)
        assert len(result.rounds) == 50
        assert result.total_seconds > 0
        assert result.bytes_total > 0
        assert all(1 <= r.active <= 1000 for r in result.rounds)
        assert result.membership_changes > 0
        assert {"p50", "p90", "p99"} <= set(result.percentiles)
        assert (
            result.percentiles["p50"]
            <= result.percentiles["p90"]
            <= result.percentiles["p99"]
        )

    def test_same_seed_is_deterministic(self, golden_model):
        scenario = FleetScenario(
            workers=300, rounds=30, seed=11,
            straggler_rate=0.05, straggler_stall=0.5,
            churn_leave_prob=0.01, churn_join_prob=0.05,
        )
        a = simulate_fleet(golden_model, scenario)
        b = simulate_fleet(golden_model, scenario)
        assert a.summary_dict() == b.summary_dict()
        assert a.worker_samples == b.worker_samples

    def test_barrier_gather_attributes_stragglers(self, golden_model):
        # A barrier waits for the slowest worker, so a stalled rack
        # must extend the round and show up in the attribution.
        scenario = FleetScenario(
            workers=64, rounds=40, seed=3, gather="barrier",
            straggler_rate=0.2, straggler_stall=2.0, rack_size=8,
        )
        result = simulate_fleet(golden_model, scenario)
        assert result.straggler_seconds > 0
        assert any(r.stalled_racks for r in result.rounds)

    def test_stale_mode_runs_event_driven(self, golden_model):
        scenario = FleetScenario(workers=64, rounds=40, seed=5, staleness=3)
        result = simulate_fleet(golden_model, scenario)
        # Stale mode records one entry per applied step: rounds are
        # per-worker step quotas, not global barriers.
        assert len(result.rounds) == 40 * 64
        assert result.total_seconds > 0
        assert result.epoch_seconds > 0

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="workers"):
            FleetScenario(workers=0, rounds=10)
        with pytest.raises(ValueError, match="gather"):
            FleetScenario(workers=4, rounds=10, gather="quorum")
        with pytest.raises(ValueError, match="min_active"):
            FleetScenario(workers=4, rounds=10, min_active=9)


class TestSyntheticTrace:
    def test_trace_is_schema_valid(self, golden_model):
        scenario = FleetScenario(
            workers=200, rounds=25, seed=7,
            straggler_rate=0.1, straggler_stall=0.5,
            churn_leave_prob=0.01, churn_join_prob=0.05,
        )
        result = simulate_fleet(golden_model, scenario)
        events = synthesize_trace(result)
        stats = validate_trace(events)
        assert stats["events"] == len(events)
        meta = events[0]
        assert meta["type"] == "meta"
        assert meta["attrs"]["synthetic"] is True
        assert meta["attrs"]["timebase"] == "virtual-seconds"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(set(seqs))
        types = {e["type"] for e in events}
        assert {"meta", "span", "counter", "gauge", "event"} <= types


class TestRunReplay:
    def test_end_to_end_writes_trace_and_summary(
        self, tmp_path, golden_model
    ):
        out = str(tmp_path / "synth.jsonl")
        results = str(tmp_path / "results")
        scenario = FleetScenario(workers=1000, rounds=20, seed=7)
        outcome = run_replay(
            GOLDEN_TRACE, scenario, out_path=out, results_dir=results
        )
        assert outcome["events"] > 0
        assert "workers             1000" in outcome["summary"]
        # The written trace re-reads and re-validates.
        reread = read_trace(out)
        assert validate_trace(reread)["events"] == outcome["events"]
        with open(os.path.join(results, "fleet_replay.txt")) as fh:
            assert "round p50/p90/p99" in fh.read()

    def test_missing_trace_is_a_replay_error(self, tmp_path):
        with pytest.raises(ReplayError, match="cannot read"):
            run_replay(
                str(tmp_path / "nope.jsonl"),
                FleetScenario(workers=4, rounds=2),
            )

    def test_unfittable_trace_is_a_replay_error(self, tmp_path):
        # Schema-valid but with no worker.step spans: readable, not
        # fittable — the error must name the problem, not crash.
        path = str(tmp_path / "thin.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "type": "meta", "ts": 0.0, "pid": 1, "seq": 0,
                "schema": "repro-trace/1", "source": "driver",
            }) + "\n")
        with pytest.raises(ReplayError, match="worker.step"):
            run_replay(path, FleetScenario(workers=4, rounds=2))
