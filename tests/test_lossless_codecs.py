"""Tests for the lossless key codecs compared in §3.4 / §A.3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lossless import (
    BitmapKeyCodec,
    DeltaBinaryKeyCodec,
    HuffmanDeltaKeyCodec,
    RawKeyCodec,
    RunLengthKeyCodec,
    VarintKeyCodec,
    all_key_codecs,
)

CODEC_FACTORIES = [
    DeltaBinaryKeyCodec,
    RawKeyCodec,
    VarintKeyCodec,
    RunLengthKeyCodec,
    HuffmanDeltaKeyCodec,
    lambda: BitmapKeyCodec(dimension=2**20),
]


def sample_keys(nnz=2_000, dimension=2**20, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(dimension, size=nnz, replace=False))


@pytest.mark.parametrize("factory", CODEC_FACTORIES)
class TestLosslessContract:
    def test_roundtrip_random_keys(self, factory):
        codec = factory()
        keys = sample_keys(seed=1)
        np.testing.assert_array_equal(codec.decode(codec.encode(keys)), keys)

    def test_roundtrip_consecutive(self, factory):
        codec = factory()
        keys = np.arange(500, dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(keys)), keys)

    def test_roundtrip_single(self, factory):
        codec = factory()
        keys = np.asarray([123_456], dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(keys)), keys)

    def test_roundtrip_empty(self, factory):
        codec = factory()
        keys = np.asarray([], dtype=np.int64)
        assert codec.decode(codec.encode(keys)).size == 0

    def test_bytes_per_key_positive(self, factory):
        codec = factory()
        keys = sample_keys(seed=2)
        assert codec.bytes_per_key(keys) > 0


class TestRelativeCosts:
    """Quantified versions of the paper's qualitative codec claims."""

    def test_delta_binary_beats_raw_on_sparse_keys(self):
        keys = sample_keys(nnz=5_000, dimension=100_000, seed=3)
        delta = DeltaBinaryKeyCodec().bytes_per_key(keys)
        raw = RawKeyCodec().bytes_per_key(keys)
        assert delta < raw / 2  # paper: 3.2x smaller than 4-byte ints

    def test_rle_useless_for_scattered_keys(self):
        """§3.4: RLE suits consecutive repeats, not sparse key sets."""
        keys = sample_keys(nnz=2_000, dimension=2**20, seed=4)
        rle = RunLengthKeyCodec().bytes_per_key(keys)
        delta = DeltaBinaryKeyCodec().bytes_per_key(keys)
        assert rle > 3 * delta

    def test_huffman_overhead_on_sparse_keys(self):
        keys = sample_keys(nnz=2_000, dimension=2**20, seed=5)
        huffman = HuffmanDeltaKeyCodec().bytes_per_key(keys)
        delta = DeltaBinaryKeyCodec().bytes_per_key(keys)
        assert huffman > delta

    def test_bitmap_cost_independent_of_nnz(self):
        """§A.3: bitmap costs ceil(D/8) bytes regardless of sparsity."""
        dimension = 2**16
        codec = BitmapKeyCodec(dimension)
        sparse = sample_keys(nnz=10, dimension=dimension, seed=6)
        dense = sample_keys(nnz=10_000, dimension=dimension, seed=6)
        assert len(codec.encode(sparse)) == len(codec.encode(dense)) == dimension // 8

    def test_bitmap_wins_only_when_dense(self):
        """Delta-binary beats bitmap below ~1/10 density, loses above."""
        dimension = 2**16
        bitmap = BitmapKeyCodec(dimension)
        delta = DeltaBinaryKeyCodec()
        sparse = sample_keys(nnz=dimension // 100, dimension=dimension, seed=7)
        dense = sample_keys(nnz=dimension // 3, dimension=dimension, seed=7)
        assert len(delta.encode(sparse)) < len(bitmap.encode(sparse))
        assert len(bitmap.encode(dense)) < len(delta.encode(dense))

    def test_varint_competitive_with_delta_binary(self):
        keys = sample_keys(nnz=5_000, dimension=2**20, seed=8)
        varint = VarintKeyCodec().bytes_per_key(keys)
        delta = DeltaBinaryKeyCodec().bytes_per_key(keys)
        assert varint < 2 * delta
        assert delta < 2 * varint


class TestEdgeCases:
    def test_bitmap_validates_range(self):
        codec = BitmapKeyCodec(dimension=100)
        with pytest.raises(ValueError):
            codec.encode(np.asarray([150]))
        with pytest.raises(ValueError):
            BitmapKeyCodec(dimension=0)

    def test_varint_rejects_descending(self):
        with pytest.raises(ValueError, match="ascending"):
            VarintKeyCodec().encode(np.asarray([5, 3]))

    def test_varint_truncated_stream(self):
        blob = VarintKeyCodec().encode(np.asarray([1_000_000]))
        with pytest.raises(ValueError, match="truncated"):
            VarintKeyCodec().decode(blob[:-1])

    def test_raw_rejects_oversized(self):
        with pytest.raises(ValueError):
            RawKeyCodec().encode(np.asarray([2**33]))

    def test_all_key_codecs_helper(self):
        codecs = all_key_codecs(dimension=1_024)
        names = {codec.name for codec in codecs}
        assert names == {
            "delta_binary",
            "raw_int32",
            "varint_delta",
            "rle_bitmap",
            "huffman_delta",
            "bitmap",
        }

    def test_huffman_single_distinct_byte(self):
        """Degenerate Huffman tree (one symbol) still roundtrips."""
        keys = np.arange(1, 50, dtype=np.int64)  # all deltas == 1
        codec = HuffmanDeltaKeyCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(keys)), keys)


@given(
    deltas=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=200),
)
@settings(max_examples=30, deadline=None)
def test_all_codecs_roundtrip_property(deltas):
    keys = np.cumsum(np.asarray(deltas, dtype=np.int64))
    codecs = [
        DeltaBinaryKeyCodec(),
        RawKeyCodec(),
        VarintKeyCodec(),
        RunLengthKeyCodec(),
        HuffmanDeltaKeyCodec(),
        BitmapKeyCodec(dimension=int(keys[-1]) + 1),
    ]
    for codec in codecs:
        np.testing.assert_array_equal(codec.decode(codec.encode(keys)), keys)
