"""Membership schedules: validation, serde, seeding, shard weights.

The schedule is the ground truth of *who trains when* for the whole
fleet subsystem — elastic training and the replay simulator both
consume it — so its invariants (never-empty active set, strictly
increasing events, join/leave consistency) are pinned here.
"""

import json

import pytest

from repro.fleet import (
    MembershipEvent,
    MembershipSchedule,
    ScheduleError,
    shard_weights,
)
from repro.fleet.membership import SCHEDULE_SCHEMA


def make_schedule():
    return MembershipSchedule(
        num_workers=4,
        start=(0, 1, 2),
        events=(
            MembershipEvent(round=2, joins=(3,)),
            MembershipEvent(round=4, leaves=(1,)),
        ),
    )


class TestValidation:
    def test_start_defaults_to_full_universe(self):
        sched = MembershipSchedule(num_workers=3)
        assert sched.start == (0, 1, 2)
        assert sched.max_event_round == 0

    def test_event_round_zero_rejected(self):
        with pytest.raises(ScheduleError, match="start at round 1"):
            MembershipEvent(round=0, joins=(1,))

    def test_empty_event_rejected(self):
        with pytest.raises(ScheduleError, match="empty"):
            MembershipEvent(round=1)

    def test_join_and_leave_overlap_rejected(self):
        with pytest.raises(ScheduleError, match="both"):
            MembershipEvent(round=1, joins=(1,), leaves=(1,))

    def test_events_must_increase(self):
        with pytest.raises(ScheduleError, match="strictly increasing"):
            MembershipSchedule(
                num_workers=3,
                events=(
                    MembershipEvent(round=2, leaves=(0,)),
                    MembershipEvent(round=2, leaves=(1,)),
                ),
            )

    def test_join_of_active_worker_rejected(self):
        with pytest.raises(ScheduleError, match="already active"):
            MembershipSchedule(
                num_workers=3,
                events=(MembershipEvent(round=1, joins=(0,)),),
            )

    def test_leave_of_inactive_worker_rejected(self):
        with pytest.raises(ScheduleError, match="not active"):
            MembershipSchedule(
                num_workers=3,
                start=(0, 1),
                events=(MembershipEvent(round=1, leaves=(2,)),),
            )

    def test_membership_may_never_empty(self):
        with pytest.raises(ScheduleError, match="empty"):
            MembershipSchedule(
                num_workers=2,
                events=(MembershipEvent(round=1, leaves=(0, 1)),),
            )

    def test_worker_outside_universe_rejected(self):
        with pytest.raises(ScheduleError, match="outside universe"):
            MembershipSchedule(
                num_workers=2,
                events=(MembershipEvent(round=1, joins=(5,)),),
            )


class TestQueries:
    def test_active_at_walks_the_timeline(self):
        sched = make_schedule()
        assert sched.active_at(0) == (0, 1, 2)
        assert sched.active_at(1) == (0, 1, 2)
        assert sched.active_at(2) == (0, 1, 2, 3)
        assert sched.active_at(4) == (0, 2, 3)
        assert sched.active_at(99) == (0, 2, 3)

    def test_event_at(self):
        sched = make_schedule()
        assert sched.event_at(2).joins == (3,)
        assert sched.event_at(3) is None
        assert sched.event_at(4).leaves == (1,)

    def test_max_event_round(self):
        assert make_schedule().max_event_round == 4


class TestSerde:
    def test_json_roundtrip_is_identity(self):
        sched = make_schedule()
        assert MembershipSchedule.from_json(sched.to_json()) == sched

    def test_schema_tag_is_checked(self):
        obj = make_schedule().to_json()
        obj["schema"] = "bogus/9"
        with pytest.raises(ScheduleError, match="unknown schedule schema"):
            MembershipSchedule.from_json(obj)

    def test_save_load_roundtrip(self, tmp_path):
        sched = make_schedule()
        path = str(tmp_path / "sched.json")
        sched.save(path)
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == SCHEDULE_SCHEMA
        assert MembershipSchedule.load(path) == sched


class TestSeeded:
    def test_same_seed_same_schedule(self):
        a = MembershipSchedule.seeded(8, 50, seed=7, leave_prob=0.1)
        b = MembershipSchedule.seeded(8, 50, seed=7, leave_prob=0.1)
        assert a == b

    def test_different_seed_differs(self):
        a = MembershipSchedule.seeded(8, 50, seed=7, leave_prob=0.2)
        b = MembershipSchedule.seeded(8, 50, seed=8, leave_prob=0.2)
        assert a != b

    def test_min_active_respected_everywhere(self):
        sched = MembershipSchedule.seeded(
            6, 200, seed=3, leave_prob=0.4, join_prob=0.05, min_active=2
        )
        for r in range(200):
            assert len(sched.active_at(r)) >= 2

    def test_min_active_bounds_checked(self):
        with pytest.raises(ScheduleError, match="min_active"):
            MembershipSchedule.seeded(4, 10, seed=0, min_active=5)


class TestShardWeights:
    def test_weights_are_size_fractions_and_sum_to_one(self):
        weights = shard_weights({0: 30, 2: 50, 5: 20})
        assert weights == {0: 0.3, 2: 0.5, 5: 0.2}
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_equal_shards_reduce_to_uniform(self):
        weights = shard_weights({w: 17 for w in range(4)})
        assert all(v == pytest.approx(0.25) for v in weights.values())

    def test_empty_total_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            shard_weights({0: 0})
