"""Tests for MinMaxSketch and GroupedMinMaxSketch (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minmax_sketch import GroupedMinMaxSketch, MinMaxSketch
from repro.sketch.frequency import CountMinSketch


def random_pairs(n, key_space, index_range, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(key_space, size=n, replace=False))
    indexes = rng.integers(0, index_range, size=n)
    return keys, indexes


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MinMaxSketch(num_rows=0)
        with pytest.raises(ValueError):
            MinMaxSketch(num_bins=0)
        with pytest.raises(ValueError):
            MinMaxSketch(index_range=0)

    def test_insert_shape_mismatch(self):
        sk = MinMaxSketch()
        with pytest.raises(ValueError, match="same shape"):
            sk.insert_many(np.asarray([1, 2]), np.asarray([0]))

    def test_insert_out_of_range_index(self):
        sk = MinMaxSketch(index_range=10)
        with pytest.raises(ValueError, match="indexes must lie"):
            sk.insert(5, 10)
        with pytest.raises(ValueError):
            sk.insert(5, -1)

    def test_merge_validation(self):
        a = MinMaxSketch(num_rows=2, num_bins=64)
        with pytest.raises(ValueError):
            a.merge(MinMaxSketch(num_rows=3, num_bins=64))
        with pytest.raises(TypeError):
            a.merge(CountMinSketch())


class TestOneSidedError:
    """The paper's central claim: decode error is never an overestimate."""

    @pytest.mark.parametrize("num_bins", [64, 256, 2_048])
    def test_query_never_exceeds_true_index(self, num_bins):
        keys, indexes = random_pairs(2_000, 1_000_000, 256, seed=1)
        sk = MinMaxSketch(num_rows=2, num_bins=num_bins, index_range=256, seed=0)
        sk.insert_many(keys, indexes)
        decoded = sk.query_many(keys)
        assert np.all(decoded <= indexes)

    def test_exact_when_no_collisions(self):
        keys, indexes = random_pairs(50, 10_000, 256, seed=2)
        sk = MinMaxSketch(num_rows=4, num_bins=50_000, index_range=256, seed=0)
        sk.insert_many(keys, indexes)
        np.testing.assert_array_equal(sk.query_many(keys), indexes)

    def test_single_insert_query(self):
        sk = MinMaxSketch(num_rows=3, num_bins=128, index_range=16, seed=5)
        sk.insert(12345, 7)
        assert sk.query(12345) == 7

    def test_more_rows_tighter_estimates(self):
        """Max-of-candidates improves with more independent rows."""
        keys, indexes = random_pairs(5_000, 500_000, 128, seed=3)
        errors = []
        for rows in (1, 2, 4):
            sk = MinMaxSketch(
                num_rows=rows, num_bins=2_000, index_range=128, seed=0
            )
            sk.insert_many(keys, indexes)
            errors.append(float(np.mean(indexes - sk.query_many(keys))))
        assert errors[0] >= errors[1] >= errors[2]

    def test_countmin_strategy_overestimates_where_minmax_cannot(self):
        """§3.3's motivation: an additive sketch amplifies bucket
        indexes under collision; MinMaxSketch never does."""
        keys, indexes = random_pairs(3_000, 100_000, 64, seed=4)
        # Tight tables force collisions.
        cm = CountMinSketch(num_rows=2, num_bins=512, seed=0)
        for key, idx in zip(keys.tolist(), indexes.tolist()):
            cm.insert(key, count=idx)
        cm_decoded = cm.query_many(keys)
        assert (cm_decoded > indexes).any()  # additive → overshoot
        mm = MinMaxSketch(num_rows=2, num_bins=512, index_range=64, seed=0)
        mm.insert_many(keys, indexes)
        assert np.all(mm.query_many(keys) <= indexes)


class TestMinInsertSemantics:
    def test_bin_holds_minimum_of_colliding_indexes(self):
        """Theorem A.4 analogue: a counter equals the min index mapped
        to it."""
        sk = MinMaxSketch(num_rows=1, num_bins=1, index_range=100, seed=0)
        sk.insert_many(np.asarray([1, 2, 3]), np.asarray([30, 10, 20]))
        # Single bin: every key collides; the bin must hold 10.
        assert sk.query(1) == 10
        assert sk.query(2) == 10
        assert sk.query(3) == 10

    def test_reinsert_larger_index_is_ignored(self):
        sk = MinMaxSketch(num_rows=2, num_bins=64, index_range=50, seed=1)
        sk.insert(9, 5)
        sk.insert(9, 40)
        assert sk.query(9) == 5

    def test_merge_takes_minimum(self):
        a = MinMaxSketch(num_rows=2, num_bins=64, index_range=50, seed=2)
        b = MinMaxSketch(num_rows=2, num_bins=64, index_range=50, seed=2)
        a.insert(3, 20)
        b.insert(3, 10)
        a.merge(b)
        assert a.query(3) == 10
        assert a.inserted_count == 2

    def test_fill_ratio(self):
        sk = MinMaxSketch(num_rows=1, num_bins=100, index_range=10, seed=3)
        assert sk.fill_ratio == 0.0
        sk.insert_many(np.arange(50), np.zeros(50, dtype=np.int64))
        assert 0.0 < sk.fill_ratio <= 0.5

    def test_size_bytes_scales_with_dtype(self):
        small = MinMaxSketch(num_rows=2, num_bins=100, index_range=200)
        large = MinMaxSketch(num_rows=2, num_bins=100, index_range=60_000)
        assert small.size_bytes == 200  # uint8
        assert large.size_bytes == 400  # uint16


class TestGrouped:
    def test_partition_roundtrip(self):
        keys, indexes = random_pairs(2_000, 200_000, 128, seed=5)
        grouped = GroupedMinMaxSketch(
            num_groups=8, index_range=128, total_bins=4_096, seed=0
        )
        partitions = grouped.partition(keys, indexes)
        assert len(partitions) == 8
        total = sum(part_keys.size for part_keys, _ in partitions)
        assert total == keys.size
        for g, (part_keys, offsets) in enumerate(partitions):
            if part_keys.size == 0:
                continue
            assert np.all(np.diff(part_keys) > 0)  # still ascending
            assert offsets.min() >= 0
            assert offsets.max() < grouped.group_width

    def test_grouping_bounds_error(self):
        """§3.3 Solution 2: max decoded index error is q/r."""
        keys, indexes = random_pairs(5_000, 500_000, 128, seed=6)
        grouped = GroupedMinMaxSketch(
            num_groups=8, index_range=128, num_rows=2, total_bins=1_024, seed=0
        )
        partitions = grouped.partition(keys, indexes)
        grouped.insert_partitioned(partitions)
        for g, (part_keys, _) in enumerate(partitions):
            if part_keys.size == 0:
                continue
            decoded = grouped.query_group(g, part_keys)
            true_indexes = indexes[np.isin(keys, part_keys)]
            errors = true_indexes - decoded
            assert errors.max() <= grouped.max_index_error
            assert errors.min() >= 0  # still one-sided

    def test_more_groups_smaller_error(self):
        keys, indexes = random_pairs(5_000, 500_000, 256, seed=7)

        def mean_error(r):
            grouped = GroupedMinMaxSketch(
                num_groups=r, index_range=256, num_rows=2, total_bins=1_024, seed=0
            )
            parts = grouped.partition(keys, indexes)
            grouped.insert_partitioned(parts)
            total_err = 0.0
            for g, (part_keys, _) in enumerate(parts):
                if part_keys.size == 0:
                    continue
                decoded = grouped.query_group(g, part_keys)
                true_idx = indexes[np.isin(keys, part_keys)]
                total_err += float(np.sum(true_idx - decoded))
            return total_err / keys.size

        assert mean_error(16) <= mean_error(4) <= mean_error(1) + 1e-9

    def test_groups_capped_by_index_range(self):
        grouped = GroupedMinMaxSketch(num_groups=64, index_range=16)
        assert grouped.num_groups == 16

    def test_partition_validation(self):
        grouped = GroupedMinMaxSketch(num_groups=4, index_range=16)
        with pytest.raises(ValueError, match="same shape"):
            grouped.partition(np.asarray([1]), np.asarray([1, 2]))
        with pytest.raises(ValueError, match="indexes must lie"):
            grouped.partition(np.asarray([1]), np.asarray([99]))
        with pytest.raises(ValueError, match="partitions"):
            grouped.insert_partitioned([])


@given(
    n=st.integers(min_value=1, max_value=300),
    rows=st.integers(min_value=1, max_value=4),
    bins=st.integers(min_value=1, max_value=512),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_one_sided_error_property(n, rows, bins, seed):
    """For any configuration, decoded <= true for all inserted keys."""
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(100_000, size=n, replace=False))
    indexes = rng.integers(0, 32, size=n)
    sk = MinMaxSketch(num_rows=rows, num_bins=bins, index_range=32, seed=seed)
    sk.insert_many(keys, indexes)
    assert np.all(sk.query_many(keys) <= indexes)
