"""Per-rule fixture tests: each rule fires on a bad snippet, stays
quiet on the idiomatic version of the same code."""

import pytest

from repro.lint import all_rule_ids, lint_source


def ids_for(text, relpath, select=None):
    return sorted({f.rule_id for f in lint_source(text, relpath=relpath,
                                                  select=select)})


class TestKernelParity:
    def test_fires_on_fallthrough_guard(self):
        bad = (
            "from .. import kernels\n"
            "def encode(xs):\n"
            "    if kernels.vectorised_enabled():\n"
            "        xs = xs * 2\n"
            "    return sum(xs)\n"
        )
        findings = lint_source(bad, relpath="core/codec.py",
                               select=["kernel-parity"])
        assert [f.rule_id for f in findings] == ["kernel-parity"]
        assert findings[0].line == 3

    def test_clean_when_branch_returns(self):
        good = (
            "from .. import kernels\n"
            "def encode(xs):\n"
            "    if kernels.vectorised_enabled():\n"
            "        return fast(xs)\n"
            "    return slow(xs)\n"
        )
        assert ids_for(good, "core/codec.py", ["kernel-parity"]) == []

    def test_clean_with_else_branch(self):
        good = (
            "from .. import kernels\n"
            "def encode(xs):\n"
            "    if not kernels.vectorised_enabled():\n"
            "        out = slow(xs)\n"
            "    else:\n"
            "        out = fast(xs)\n"
            "    return out\n"
        )
        assert ids_for(good, "core/codec.py", ["kernel-parity"]) == []

    def test_fires_on_dual_path_module_without_switch(self):
        bad = "def query(key):\n    return key % 7\n"
        findings = lint_source(bad, relpath="core/minmax_sketch.py",
                               select=["kernel-parity"])
        assert [f.rule_id for f in findings] == ["kernel-parity"]
        assert "never" in findings[0].message

    def test_fires_on_one_sided_kernel_import(self):
        bad = (
            "from .. import kernels\n"
            "def encode(xs):\n"
            "    return kernels.pack(xs)\n"
        )
        assert ids_for(bad, "core/codec.py", ["kernel-parity"]) == [
            "kernel-parity"
        ]

    def test_ignores_modules_outside_core(self):
        bad = "def f(xs):\n    if vectorised_enabled():\n        xs = 1\n"
        assert ids_for(bad, "bench/runner.py", ["kernel-parity"]) == []


class TestHotLoop:
    def test_fires_on_container_loop(self):
        bad = (
            "def pack(arrays):\n"
            "    total = 0\n"
            "    for arr in arrays:\n"
            "        total += arr.sum()\n"
            "    return total\n"
        )
        findings = lint_source(bad, relpath="core/bitpack.py",
                               select=["hot-loop"])
        assert [f.rule_id for f in findings] == ["hot-loop"]
        assert findings[0].line == 3

    def test_fires_on_zip_and_while(self):
        bad = (
            "def pack(a, b):\n"
            "    for x, y in zip(a, b):\n"
            "        use(x, y)\n"
            "    while a:\n"
            "        a = a[1:]\n"
        )
        findings = lint_source(bad, relpath="core/bitpack.py",
                               select=["hot-loop"])
        assert len(findings) == 2

    def test_range_loops_allowed(self):
        good = (
            "def pack(groups):\n"
            "    for g in range(len(groups)):\n"
            "        emit(g)\n"
            "    for i, g in enumerate(groups):\n"
            "        emit(i)\n"
        )
        assert ids_for(good, "core/bitpack.py", ["hot-loop"]) == []

    def test_scalar_guarded_loop_allowed(self):
        good = (
            "from .. import kernels\n"
            "def pack(arrays):\n"
            "    if not kernels.vectorised_enabled():\n"
            "        for arr in arrays:\n"
            "            slow(arr)\n"
            "        return\n"
            "    fast(arrays)\n"
        )
        assert ids_for(good, "core/bitpack.py", ["hot-loop"]) == []

    def test_ignores_non_vectorised_modules(self):
        bad = "def f(xs):\n    for x in xs:\n        use(x)\n"
        assert ids_for(bad, "core/compressor.py", ["hot-loop"]) == []


class TestRngDiscipline:
    def test_fires_on_unseeded_default_rng(self):
        bad = (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng().random()\n"
        )
        assert ids_for(bad, "core/x.py", ["rng-discipline"]) == [
            "rng-discipline"
        ]

    def test_fires_on_legacy_global_state(self):
        bad = "import numpy as np\nnp.random.seed(0)\nx = np.random.rand(3)\n"
        findings = lint_source(bad, relpath="core/x.py",
                               select=["rng-discipline"])
        assert len(findings) == 2

    def test_fires_on_stdlib_random_and_wall_clock(self):
        bad = (
            "import random\n"
            "import time\n"
            "def f():\n"
            "    return random.random() + time.time()\n"
        )
        findings = lint_source(bad, relpath="core/x.py",
                               select=["rng-discipline"])
        assert len(findings) == 2

    def test_seeded_generator_clean(self):
        good = (
            "import numpy as np\n"
            "import time\n"
            "def draw(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    t = time.perf_counter()\n"
            "    return rng.random(), t\n"
        )
        assert ids_for(good, "core/x.py", ["rng-discipline"]) == []

    def test_parameter_named_random_clean(self):
        good = "def f(random):\n    return random.choice([1, 2])\n"
        assert ids_for(good, "core/x.py", ["rng-discipline"]) == []


class TestDtypeDiscipline:
    def test_fires_on_dtypeless_constructor_in_strict_module(self):
        bad = "import numpy as np\ndef f(xs):\n    return np.asarray(xs)\n"
        assert ids_for(bad, "core/bitpack.py", ["dtype-discipline"]) == [
            "dtype-discipline"
        ]

    def test_explicit_dtype_clean(self):
        good = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    a = np.asarray(xs, dtype=np.int64)\n"
            "    b = np.zeros(4, np.uint64)\n"
            "    return a, b\n"
        )
        assert ids_for(good, "core/bitpack.py", ["dtype-discipline"]) == []

    def test_fires_on_float_object_dtype_anywhere_in_core(self):
        bad = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    return xs.astype(float), np.zeros(3, dtype=object)\n"
        )
        findings = lint_source(bad, relpath="core/compressor.py",
                               select=["dtype-discipline"])
        assert len(findings) == 2

    def test_dtypeless_allowed_outside_strict_modules(self):
        good = "import numpy as np\ndef f(xs):\n    return np.asarray(xs)\n"
        assert ids_for(good, "core/compressor.py", ["dtype-discipline"]) == []
        assert ids_for(good, "bench/runner.py", ["dtype-discipline"]) == []


class TestWireFormat:
    def test_fires_outside_serialization_modules(self):
        bad = (
            "import struct\n"
            "import numpy as np\n"
            "def f(buf, arr):\n"
            "    n = struct.unpack('<I', buf[:4])[0]\n"
            "    raw = arr.tobytes()\n"
            "    return np.frombuffer(buf, dtype=np.uint8), n, raw\n"
        )
        findings = lint_source(bad, relpath="core/compressor.py",
                               select=["wire-format"])
        assert len(findings) == 4  # import, unpack, tobytes, frombuffer

    def test_allowed_in_wire_modules(self):
        good = (
            "import struct\n"
            "import numpy as np\n"
            "def f(buf, arr):\n"
            "    return struct.pack('<I', 1) + arr.tobytes()\n"
        )
        assert ids_for(good, "core/serialization.py", ["wire-format"]) == []
        assert ids_for(good, "core/bitpack.py", ["wire-format"]) == []


class TestBareExcept:
    def test_fires_on_bare_except(self):
        bad = "try:\n    f()\nexcept:\n    g()\n"
        assert ids_for(bad, "core/x.py", ["bare-except"]) == ["bare-except"]

    def test_fires_on_swallowed_exception(self):
        bad = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert ids_for(bad, "core/x.py", ["bare-except"]) == ["bare-except"]

    def test_typed_handler_clean(self):
        good = (
            "try:\n"
            "    f()\n"
            "except ValueError:\n"
            "    pass\n"
            "except Exception as exc:\n"
            "    log(exc)\n"
            "    raise\n"
        )
        assert ids_for(good, "core/x.py", ["bare-except"]) == []


class TestMutableDefault:
    def test_fires_on_literal_and_call_defaults(self):
        bad = (
            "import numpy as np\n"
            "def f(a=[], b={}, c=set(), d=np.zeros(3)):\n"
            "    return a, b, c, d\n"
        )
        findings = lint_source(bad, relpath="core/x.py",
                               select=["mutable-default"])
        assert len(findings) == 4

    def test_none_default_clean(self):
        good = (
            "def f(a=None, b=(), c='x', *, d=None):\n"
            "    a = [] if a is None else a\n"
            "    return a, b, c, d\n"
        )
        assert ids_for(good, "core/x.py", ["mutable-default"]) == []


class TestMissingAll:
    def test_fires_on_public_module_without_all(self):
        bad = "def encode(x):\n    return x\n\nLIMIT = 4\n"
        findings = lint_source(bad, relpath="core/x.py",
                               select=["missing-all"])
        assert [f.rule_id for f in findings] == ["missing-all"]
        assert findings[0].severity == "warning"

    def test_clean_with_all(self):
        good = "__all__ = ['encode']\n\ndef encode(x):\n    return x\n"
        assert ids_for(good, "core/x.py", ["missing-all"]) == []

    def test_private_only_module_clean(self):
        good = "def _helper(x):\n    return x\n_CACHE = {}\n"
        assert ids_for(good, "core/x.py", ["missing-all"]) == []


class TestWireEndianness:
    WIRE = "core/serialization.py"

    def test_fires_on_frombuffer_numpy_attr_dtype(self):
        bad = (
            "import numpy as np\n"
            "def read(blob):\n"
            "    return np.frombuffer(blob[:4], dtype=np.uint32)\n"
        )
        findings = lint_source(bad, relpath=self.WIRE,
                               select=["wire-endianness"])
        assert [f.rule_id for f in findings] == ["wire-endianness"]
        assert "uint32" in findings[0].message

    def test_fires_on_scalar_tobytes(self):
        bad = (
            "import numpy as np\n"
            "def header(n):\n"
            "    return np.uint32(n).tobytes()\n"
        )
        assert ids_for(bad, self.WIRE, ["wire-endianness"]) == [
            "wire-endianness"
        ]

    def test_fires_on_cast_chained_to_tobytes(self):
        bad = (
            "import numpy as np\n"
            "def emit(x):\n"
            "    return np.asarray(x, dtype=np.float64).tobytes()\n"
        )
        assert ids_for(bad, self.WIRE, ["wire-endianness"]) == [
            "wire-endianness"
        ]

    def test_fires_on_unpinned_dtype_string(self):
        bad = (
            "import numpy as np\n"
            "def read(blob):\n"
            '    return np.frombuffer(blob, dtype="f8")\n'
        )
        assert ids_for(bad, self.WIRE, ["wire-endianness"]) == [
            "wire-endianness"
        ]

    def test_fires_on_big_endian_string(self):
        bad = (
            "import numpy as np\n"
            "def read(blob):\n"
            '    return np.frombuffer(blob, dtype=">u4")\n'
        )
        assert ids_for(bad, self.WIRE, ["wire-endianness"]) == [
            "wire-endianness"
        ]

    def test_fires_on_unpinned_dtype_constant(self):
        bad = 'HEADER_DTYPE = "u4"\n'
        assert ids_for(bad, self.WIRE, ["wire-endianness"]) == [
            "wire-endianness"
        ]

    def test_clean_on_pinned_little_endian_strings(self):
        good = (
            "import numpy as np\n"
            "def read(blob):\n"
            '    head = np.frombuffer(blob[:4], dtype="<u4")\n'
            '    return np.frombuffer(blob[4:], dtype="<f8")\n'
            "def emit(x):\n"
            '    return np.asarray(x, dtype="<u4").tobytes()\n'
        )
        assert ids_for(good, self.WIRE, ["wire-endianness"]) == []

    def test_clean_on_single_byte_dtypes(self):
        good = (
            "import numpy as np\n"
            "def read(blob):\n"
            '    return np.frombuffer(blob, dtype="u1")\n'
        )
        assert ids_for(good, self.WIRE, ["wire-endianness"]) == []

    def test_in_memory_numpy_attr_dtypes_stay_legal(self):
        # Scratch buffers never cross the wire; only frombuffer /
        # tobytes chains and dtype string literals are byte-crossing.
        good = (
            "import numpy as np\n"
            "def scatter(n):\n"
            "    return np.empty(n, dtype=np.uint64)\n"
        )
        assert ids_for(good, self.WIRE, ["wire-endianness"]) == []

    def test_silent_outside_wire_modules(self):
        bad = (
            "import numpy as np\n"
            "def read(blob):\n"
            "    return np.frombuffer(blob, dtype=np.uint32)\n"
        )
        assert ids_for(bad, "distributed/worker.py",
                       ["wire-endianness"]) == []

    def test_repo_wire_modules_are_clean(self):
        import os

        from repro.lint.policy import WIRE_MODULES

        src_root = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro"
        )
        for relpath in sorted(WIRE_MODULES):
            with open(os.path.join(src_root, relpath)) as f:
                text = f.read()
            assert ids_for(text, relpath, ["wire-endianness"]) == [], relpath


class TestWireEndiannessTelemetryScope:
    """Satellite: the endianness rule also covers the telemetry package,
    whose flight-recorder files are merged across machines."""

    def test_fires_inside_telemetry_package(self):
        bad = (
            "import numpy as np\n"
            "def read(blob):\n"
            '    return np.frombuffer(blob, dtype="u4")\n'
        )
        assert ids_for(bad, "telemetry/recorder.py",
                       ["wire-endianness"]) == ["wire-endianness"]

    def test_repo_telemetry_modules_are_clean(self):
        import glob
        import os

        src_root = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro"
        )
        paths = sorted(glob.glob(os.path.join(src_root, "telemetry", "*.py")))
        assert paths, "telemetry package not found"
        for path in paths:
            relpath = "telemetry/" + os.path.basename(path)
            with open(path) as f:
                text = f.read()
            assert ids_for(text, relpath,
                           ["wire-endianness", "wire-format"]) == [], relpath


class TestTelemetryDiscipline:
    HOT = "runtime/transport.py"

    def test_fires_on_print_in_hot_path(self):
        bad = (
            "def send(frame):\n"
            '    print("sending", len(frame))\n'
        )
        findings = lint_source(bad, relpath=self.HOT,
                               select=["telemetry-discipline"])
        assert [f.rule_id for f in findings] == ["telemetry-discipline"]
        assert "print()" in findings[0].message

    def test_fires_on_logging_import_in_hot_path(self):
        for bad in ("import logging\n", "from logging import getLogger\n",
                    "import logging.handlers\n"):
            assert ids_for(bad, self.HOT, ["telemetry-discipline"]) == [
                "telemetry-discipline"
            ], bad

    def test_print_and_logging_allowed_outside_hot_paths(self):
        ok = (
            "import logging\n"
            "def report(rows):\n"
            "    print(rows)\n"
        )
        for relpath in ("cli.py", "bench/tables.py", "lint/framework.py"):
            assert ids_for(ok, relpath, ["telemetry-discipline"]) == []

    def test_fires_on_span_not_used_as_context_manager(self):
        bad = (
            "from .. import telemetry\n"
            "def step():\n"
            '    span = telemetry.span("worker.step")\n'
            "    work()\n"
        )
        findings = lint_source(bad, relpath=self.HOT,
                               select=["telemetry-discipline"])
        assert [f.rule_id for f in findings] == ["telemetry-discipline"]
        assert "context" in findings[0].message or "with" in findings[0].message

    def test_bare_span_flagged_everywhere_not_just_hot_paths(self):
        bad = (
            "from repro import telemetry\n"
            "def probe():\n"
            '    telemetry.span("x")\n'
        )
        assert ids_for(bad, "bench/runner.py",
                       ["telemetry-discipline"]) == ["telemetry-discipline"]

    def test_span_as_with_item_clean(self):
        good = (
            "from .. import telemetry\n"
            "def step():\n"
            '    with telemetry.span("worker.step"):\n'
            "        work()\n"
            '    with telemetry.context(phase="x"), telemetry.span("a"):\n'
            "        more()\n"
        )
        assert ids_for(good, self.HOT, ["telemetry-discipline"]) == []

    def test_direct_span_import_spelling_matched(self):
        bad = (
            "from repro.telemetry import span\n"
            "def step():\n"
            '    span("worker.step")\n'
        )
        assert ids_for(bad, self.HOT, ["telemetry-discipline"]) == [
            "telemetry-discipline"
        ]

    def test_repo_hot_paths_are_clean(self):
        import os

        from repro.lint.framework import iter_python_files
        from repro.lint.policy import HOT_PATH_PREFIXES

        src_root = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro"
        )
        checked = 0
        for prefix in HOT_PATH_PREFIXES:
            package = os.path.join(src_root, prefix.rstrip("/"))
            for path in iter_python_files([package]):
                relpath = prefix + os.path.basename(path)
                with open(path) as f:
                    text = f.read()
                assert ids_for(text, relpath,
                               ["telemetry-discipline"]) == [], relpath
                checked += 1
        assert checked >= 10


class TestAsyncDiscipline:
    """Reactor modules may only wait in selector.select."""

    AIO = "runtime/aio.py"

    def test_fires_on_time_sleep(self):
        bad = (
            "import time\n"
            "def pump():\n"
            "    time.sleep(0.5)\n"
        )
        findings = lint_source(bad, relpath=self.AIO,
                               select=["async-discipline"])
        assert [f.rule_id for f in findings] == ["async-discipline"]
        assert findings[0].line == 3

    def test_fires_on_blocking_socket_methods(self):
        bad = (
            "def pump(sock):\n"
            "    sock.settimeout(5.0)\n"
            "    data = sock.recv(4096)\n"
            "    sock.sendall(data)\n"
        )
        findings = lint_source(bad, relpath=self.AIO,
                               select=["async-discipline"])
        assert len(findings) == 3
        assert sorted(f.line for f in findings) == [2, 3, 4]

    def test_fires_on_queue_import_and_blocking_connect(self):
        bad = (
            "import queue\n"
            "import socket\n"
            "def dial(addr):\n"
            "    return socket.create_connection(addr)\n"
        )
        assert ids_for(bad, self.AIO, ["async-discipline"]) == [
            "async-discipline"
        ]

    def test_clean_on_nonblocking_reactor_idiom(self):
        good = (
            "import selectors\n"
            "def pump(sel, conn, view):\n"
            "    events = sel.select(0.1)\n"
            "    try:\n"
            "        n = conn.sock.recv_into(view)\n"
            "    except BlockingIOError:\n"
            "        return\n"
            "    conn.sock.sendmsg([view[:n]])\n"
            "    conn.sock.setblocking(False)\n"
        )
        assert ids_for(good, self.AIO, ["async-discipline"]) == []

    def test_out_of_scope_modules_may_block(self):
        bad = "import time\ndef f():\n    time.sleep(1)\n"
        assert ids_for(bad, "runtime/transport.py",
                       ["async-discipline"]) == []

    def test_noqa_with_reason_suppresses(self):
        src = (
            "import time\n"
            "def pump():\n"
            "    time.sleep(0.5)"
            "  # repro: noqa[async-discipline] — startup settle\n"
        )
        assert ids_for(src, self.AIO, ["async-discipline"]) == []

    def test_real_aio_module_is_clean(self):
        import pathlib

        import repro.runtime.aio as aio_mod

        text = pathlib.Path(aio_mod.__file__).read_text()
        assert ids_for(text, self.AIO, ["async-discipline"]) == []


class TestRuleInventory:
    def test_at_least_eight_rules_registered(self):
        ids = all_rule_ids()
        assert len([r for r in ids if r != "noqa-justification"]) >= 8
        for required in [
            "kernel-parity", "rng-discipline", "dtype-discipline",
            "hot-loop", "wire-format", "bare-except", "mutable-default",
            "missing-all", "noqa-justification",
            "wire-endianness", "telemetry-discipline",
            "async-discipline",
        ]:
            assert required in ids
