"""Tests for the error-feedback wrapper and the Local SGD trainer."""

import numpy as np
import pytest

from repro.compression import (
    ErrorFeedbackCompressor,
    IdentityCompressor,
    ZipMLCompressor,
)
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.distributed import (
    LocalSGDConfig,
    LocalSGDTrainer,
    cluster1_like,
)
from repro.models import LogisticRegression
from repro.optim import make_optimizer


def make_gradient(nnz=1_000, dimension=20_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-6
    return keys, values, dimension


class TestErrorFeedback:
    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorFeedbackCompressor(IdentityCompressor(), decay=0.0)
        with pytest.raises(ValueError):
            ErrorFeedbackCompressor(IdentityCompressor(), decay=1.5)

    def test_exact_inner_leaves_no_residual(self):
        keys, values, dim = make_gradient(seed=1)
        ef = ErrorFeedbackCompressor(IdentityCompressor())
        ef.roundtrip(keys, values, dim)
        assert ef.residual_l2 == 0.0

    def test_lossy_inner_accumulates_residual(self):
        keys, values, dim = make_gradient(seed=2)
        ef = ErrorFeedbackCompressor(
            SketchMLCompressor(SketchMLConfig.full(num_buckets=8))
        )
        ef.roundtrip(keys, values, dim)
        assert ef.residual_l2 > 0.0
        ef.reset()
        assert ef.residual_l2 == 0.0

    def test_cumulative_decoded_mass_tracks_truth(self):
        """The EF guarantee: sum of decoded gradients approaches the sum
        of intended gradients (bias does not accumulate)."""
        dim = 5_000
        rng = np.random.default_rng(3)
        keys = np.sort(rng.choice(dim, size=400, replace=False))
        target = rng.laplace(scale=0.01, size=400)
        target[target == 0.0] = 1e-6

        def cumulative_error(compressor, rounds=30):
            total = np.zeros(dim)
            for _ in range(rounds):
                out_keys, out_values = compressor.decompress(
                    compressor.compress(keys, target, dim)
                )
                np.add.at(total, out_keys, out_values)
            intended = np.zeros(dim)
            np.add.at(intended, keys, rounds * target)
            return float(np.linalg.norm(total - intended))

        lossy_cfg = SketchMLConfig.full(num_buckets=8)
        plain_err = cumulative_error(SketchMLCompressor(lossy_cfg))
        ef_err = cumulative_error(
            ErrorFeedbackCompressor(SketchMLCompressor(lossy_cfg))
        )
        assert ef_err < plain_err / 3

    def test_wraps_zipml_too(self):
        keys, values, dim = make_gradient(seed=4)
        ef = ErrorFeedbackCompressor(ZipMLCompressor(bits=8))
        out_keys, out_values, msg = ef.roundtrip(keys, values, dim)
        assert msg.num_bytes > 0
        assert out_keys.size >= keys.size  # residual keys may join later
        # Second round carries residuals: keys may grow.
        ef.roundtrip(keys, values, dim)

    def test_decay_dampens_residual(self):
        keys, values, dim = make_gradient(seed=5)
        full = ErrorFeedbackCompressor(
            SketchMLCompressor(SketchMLConfig.full(num_buckets=8)), decay=1.0
        )
        damped = ErrorFeedbackCompressor(
            SketchMLCompressor(SketchMLConfig.full(num_buckets=8)), decay=0.5
        )
        for _ in range(5):
            full.compress(keys, values, dim)
            damped.compress(keys, values, dim)
        assert damped.residual_l2 <= full.residual_l2 * 1.5


class TestLocalSGD:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LocalSGDConfig(sync_interval=0)
        with pytest.raises(ValueError):
            LocalSGDConfig(num_workers=0)

    def make_trainer(self, train, sync_interval=4, factory=IdentityCompressor,
                     epochs=3):
        return LocalSGDTrainer.with_adam(
            model=LogisticRegression(train.num_features, reg_lambda=0.01),
            learning_rate=0.01,
            compressor_factory=factory,
            network=cluster1_like(),
            config=LocalSGDConfig(
                num_workers=4, sync_interval=sync_interval, epochs=epochs,
                seed=0,
            ),
        )

    def test_trains_and_records(self, tiny_split):
        train, test = tiny_split
        trainer = self.make_trainer(train)
        history = trainer.train(train, test)
        assert history.num_epochs == 3
        assert history.test_losses[-1] < history.test_losses[0]
        assert all(e.num_messages > 0 for e in history.epochs)
        assert trainer.theta.shape == (train.num_features,)

    def test_larger_sync_interval_fewer_messages(self, tiny_split):
        train, test = tiny_split
        frequent = self.make_trainer(train, sync_interval=1).train(train, test)
        rare = self.make_trainer(train, sync_interval=5).train(train, test)
        assert rare.epochs[0].num_messages < frequent.epochs[0].num_messages
        assert rare.total_bytes_sent < frequent.total_bytes_sent

    def test_composes_with_sketchml(self, tiny_split):
        train, test = tiny_split
        history = self.make_trainer(
            train, factory=SketchMLCompressor
        ).train(train, test)
        assert history.avg_compression_rate > 1.5
        assert history.test_losses[-1] < np.log(2.0)

    def test_sync_interval_one_matches_frequent_behaviour(self, tiny_split):
        """H=1 is averaging after every batch — must still converge."""
        train, test = tiny_split
        history = self.make_trainer(train, sync_interval=1).train(train, test)
        assert history.test_losses[-1] < history.test_losses[0]

    def test_theta_before_train_raises(self, tiny_split):
        train, _ = tiny_split
        with pytest.raises(RuntimeError):
            _ = self.make_trainer(train).theta

    def test_custom_optimizer_factory(self, tiny_split):
        train, test = tiny_split
        trainer = LocalSGDTrainer(
            model=LogisticRegression(train.num_features),
            optimizer_factory=lambda: make_optimizer("sgd", learning_rate=0.5),
            compressor_factory=IdentityCompressor,
            network=cluster1_like(),
            config=LocalSGDConfig(num_workers=2, sync_interval=3, epochs=2),
        )
        history = trainer.train(train, test)
        assert history.test_losses[-1] <= history.test_losses[0]
