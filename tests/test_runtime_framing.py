"""Frame codec unit tests: pack/unpack roundtrips and rejection paths."""

import pytest

from repro.runtime.framing import (
    FRAME_MAGIC,
    HEADER_SIZE,
    KIND_ACK,
    KIND_GRAD,
    KIND_NAMES,
    KIND_STEP,
    FrameError,
    pack_ack,
    pack_frame,
    pack_grad_header,
    pack_step,
    pack_update_header,
    unpack_ack,
    unpack_frame,
    unpack_grad,
    unpack_header,
    unpack_step,
    unpack_update,
)


class TestFrameRoundtrip:
    def test_roundtrip_all_kinds(self):
        for kind in KIND_NAMES:
            frame = pack_frame(kind, 7, b"payload")
            got_kind, sender, payload = unpack_frame(frame)
            assert (got_kind, sender, payload) == (kind, 7, b"payload")

    def test_empty_payload(self):
        frame = pack_frame(KIND_ACK, 0)
        kind, sender, payload = unpack_frame(frame)
        assert (kind, sender, payload) == (KIND_ACK, 0, b"")
        assert len(frame) == HEADER_SIZE

    def test_header_is_little_endian_and_magic_first(self):
        frame = pack_frame(KIND_STEP, 0x0102, b"x")
        assert frame[:4] == FRAME_MAGIC
        # sender u16 little-endian: low byte first
        assert frame[6:8] == bytes([0x02, 0x01])

    def test_unknown_kind_rejected_on_pack_and_unpack(self):
        with pytest.raises(FrameError):
            pack_frame(0, 0, b"")
        bad = bytearray(pack_frame(KIND_ACK, 0, b""))
        bad[5] = 250  # kind byte
        with pytest.raises(FrameError, match="unknown frame kind"):
            unpack_header(bytes(bad))

    def test_bad_magic_rejected(self):
        frame = bytearray(pack_frame(KIND_ACK, 0, b""))
        frame[0] = ord("X")
        with pytest.raises(FrameError, match="magic"):
            unpack_frame(bytes(frame))

    def test_short_header_rejected(self):
        with pytest.raises(FrameError, match="short"):
            unpack_header(b"SKRT")

    def test_length_mismatch_rejected(self):
        frame = pack_frame(KIND_ACK, 0, b"abc")
        with pytest.raises(FrameError, match="length mismatch"):
            unpack_frame(frame + b"extra")
        with pytest.raises(FrameError, match="length mismatch"):
            unpack_frame(frame[:-1])

    def test_corrupt_length_field_rejected_not_allocated(self):
        frame = bytearray(pack_frame(KIND_ACK, 0, b""))
        frame[8:16] = (1 << 62).to_bytes(8, "little")
        with pytest.raises(FrameError, match="exceeds limit"):
            unpack_header(bytes(frame))


class TestTypedPayloads:
    def test_step_roundtrip(self):
        assert unpack_step(pack_step(41, 0.125)) == (41, 0.125)
        with pytest.raises(FrameError):
            unpack_step(b"\x00")

    def test_grad_roundtrip_with_message_bytes(self):
        body = pack_grad_header(9, True, 0.5, 0.01, 0.002, 1234) + b"WIRE"
        rid, has_batch, loss, comp, enc, nnz, data = unpack_grad(body)
        assert (rid, has_batch, nnz, data) == (9, True, 1234, b"WIRE")
        assert (loss, comp, enc) == (0.5, 0.01, 0.002)
        with pytest.raises(FrameError, match="short GRAD"):
            unpack_grad(b"tiny")

    def test_update_roundtrip(self):
        body = pack_update_header(3, 0.01) + b"AGG"
        assert unpack_update(body) == (3, 0.01, b"AGG")
        with pytest.raises(FrameError, match="short UPDATE"):
            unpack_update(b"")

    def test_ack_roundtrip(self):
        assert unpack_ack(pack_ack(77)) == 77
        with pytest.raises(FrameError):
            unpack_ack(b"\x01\x02")
