"""Tests for LR, SVM, Linear Regression, and the MLP."""

import numpy as np
import pytest

from repro.data import SparseDataset, mnist_like
from repro.models import (
    DenseDataset,
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    make_model,
)


def toy_dataset(seed=0, rows=200, features=50):
    """Linearly separable-ish sparse classification data."""
    rng = np.random.default_rng(seed)
    true_theta = rng.normal(size=features)
    row_list = []
    labels = []
    for _ in range(rows):
        nnz = rng.integers(3, 10)
        cols = np.sort(rng.choice(features, size=nnz, replace=False))
        vals = rng.normal(size=nnz)
        score = float(np.dot(vals, true_theta[cols]))
        labels.append(1.0 if score >= 0 else -1.0)
        row_list.append((cols, vals))
    return SparseDataset.from_rows(row_list, np.asarray(labels), features)


def numeric_gradient(model, ds, rows, theta, keys, eps=1e-6):
    """Central-difference gradient on the given keys."""
    grad = np.zeros(keys.size)
    for i, k in enumerate(keys):
        theta_p = theta.copy()
        theta_p[k] += eps
        theta_m = theta.copy()
        theta_m[k] -= eps
        grad[i] = (model.loss(ds, rows, theta_p) - model.loss(ds, rows, theta_m)) / (
            2 * eps
        )
    return grad


class TestFactory:
    def test_make_model(self):
        assert isinstance(make_model("lr", 10), LogisticRegression)
        assert isinstance(make_model("svm", 10), LinearSVM)
        assert isinstance(make_model("linear", 10), LinearRegression)

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            make_model("xgboost", 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(0)
        with pytest.raises(ValueError):
            LogisticRegression(10, reg_lambda=-1)


@pytest.mark.parametrize("model_cls", [LogisticRegression, LinearRegression])
class TestGradientCorrectness:
    """Analytic gradient must match finite differences (smooth losses)."""

    def test_matches_numeric(self, model_cls):
        ds = toy_dataset(seed=1)
        model = model_cls(ds.num_features, reg_lambda=0.01)
        rng = np.random.default_rng(2)
        theta = rng.normal(scale=0.1, size=ds.num_features)
        rows = np.arange(20)
        keys, values, _ = model.batch_gradient(ds, rows, theta)
        sample = keys[:: max(1, keys.size // 10)]
        numeric = numeric_gradient(model, ds, rows, theta, sample)
        analytic = values[np.isin(keys, sample)]
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)


class TestLogisticRegression:
    def test_loss_at_zero_is_log2(self):
        ds = toy_dataset(seed=3)
        model = LogisticRegression(ds.num_features, reg_lambda=0.0)
        theta = model.init_theta()
        assert model.full_loss(ds, theta) == pytest.approx(np.log(2.0))

    def test_training_reduces_loss_and_improves_accuracy(self):
        ds = toy_dataset(seed=4)
        model = LogisticRegression(ds.num_features, reg_lambda=0.0)
        theta = model.init_theta()
        rows = np.arange(ds.num_rows)
        initial_loss = model.full_loss(ds, theta)
        for _ in range(200):
            keys, values, _ = model.batch_gradient(ds, rows, theta)
            theta[keys] -= 0.5 * values
        assert model.full_loss(ds, theta) < initial_loss / 2
        assert model.accuracy(ds, rows, theta) > 0.9

    def test_predict_proba_range(self):
        ds = toy_dataset(seed=5)
        model = LogisticRegression(ds.num_features)
        probs = model.predict_proba(ds, np.arange(10), model.init_theta())
        assert np.all((probs >= 0) & (probs <= 1))

    def test_numerically_stable_at_extreme_scores(self):
        ds = toy_dataset(seed=6)
        model = LogisticRegression(ds.num_features, reg_lambda=0.0)
        theta = np.full(ds.num_features, 100.0)
        loss = model.full_loss(ds, theta)
        assert np.isfinite(loss)

    def test_reg_lambda_increases_loss(self):
        ds = toy_dataset(seed=7)
        rows = np.arange(ds.num_rows)
        theta = np.random.default_rng(0).normal(size=ds.num_features)
        plain = LogisticRegression(ds.num_features, reg_lambda=0.0)
        reg = LogisticRegression(ds.num_features, reg_lambda=0.1)
        assert reg.loss(ds, rows, theta) > plain.loss(ds, rows, theta)
        # data_loss ignores regularisation for both.
        assert reg.data_loss(ds, rows, theta) == plain.data_loss(ds, rows, theta)


class TestSVM:
    def test_hinge_subgradient_zero_when_margin_met(self):
        ds = toy_dataset(seed=8)
        model = LinearSVM(ds.num_features, reg_lambda=0.0)
        # Huge theta in the right direction: margins all satisfied.
        rows = np.arange(ds.num_rows)
        theta = np.zeros(ds.num_features)
        for _ in range(300):
            keys, values, _ = model.batch_gradient(ds, rows, theta)
            if keys.size == 0:
                break
            theta[keys] -= 0.5 * values
        final_loss = model.full_loss(ds, theta)
        assert final_loss < 0.2

    def test_loss_at_zero_is_one(self):
        ds = toy_dataset(seed=9)
        model = LinearSVM(ds.num_features, reg_lambda=0.0)
        assert model.full_loss(ds, model.init_theta()) == pytest.approx(1.0)

    def test_accuracy_improves(self):
        ds = toy_dataset(seed=10)
        model = LinearSVM(ds.num_features, reg_lambda=0.0)
        theta = model.init_theta()
        rows = np.arange(ds.num_rows)
        for _ in range(100):
            keys, values, _ = model.batch_gradient(ds, rows, theta)
            theta[keys] -= 0.2 * values
        assert model.accuracy(ds, rows, theta) > 0.85


class TestLinearRegression:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(11)
        features = 20
        true_theta = rng.normal(size=features)
        rows = []
        labels = []
        for _ in range(300):
            cols = np.arange(features)
            vals = rng.normal(size=features)
            rows.append((cols, vals))
            labels.append(float(np.dot(vals, true_theta)))
        ds = SparseDataset.from_rows(rows, np.asarray(labels), features)
        model = LinearRegression(features, reg_lambda=0.0)
        theta = model.init_theta()
        all_rows = np.arange(ds.num_rows)
        for _ in range(500):
            keys, values, _ = model.batch_gradient(ds, all_rows, theta)
            theta[keys] -= 0.05 * values
        np.testing.assert_allclose(theta, true_theta, atol=0.05)

    def test_loss_is_mse(self):
        ds = toy_dataset(seed=12)
        model = LinearRegression(ds.num_features, reg_lambda=0.0)
        theta = model.init_theta()
        scores = ds.dot_rows(np.arange(ds.num_rows), theta)
        expected = np.mean((ds.labels - scores) ** 2)
        assert model.full_loss(ds, theta) == pytest.approx(expected)


class TestBatchGradientContract:
    def test_keys_ascending_and_in_range(self):
        ds = toy_dataset(seed=13)
        model = LogisticRegression(ds.num_features)
        keys, values, _ = model.batch_gradient(
            ds, np.arange(30), model.init_theta()
        )
        assert np.all(np.diff(keys) > 0)
        assert keys.min() >= 0 and keys.max() < ds.num_features
        assert keys.shape == values.shape

    def test_empty_batch_rejected(self):
        ds = toy_dataset(seed=14)
        model = LogisticRegression(ds.num_features)
        with pytest.raises(ValueError, match="at least one row"):
            model.batch_gradient(ds, np.asarray([], dtype=np.int64), model.init_theta())


class TestMLP:
    def test_parameter_count(self):
        mlp = MLPClassifier(input_dim=4, hidden_dims=(3,), num_classes=2)
        # 4*3 + 3 + 3*2 + 2 = 23
        assert mlp.num_parameters == 23

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MLPClassifier(input_dim=0)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(15)
        features = rng.uniform(size=(8, 6))
        labels = rng.integers(0, 3, size=8)
        ds = DenseDataset(features, labels)
        mlp = MLPClassifier(input_dim=6, hidden_dims=(5,), num_classes=3, seed=0)
        theta = mlp.init_theta()
        rows = np.arange(8)
        keys, values, _ = mlp.batch_gradient(ds, rows, theta)
        grad = np.zeros(mlp.num_parameters)
        grad[keys] = values
        eps = 1e-6
        sample = np.linspace(0, mlp.num_parameters - 1, 15).astype(int)
        for k in sample:
            tp = theta.copy()
            tp[k] += eps
            tm = theta.copy()
            tm[k] -= eps
            numeric = (mlp.loss(ds, rows, tp) - mlp.loss(ds, rows, tm)) / (2 * eps)
            assert grad[k] == pytest.approx(numeric, rel=1e-3, abs=1e-7)

    def test_learns_mnist_like(self):
        images, labels = mnist_like(num_train=300, seed=2)
        ds = DenseDataset(images, labels)
        mlp = MLPClassifier(
            input_dim=400, hidden_dims=(32,), num_classes=10, seed=1
        )
        theta = mlp.init_theta()
        rng = np.random.default_rng(0)
        initial = mlp.full_loss(ds, theta)
        for _ in range(30):
            for rows in ds.iter_batches(60, rng):
                keys, values, _ = mlp.batch_gradient(ds, rows, theta)
                theta[keys] -= 0.1 * values
        assert mlp.full_loss(ds, theta) < initial / 2
        assert mlp.accuracy(ds, np.arange(ds.num_rows), theta) > 0.6

    def test_dense_dataset_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            DenseDataset(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError, match="parallel"):
            DenseDataset(np.zeros((5, 2)), np.zeros(4))

    def test_gradient_is_dense(self):
        """MLP gradients touch essentially every parameter — the regime
        where the paper notes key compression is redundant (§B.3)."""
        images, labels = mnist_like(num_train=64, seed=3)
        ds = DenseDataset(images, labels)
        mlp = MLPClassifier(input_dim=400, hidden_dims=(16,), num_classes=10)
        keys, _, _ = mlp.batch_gradient(ds, np.arange(64), mlp.init_theta())
        assert keys.size > 0.95 * mlp.num_parameters
