"""Wire-format stability tests for the vectorised codec kernels.

Two layers of protection:

* **Golden digests** — ``tests/golden/codec_golden.json`` stores the
  SHA-256 of the serialized wire bytes (and of the decoded output) for
  960 configuration/size/seed combinations, captured from the
  pre-vectorisation seed tree.  Any change to the bytes a compressor
  emits — however small — fails here, so perf work can't silently bend
  the format.
* **Scalar/vectorised equivalence** — every vectorised kernel has a
  scalar reference path behind the :mod:`repro.kernels` switch; these
  tests assert byte identity between the two on the same inputs, from
  individual hash rows all the way up to full messages.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro import kernels
from repro.core.compressor import SketchMLCompressor
from repro.core.config import SketchMLConfig
from repro.core.delta_encoding import encode_key_groups, encode_keys
from repro.core.minmax_sketch import GroupedMinMaxSketch
from repro.core.quantizer import QuantileBucketQuantizer
from repro.core.serialization import serialize_message
from repro.sketch.hashing import build_hash_family, hash_all_grouped

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "codec_golden.json")

# Keyword overrides for each golden configuration name.  These must
# stay in lockstep with the capture script that produced the golden
# file; they describe existing recorded data, not tunable knobs.
GOLDEN_CONFIGS = {
    "full": dict(),
    "full_tab": dict(hash_family="tabulation"),
    "full_decay": dict(compensate_decay=True),
    "full_g4": dict(num_groups=4, num_buckets=64),
    "quan": dict(enable_minmax=False),
    "quan_packed": dict(enable_minmax=False, pack_index_bits=True),
    "keys_only": dict(enable_quantization=False, enable_minmax=False),
    "adam": dict(
        enable_delta_keys=False, enable_quantization=False, enable_minmax=False
    ),
}


def golden_gradient(nnz, dimension, seed, sign_mode):
    """The exact generator the golden digests were captured with."""
    rng = np.random.default_rng(seed)
    if nnz == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-4
    if sign_mode == "pos":
        values = np.abs(values)
    elif sign_mode == "neg":
        values = -np.abs(values)
    return keys, values


def random_gradient(nnz, seed):
    rng = np.random.default_rng(seed)
    dimension = max(10 * nnz, 64)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-4
    return keys, values, dimension


# ---------------------------------------------------------------------------
# golden digests
# ---------------------------------------------------------------------------
class TestGoldenDigests:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as fh:
            return json.load(fh)

    def test_golden_file_is_complete(self, golden):
        assert len(golden) == 960
        seen_configs = {name.split("/")[0] for name in golden}
        assert seen_configs == set(GOLDEN_CONFIGS)

    @pytest.mark.parametrize("cfg_name", sorted(GOLDEN_CONFIGS))
    def test_wire_bytes_match_golden(self, golden, cfg_name):
        cases = {k: v for k, v in golden.items() if k.split("/")[0] == cfg_name}
        assert cases, f"no golden cases recorded for {cfg_name}"
        for name, entry in cases.items():
            _, sketch, nnz_s, sign_mode, seed_s = name.split("/")
            nnz, seed = int(nnz_s[3:]), int(seed_s[4:])
            dimension = max(10 * nnz, 64)
            cfg = SketchMLConfig(
                quantile_sketch=sketch, seed=seed, **GOLDEN_CONFIGS[cfg_name]
            )
            keys, values = golden_gradient(nnz, dimension, seed, sign_mode)
            compressor = SketchMLCompressor(cfg)
            message = compressor.compress(keys, values, dimension)
            wire = serialize_message(message)
            assert hashlib.sha256(wire).hexdigest() == entry["wire_sha256"], name
            assert len(wire) == entry["wire_bytes"], name
            assert message.num_bytes == entry["num_bytes"], name
            out_keys, out_values = compressor.decompress(message)
            decoded = hashlib.sha256(
                out_keys.tobytes() + out_values.tobytes()  # repro: noqa[wire-format] — digesting decoded arrays for golden comparison, not emitting wire bytes
            ).hexdigest()
            assert decoded == entry["decoded_sha256"], name


# ---------------------------------------------------------------------------
# scalar vs vectorised: full messages
# ---------------------------------------------------------------------------
EQUIV_CONFIGS = {
    "full": {},
    "full_tab": {"hash_family": "tabulation"},
    "full_decay": {"compensate_decay": True},
    "full_g4": {"num_groups": 4, "num_buckets": 64},
    "quan_packed": {"enable_minmax": False, "pack_index_bits": True},
}


@pytest.mark.parametrize("sketch", ["kll", "gk", "tdigest", "exact"])
@pytest.mark.parametrize("nnz", [500, 3000, 20000])
def test_scalar_and_vectorised_messages_identical(sketch, nnz):
    for cfg_name, overrides in EQUIV_CONFIGS.items():
        for seed in (0, 3):
            keys, values, dimension = random_gradient(nnz, seed + nnz)
            cfg = SketchMLConfig(quantile_sketch=sketch, seed=seed, **overrides)
            with kernels.scalar_kernels():
                scalar_wire = serialize_message(
                    SketchMLCompressor(cfg).compress(keys, values, dimension)
                )
            with kernels.vectorised_kernels():
                vector_wire = serialize_message(
                    SketchMLCompressor(cfg).compress(keys, values, dimension)
                )
            assert scalar_wire == vector_wire, (sketch, nnz, cfg_name, seed)


# ---------------------------------------------------------------------------
# scalar vs vectorised: individual kernels
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("family", ["multiply_shift", "tabulation"])
def test_hash_all_matches_per_row_loop(family):
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 1 << 32, size=4096, dtype=np.uint64)
    hashes = build_hash_family(3, 613, seed=11, family=family)
    grid = hashes.hash_all(keys)
    assert grid.shape == (3, keys.size)
    for row in range(3):
        np.testing.assert_array_equal(grid[row], hashes[row](keys))


def test_hash_all_grouped_matches_per_family_concat():
    rng = np.random.default_rng(8)
    counts = np.array([700, 0, 130, 2048], dtype=np.int64)
    keys = rng.integers(0, 1 << 32, size=int(counts.sum()), dtype=np.uint64)
    families = [
        build_hash_family(2, 509, seed=100 + g, family="multiply_shift")
        for g in range(counts.size)
    ]
    fused = hash_all_grouped(families, keys, counts)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    expected = np.concatenate(
        [
            families[g].hash_all(keys[bounds[g]:bounds[g + 1]])
            for g in range(counts.size)
        ],
        axis=1,
    )
    np.testing.assert_array_equal(fused, expected)


def test_hash_all_grouped_mixed_bin_widths():
    rng = np.random.default_rng(9)
    counts = np.array([400, 300], dtype=np.int64)
    keys = rng.integers(0, 1 << 32, size=700, dtype=np.uint64)
    families = [
        build_hash_family(2, bins, seed=5, family="multiply_shift")
        for bins in (613, 1021)
    ]
    fused = hash_all_grouped(families, keys, counts)
    expected = np.concatenate(
        [families[0].hash_all(keys[:400]), families[1].hash_all(keys[400:])],
        axis=1,
    )
    np.testing.assert_array_equal(fused, expected)


@pytest.mark.parametrize("sketch", ["kll", "gk", "tdigest", "exact"])
def test_fit_encode_matches_fit_then_encode(sketch):
    rng = np.random.default_rng(21)
    values = rng.laplace(scale=0.01, size=6000)
    values[values == 0.0] = 1e-4

    def build():
        return QuantileBucketQuantizer(num_buckets=64, sketch=sketch, seed=3)

    fused = build()
    pos_enc, neg_enc = fused.fit_encode(values)
    reference = build().fit(values)
    pos = values[values >= 0]
    neg = -values[values < 0]
    np.testing.assert_array_equal(pos_enc, reference.positive.encode(pos))
    np.testing.assert_array_equal(neg_enc, reference.negative.encode(neg))
    np.testing.assert_array_equal(
        fused.positive.splits, reference.positive.splits
    )
    np.testing.assert_array_equal(
        fused.negative.means, reference.negative.means
    )


def test_insert_flat_matches_per_group_insert():
    rng = np.random.default_rng(33)
    nnz = 8000
    keys = np.sort(rng.choice(20 * nnz, size=nnz, replace=False))
    indexes = rng.integers(0, 128, size=nnz, dtype=np.int64)

    def build():
        return GroupedMinMaxSketch(
            num_groups=8, index_range=128, num_rows=2, total_bins=2048, seed=1
        )

    batched = build()
    flat = batched.partition_flat(keys, indexes)
    batched.insert_flat(*flat)

    reference = build()
    sorted_keys, sorted_offsets, counts = flat
    bounds = np.concatenate(([0], np.cumsum(counts)))
    with kernels.scalar_kernels():
        for g in range(counts.size):
            if counts[g]:
                reference.insert_group(
                    g,
                    sorted_keys[bounds[g]:bounds[g + 1]],
                    sorted_offsets[bounds[g]:bounds[g + 1]],
                )
    for got, want in zip(batched.sketches, reference.sketches):
        np.testing.assert_array_equal(got._table, want._table)


def test_encode_key_groups_matches_per_group_encode_keys():
    rng = np.random.default_rng(44)
    groups = []
    for size in (0, 1, 37, 4000):
        chunk = np.sort(rng.choice(1 << 22, size=size, replace=False))
        groups.append(chunk.astype(np.int64))
    blobs = encode_key_groups(groups)
    assert blobs == [encode_keys(g) for g in groups]
