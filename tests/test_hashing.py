"""Tests for the seeded hash families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.hashing import (
    MultiplyShiftHash,
    TabulationHash,
    build_hash_family,
)

FAMILIES = [MultiplyShiftHash, TabulationHash]


@pytest.mark.parametrize("cls", FAMILIES)
class TestHashFunctionContract:
    def test_range(self, cls):
        h = cls(num_bins=97, seed=3)
        keys = np.arange(10_000, dtype=np.int64)
        bins = h(keys)
        assert bins.min() >= 0
        assert bins.max() < 97

    def test_deterministic_across_instances(self, cls):
        keys = np.arange(1_000, dtype=np.int64)
        a = cls(num_bins=128, seed=42)(keys)
        b = cls(num_bins=128, seed=42)(keys)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, cls):
        keys = np.arange(1_000, dtype=np.int64)
        a = cls(num_bins=1024, seed=1)(keys)
        b = cls(num_bins=1024, seed=2)(keys)
        assert not np.array_equal(a, b)

    def test_hash_one_matches_vectorised(self, cls):
        h = cls(num_bins=64, seed=9)
        keys = np.asarray([0, 1, 17, 2**31 - 1], dtype=np.int64)
        vectorised = h(keys)
        for key, expected in zip(keys, vectorised):
            assert h.hash_one(int(key)) == expected

    def test_rejects_oversized_keys(self, cls):
        h = cls(num_bins=64, seed=0)
        with pytest.raises(ValueError):
            h(np.asarray([1 << 33], dtype=np.int64))

    def test_distribution_roughly_uniform(self, cls):
        num_bins = 64
        h = cls(num_bins=num_bins, seed=11)
        keys = np.arange(64_000, dtype=np.int64)
        counts = np.bincount(h(keys), minlength=num_bins)
        expected = keys.size / num_bins
        # Chi-square-ish sanity bound: no bin further than 30% from mean.
        assert np.all(np.abs(counts - expected) < 0.3 * expected)


class TestBuildHashFamily:
    def test_rows_are_independent_functions(self):
        family = build_hash_family(4, 256, seed=5)
        keys = np.arange(2_000, dtype=np.int64)
        outputs = [h(keys) for h in family]
        for i in range(len(outputs)):
            for j in range(i + 1, len(outputs)):
                assert not np.array_equal(outputs[i], outputs[j])

    def test_same_seed_same_family(self):
        keys = np.arange(500, dtype=np.int64)
        fam_a = build_hash_family(3, 128, seed=7)
        fam_b = build_hash_family(3, 128, seed=7)
        for ha, hb in zip(fam_a, fam_b):
            np.testing.assert_array_equal(ha(keys), hb(keys))

    def test_tabulation_family(self):
        family = build_hash_family(2, 64, seed=1, family="tabulation")
        assert all(isinstance(h, TabulationHash) for h in family)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown hash family"):
            build_hash_family(2, 64, seed=1, family="sha256")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            build_hash_family(0, 64, seed=1)
        with pytest.raises(ValueError):
            MultiplyShiftHash(num_bins=0, seed=1)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_bins=st.integers(min_value=1, max_value=10_000),
    key=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_multiply_shift_always_in_range(seed, num_bins, key):
    h = MultiplyShiftHash(num_bins=num_bins, seed=seed)
    assert 0 <= h.hash_one(key) < num_bins


def test_pairwise_collision_probability():
    """Collision rate of random pairs should be close to 1/num_bins."""
    num_bins = 128
    h = MultiplyShiftHash(num_bins=num_bins, seed=77)
    rng = np.random.default_rng(0)
    a = rng.integers(0, 2**32, size=20_000, dtype=np.int64)
    b = rng.integers(0, 2**32, size=20_000, dtype=np.int64)
    distinct = a != b
    collisions = (h(a) == h(b)) & distinct
    rate = collisions.sum() / distinct.sum()
    assert rate == pytest.approx(1.0 / num_bins, rel=0.5)
