"""Tests for synthetic dataset generation, LIBSVM I/O, and splits."""

import numpy as np
import pytest

from repro.data import (
    CTR_LIKE,
    KDD12_LIKE,
    SyntheticProfile,
    ctr_like,
    generate_dataset,
    generate_profile,
    kdd12_like,
    mnist_like,
    partition_rows,
    read_libsvm,
    train_test_split,
    write_libsvm,
)


class TestSyntheticGeneration:
    def test_deterministic(self):
        a = generate_profile("kdd10", seed=3, scale=0.05)
        b = generate_profile("kdd10", seed=3, scale=0.05)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seeds_differ(self):
        a = generate_profile("kdd10", seed=1, scale=0.05)
        b = generate_profile("kdd10", seed=2, scale=0.05)
        assert not np.array_equal(a.indices, b.indices)

    def test_scale_controls_rows(self):
        small = generate_profile("ctr", seed=0, scale=0.02)
        assert small.num_rows == pytest.approx(CTR_LIKE.num_rows * 0.02, abs=1)

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profile"):
            generate_profile("criteo")

    def test_rows_are_normalised(self):
        ds = generate_profile("kdd10", seed=0, scale=0.02)
        for i in range(min(ds.num_rows, 20)):
            norm = np.linalg.norm(ds.row(i).values)
            assert norm == pytest.approx(1.0, abs=1e-9)

    def test_classification_labels(self):
        ds = kdd12_like(seed=0, scale=0.02)
        assert set(np.unique(ds.labels)) <= {-1.0, 1.0}
        # Not degenerate: both classes occur.
        assert len(np.unique(ds.labels)) == 2

    def test_regression_profile(self):
        profile = SyntheticProfile(
            name="reg", num_rows=100, num_features=500,
            avg_nnz_per_row=5, task="regression",
        )
        ds = generate_dataset(profile, seed=0)
        assert np.issubdtype(ds.labels.dtype, np.floating)
        assert len(np.unique(ds.labels)) > 10

    def test_unknown_task(self):
        profile = SyntheticProfile(
            name="x", num_rows=10, num_features=50,
            avg_nnz_per_row=3, task="ranking",
        )
        with pytest.raises(ValueError, match="unknown task"):
            generate_dataset(profile)

    def test_relative_density_matches_paper(self):
        """§4.3.2 relies on KDD12 being sparser than CTR."""
        kdd12 = KDD12_LIKE
        ctr = CTR_LIKE
        kdd12_density = kdd12.avg_nnz_per_row / kdd12.num_features
        ctr_density = ctr.avg_nnz_per_row / ctr.num_features
        assert kdd12_density < ctr_density

    def test_feature_popularity_is_skewed(self):
        """Power-law features: the head must be much hotter than the tail."""
        ds = ctr_like(seed=0, scale=0.1)
        counts = np.bincount(ds.indices, minlength=ds.num_features)
        head = counts[:100].sum()
        assert head > 0.2 * ds.nnz

    def test_gradient_values_nonuniform(self):
        """Figure 4's premise: first-gradient values pile up near zero."""
        from repro.models import LogisticRegression

        ds = kdd12_like(seed=0, scale=0.05)
        model = LogisticRegression(ds.num_features, reg_lambda=0.0)
        keys, values, _ = model.batch_gradient(
            ds, np.arange(ds.num_rows), model.init_theta()
        )
        magnitudes = np.abs(values)
        near_zero = (magnitudes < 0.1 * magnitudes.max()).mean()
        assert near_zero > 0.7  # most values in the bottom decade


class TestMnistLike:
    def test_shapes(self):
        images, labels = mnist_like(num_train=200, seed=0)
        assert images.shape == (200, 400)
        assert labels.shape == (200,)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert set(np.unique(labels)) <= set(range(10))

    def test_deterministic(self):
        a_img, a_lab = mnist_like(num_train=50, seed=4)
        b_img, b_lab = mnist_like(num_train=50, seed=4)
        np.testing.assert_array_equal(a_img, b_img)
        np.testing.assert_array_equal(a_lab, b_lab)

    def test_classes_separable(self):
        """A nearest-template classifier must beat chance by a margin."""
        images, labels = mnist_like(num_train=500, seed=1)
        centroids = np.stack(
            [images[labels == c].mean(axis=0) for c in range(10)]
        )
        distances = ((images[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == labels).mean()
        assert accuracy > 0.5


class TestLibsvmIO:
    def test_roundtrip(self, tmp_path):
        ds = generate_profile("kdd10", seed=5, scale=0.01)
        path = tmp_path / "data.libsvm"
        write_libsvm(ds, path)
        loaded = read_libsvm(path, num_features=ds.num_features)
        assert loaded.num_rows == ds.num_rows
        np.testing.assert_array_equal(loaded.indices, ds.indices)
        np.testing.assert_allclose(loaded.data, ds.data)
        np.testing.assert_allclose(loaded.labels, ds.labels)

    def test_zero_based_roundtrip(self, tmp_path):
        ds = generate_profile("kdd10", seed=6, scale=0.01)
        path = tmp_path / "data0.libsvm"
        write_libsvm(ds, path, zero_based=True)
        loaded = read_libsvm(path, num_features=ds.num_features, zero_based=True)
        np.testing.assert_array_equal(loaded.indices, ds.indices)

    def test_infers_num_features(self, tmp_path):
        path = tmp_path / "tiny.libsvm"
        path.write_text("1 1:0.5 7:0.25\n-1 3:1.0\n")
        ds = read_libsvm(path)
        assert ds.num_features == 7  # 1-based index 7 -> column 6
        assert ds.num_rows == 2

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "comments.libsvm"
        path.write_text("# header\n\n1 1:2.0 # trailing\n")
        ds = read_libsvm(path)
        assert ds.num_rows == 1
        assert ds.labels[0] == 1.0

    def test_malformed_label(self, tmp_path):
        path = tmp_path / "bad.libsvm"
        path.write_text("abc 1:1.0\n")
        with pytest.raises(ValueError, match="label"):
            read_libsvm(path)

    def test_malformed_feature(self, tmp_path):
        path = tmp_path / "bad2.libsvm"
        path.write_text("1 1:x\n")
        with pytest.raises(ValueError, match="malformed feature"):
            read_libsvm(path)

    def test_duplicate_feature(self, tmp_path):
        path = tmp_path / "dup.libsvm"
        path.write_text("1 2:1.0 2:2.0\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_libsvm(path)

    def test_index_exceeds_declared_dim(self, tmp_path):
        path = tmp_path / "oob.libsvm"
        path.write_text("1 50:1.0\n")
        with pytest.raises(ValueError, match="num_features"):
            read_libsvm(path, num_features=10)


class TestSplits:
    def test_train_test_disjoint_and_complete(self):
        ds = generate_profile("kdd10", seed=7, scale=0.02)
        train, test = train_test_split(ds, test_fraction=0.25, seed=0)
        assert train.num_rows + test.num_rows == ds.num_rows
        assert test.num_rows == pytest.approx(0.25 * ds.num_rows, abs=1)

    def test_split_validation(self):
        ds = generate_profile("kdd10", seed=8, scale=0.02)
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=1.0)

    def test_partition_rows_balanced(self):
        parts = partition_rows(100, 7, seed=0)
        sizes = [p.size for p in parts]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1
        all_rows = np.concatenate(parts)
        assert sorted(all_rows.tolist()) == list(range(100))

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            partition_rows(5, 10)
        with pytest.raises(ValueError):
            partition_rows(5, 0)
