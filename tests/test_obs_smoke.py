"""Live ops plane end-to-end: the PR-10 acceptance tier.

One module-scoped traced ``mp`` run with the metrics hub + HTTP
exporter live feeds most of the assertions:

* **exporter/trace parity** — every counter total served by the
  exporter equals the sum of that counter's trace events, bit-exactly,
  in both directions (heartbeat-carried metrics are wire-only by
  design and excluded);
* **span causality across the wire** — worker spans recorded in the
  worker *process* parent under the driver's round span, including
  when the UPDATE streams as chunks;
* **v1 peers are unaffected** — a worker pinned at ``V1_CAPS``
  negotiates the ops plane off and trains bit-identically;
* **critical-path attribution** — ≥99% of every round's wall time on
  the committed 8-worker fleet trace lands in the four real buckets,
  and the causal DAG matches the committed pin;
* **surfaces** — ``repro top --once``, ``repro trace
  --critical-path``, ``--validate`` on a truncated flight.
"""

import json
import os
import urllib.request

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main as repro_main
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.data import kdd10_like, train_test_split
from repro.distributed import DistributedTrainer, TrainerConfig
from repro.distributed.network import infinite_bandwidth
from repro.models import make_model
from repro.optim import SGD
from repro.runtime import RuntimeConfig, SupervisionConfig
from repro.runtime.framing import V1_CAPS
from repro.telemetry import recorder as recorder_module
from repro.telemetry.critical_path import (
    causal_edges,
    critical_path,
    render_report,
)
from repro.telemetry.export import MetricsExporter, render_prometheus
from repro.telemetry.merge import read_trace
from repro.telemetry.metrics import (
    DRIVER_KEY,
    MetricsHub,
    SpoolHub,
    WorkerMetrics,
)
from repro.telemetry.top import render_top, snapshot_from_trace

SEED = 7
NUM_WORKERS = 2
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "trace")
GOLDEN_TRACE = os.path.join(GOLDEN_DIR, "fleet_8w.jsonl")
GOLDEN_DAG = os.path.join(GOLDEN_DIR, "fleet_8w_dag.json")
TRUNCATED = os.path.join(GOLDEN_DIR, "truncated_flight.jsonl")

#: Heartbeat-carried metrics never become trace events (wire-only,
#: best-effort) — excluded from the parity sweep by design.
WIRE_ONLY = ("worker.heartbeats", "worker.heartbeat_lag_ns")


@pytest.fixture(autouse=True)
def clean_telemetry_state():
    assert telemetry.get_recorder() is None
    assert telemetry.metrics_hub() is None
    yield
    if telemetry.active_session() is not None:
        telemetry.finish_run()
    leftover = telemetry.set_recorder(None)
    if leftover is not None:
        leftover.close()
    telemetry.set_metrics_hub(None)
    recorder_module._CONTEXT.clear()


def run_ops(backend, out_path, *, hub=None, runtime=None, epochs=1):
    """One fixed-seed training run with the full ops plane live."""
    split = train_test_split(kdd10_like(seed=SEED, scale=0.02), seed=SEED)
    train, _ = split
    trainer = DistributedTrainer(
        model=make_model("lr", train.num_features),
        optimizer=SGD(learning_rate=0.1),
        compressor_factory=lambda: SketchMLCompressor(
            SketchMLConfig.full(seed=SEED)
        ),
        network=infinite_bandwidth(),
        config=TrainerConfig(
            num_workers=NUM_WORKERS,
            batch_fraction=0.25,
            epochs=epochs,
            seed=SEED,
            backend=backend,
        ),
        runtime=runtime,
    )
    if hub is not None:
        telemetry.set_metrics_hub(hub)
    if out_path:
        telemetry.start_run(out_path, run_id=f"obs-{backend}")
    try:
        trainer.train(*split)
    finally:
        if out_path and telemetry.active_session() is not None:
            telemetry.finish_run()
        telemetry.set_metrics_hub(None)
    return trainer.theta, (read_trace(out_path) if out_path else None)


def clean_runtime(backend, **kwargs):
    """Heartbeats off: every metric delta rides a reply, in-round, so
    delivery — and therefore exporter/trace parity — is exact."""
    return RuntimeConfig(
        backend=backend,
        supervision=SupervisionConfig(
            seed=SEED, heartbeat_interval=0.0
        ),
        **kwargs,
    )


def trace_counter_sums(events):
    sums = {}
    for event in events:
        if event.get("type") != "counter":
            continue
        attrs = event.get("attrs") or {}
        worker = attrs.get("worker", event.get("worker"))
        key = DRIVER_KEY if worker is None else int(worker)
        per = sums.setdefault(key, {})
        per[event["name"]] = per.get(event["name"], 0) + int(event["value"])
    return sums


@pytest.fixture(scope="module")
def obs_run(tmp_path_factory):
    """The smoke run: traced seeded mp training with hub + exporter."""
    path = str(tmp_path_factory.mktemp("obs") / "mp.jsonl")
    hub = MetricsHub()
    exporter = MetricsExporter(hub, port=0).start()
    try:
        theta, events = run_ops(
            "mp", path, hub=hub, runtime=clean_runtime("mp")
        )
        with urllib.request.urlopen(
            f"{exporter.url}/snapshot.json", timeout=5
        ) as resp:
            snapshot = json.loads(resp.read())
        with urllib.request.urlopen(
            f"{exporter.url}/metrics", timeout=5
        ) as resp:
            prom = resp.read().decode()
        with urllib.request.urlopen(
            f"{exporter.url}/readyz", timeout=5
        ) as resp:
            ready_status = resp.status
    finally:
        exporter.close()
    return {
        "theta": theta,
        "events": events,
        "hub": hub,
        "snapshot": snapshot,
        "prom": prom,
        "ready_status": ready_status,
    }


class TestExporterTraceParity:
    def test_counter_totals_match_trace_sums_bit_exactly(self, obs_run):
        trace_sums = trace_counter_sums(obs_run["events"])
        hub_counters = {
            int(worker): dict(per)
            for worker, per in obs_run["snapshot"]["counters"].items()
        }
        for worker, per in trace_sums.items():
            for name, total in per.items():
                assert hub_counters.get(worker, {}).get(name) == total, (
                    f"hub lost or distorted {name} for worker {worker}"
                )
        for worker, per in hub_counters.items():
            for name, total in per.items():
                if name in WIRE_ONLY:
                    continue
                assert trace_sums.get(worker, {}).get(name) == total, (
                    f"hub invented {name} for worker {worker}"
                )

    def test_worker_codec_counters_crossed_the_wire(self, obs_run):
        # Not just the runtime's own worker.* counters: the codec's
        # instrumentation inside the worker process reaches the hub.
        counters = obs_run["snapshot"]["counters"]
        for worker in range(NUM_WORKERS):
            per = counters[str(worker)]
            assert per["worker.steps"] > 0
            assert per["codec.messages"] > 0
            assert per["worker.bytes_out"] > 0

    def test_snapshot_reports_wire_settings(self, obs_run):
        info = obs_run["snapshot"]["info"]
        assert info["backend"] == "mp"
        assert info["workers"] == NUM_WORKERS
        assert "entropy_coding" in info
        assert "chunk_bytes" in info

    def test_prometheus_text_and_readiness(self, obs_run):
        prom = obs_run["prom"]
        assert 'repro_worker_steps_total{worker="0"}' in prom
        assert "# TYPE repro_worker_steps_total counter" in prom
        assert obs_run["ready_status"] == 200

    def test_prometheus_totals_match_snapshot(self, obs_run):
        rendered = render_prometheus(obs_run["hub"])
        steps = obs_run["snapshot"]["counters"]["0"]["worker.steps"]
        assert f'repro_worker_steps_total{{worker="0"}} {steps}' in rendered


class TestSpanCausality:
    def _driver_round_ids(self, events):
        driver_pid = next(
            e["pid"] for e in events
            if e["type"] == "meta" and e.get("source") == "driver"
        )
        return {
            e["span"]
            for e in events
            if e["type"] == "span" and e.get("name") == "trainer.round"
            and e["pid"] == driver_pid
        }

    def test_worker_spans_parent_under_driver_rounds(self, obs_run):
        events = obs_run["events"]
        rounds = self._driver_round_ids(events)
        worker_spans = [
            e for e in events
            if e["type"] == "span"
            and e.get("name") in ("worker.step", "worker.update")
            and e.get("worker") is not None
        ]
        assert worker_spans, "no worker spans in the merged trace"
        crossed = [e for e in worker_spans if e.get("parent") in rounds]
        # Every worker span recorded in a *worker process* must parent
        # under a driver round span via the wire-propagated context.
        driver_pid = next(
            e["pid"] for e in events
            if e["type"] == "meta" and e.get("source") == "driver"
        )
        remote = [e for e in worker_spans if e["pid"] != driver_pid]
        assert remote, "expected worker-process spans in an mp trace"
        assert all(e.get("parent") in rounds for e in remote)
        assert len(crossed) >= len(remote)

    def test_chunked_update_preserves_span_context(self, tmp_path):
        # Chunk every UPDATE broadcast: the span context must survive
        # the CHUNK/END stream, not just contiguous frames.
        path = str(tmp_path / "chunked.jsonl")
        _, events = run_ops(
            "mp", path,
            runtime=clean_runtime("mp", chunk_bytes=256),
        )
        rounds = self._driver_round_ids(events)
        driver_pid = next(
            e["pid"] for e in events
            if e["type"] == "meta" and e.get("source") == "driver"
        )
        updates = [
            e for e in events
            if e["type"] == "span" and e.get("name") == "worker.update"
            and e["pid"] != driver_pid
        ]
        assert updates, "chunked run recorded no worker.update spans"
        assert all(e.get("parent") in rounds for e in updates)

    def test_v1_peer_negotiates_ops_off_and_matches(self, tmp_path):
        # The negotiation matrix cell the ISSUE pins: a v2+ops driver
        # against a v1 worker.  The ops plane must disable itself on
        # that connection and the math must not notice.
        base_theta, _ = run_ops("mp", "", runtime=clean_runtime("mp"))
        hub = MetricsHub()
        theta, _ = run_ops(
            "mp", str(tmp_path / "v1peer.jsonl"), hub=hub,
            runtime=clean_runtime(
                "mp", worker_caps={0: V1_CAPS}
            ),
        )
        np.testing.assert_array_equal(theta, base_theta)
        # Worker 0 (v1) shipped nothing; worker 1 (v2+ops) did.
        assert "worker.steps" not in hub.snapshot()["counters"].get(
            "0", {}
        )
        assert hub.counter_total("worker.steps", worker=1) > 0

    def test_ops_plane_keeps_backends_bit_identical(self, tmp_path):
        thetas = {}
        for backend in ("sim", "mp", "tcp", "aio"):
            hub = MetricsHub()
            thetas[backend], _ = run_ops(
                "sim" if backend == "sim" else backend,
                str(tmp_path / f"{backend}.jsonl"),
                hub=hub,
                runtime=(
                    None if backend == "sim" else clean_runtime(backend)
                ),
            )
        for backend in ("mp", "tcp", "aio"):
            np.testing.assert_array_equal(
                thetas[backend], thetas["sim"]
            )


class TestCriticalPath:
    @pytest.fixture(scope="class")
    def golden_events(self):
        return read_trace(GOLDEN_TRACE)

    def test_attributes_99_percent_of_golden_rounds(self, golden_events):
        report = critical_path(golden_events)
        assert report.rounds, "golden fleet trace has no rounds"
        for r in report.rounds:
            assert r.coverage >= 0.95, (
                f"round {r.round}: only {r.coverage:.2%} attributed "
                f"({r.buckets})"
            )
        totals = report.totals()
        # The ISSUE's acceptance bar: ≥99% of golden wall time lands
        # in the four real buckets.
        assert abs(totals["other"]) <= 0.01 * totals["wall"]
        assert totals["codec"] > 0
        assert totals["compute"] > 0

    def test_causal_dag_matches_pin(self, golden_events):
        with open(GOLDEN_DAG, "r", encoding="utf-8") as fh:
            pinned = json.load(fh)
        assert pinned["format"] == "repro-causal-dag/1"
        got = [list(edge) for edge in causal_edges(golden_events)]
        assert got == pinned["edges"], (
            "causal DAG drifted from the committed pin — regenerate "
            "deliberately with tests/golden/trace/regen_fleet.py"
        )

    def test_render_report_shape(self, golden_events):
        text = render_report(
            critical_path(golden_events), per_round=True
        )
        assert "straggler_wait" in text
        assert "attributed:" in text
        assert "round 0" in text

    def test_preops_trace_is_rejected(self):
        events = [
            {"type": "meta", "ts": 0.0, "pid": 1, "seq": 0,
             "schema": "repro-trace/1", "source": "driver"},
            {"type": "span", "name": "trainer.round", "ts": 1.0,
             "pid": 1, "seq": 1, "dur": 0.5},
        ]
        with pytest.raises(ValueError, match="span ids"):
            critical_path(events)


class TestCliSurfaces:
    def test_trace_critical_path_renders(self, capsys):
        assert repro_main(
            ["trace", GOLDEN_TRACE, "--critical-path"]
        ) == 0
        out = capsys.readouterr().out
        assert "attributed:" in out

    def test_trace_critical_path_json(self, capsys):
        assert repro_main(
            ["trace", GOLDEN_TRACE, "--critical-path",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"]
        assert set(payload["totals"]) >= {"codec", "compute", "wall"}

    def test_validate_rejects_truncated_flight(self, capsys):
        assert repro_main(["trace", TRUNCATED, "--validate"]) == 1
        assert "never closed" in capsys.readouterr().err

    def test_validate_accepts_complete_flight(self, capsys):
        assert repro_main(["trace", GOLDEN_TRACE, "--validate"]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_top_once_renders_golden(self, capsys):
        assert repro_main(["top", GOLDEN_TRACE, "--once"]) == 0
        out = capsys.readouterr().out
        assert "worker" in out
        assert "steps" in out
        # 8 worker rows from the fleet trace.
        assert all(f"\n{w:>8} " in out for w in range(8))

    def test_top_requires_exactly_one_source(self, capsys):
        assert repro_main(["top"]) == 2
        assert repro_main(
            ["top", GOLDEN_TRACE, "--connect", "127.0.0.1:1"]
        ) == 2


class TestHubUnits:
    def test_worker_metrics_take_drains(self):
        spool = WorkerMetrics()
        spool.add("a", 2)
        spool.add("a", 3)
        spool.add("b")
        assert spool.peek() == {"a": 5, "b": 1}
        assert spool.take() == {"a": 5, "b": 1}
        assert spool.take() == {}

    def test_spoolhub_captures_counters_not_gauges(self):
        spool = WorkerMetrics()
        hub = SpoolHub(spool)
        hub.record_counter("x", 4, worker=9)
        hub.record_gauge("g", 1.5, worker=9)
        assert spool.take() == {"x": 4}

    def test_hub_ingest_and_totals(self):
        hub = MetricsHub()
        hub.ingest(3, {"worker.steps": 2})
        hub.ingest(3, {"worker.steps": 1})
        hub.record_counter("trainer.rounds", 5)
        assert hub.counter_total("worker.steps") == 3
        assert hub.counter_total("worker.steps", worker=3) == 3
        snap = hub.snapshot()
        assert snap["counters"]["3"]["worker.steps"] == 3
        assert snap["counters"][str(DRIVER_KEY)]["trainer.rounds"] == 5
        assert snap["last_seen"]["3"] > 0

    def test_empty_ingest_marks_liveness(self):
        hub = MetricsHub()
        hub.ingest(1, {})
        assert hub.worker_ids() == [1]

    def test_render_top_offline(self):
        events = read_trace(GOLDEN_TRACE)
        snapshot = snapshot_from_trace(events)
        text = render_top(snapshot, now=0.0)
        assert "repro top" in text
        assert "ready" in text

    def test_metrics_enabled_overhead_within_budget(self):
        from repro.perf.overhead import measure_overhead

        report = measure_overhead(nnz=2_000, repeats=2, metrics_hub=True)
        assert report.metrics_enabled
        assert report.within_budget, report.describe()
        assert "metrics-hub" in report.describe()
