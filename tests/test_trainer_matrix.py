"""Matrix smoke tests: every codec × every sparse model under training.

These guard the composition surface: any registered compressor must be
usable as the gradient transport of any sparse model without breaking
convergence (losses finite and non-increasing overall), and LR
schedules must compose with the trainer.
"""

import numpy as np
import pytest

from repro.compression import available_compressors, make_compressor
from repro.distributed import DistributedTrainer, TrainerConfig, cluster1_like
from repro.models import make_model
from repro.optim import Adam, InverseDecayLR, StepDecayLR


SPARSE_MODELS = ["lr", "svm", "linear"]
# top-k drops entries (not a full-gradient codec) but must still train.
CODECS = sorted(available_compressors())


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("model_name", SPARSE_MODELS)
def test_codec_model_matrix(tiny_split, codec, model_name):
    train, test = tiny_split
    model = make_model(model_name, train.num_features, reg_lambda=0.01)
    trainer = DistributedTrainer(
        model=model,
        optimizer=Adam(learning_rate=0.01),
        compressor_factory=lambda: make_compressor(codec),
        network=cluster1_like(),
        config=TrainerConfig(num_workers=3, epochs=2, seed=0),
    )
    history = trainer.train(train, test)
    assert history.num_epochs == 2
    assert all(np.isfinite(loss) for loss in history.test_losses)
    # Training moved in the right direction (allow tiny noise for the
    # most aggressive codecs).
    assert history.test_losses[-1] <= history.test_losses[0] * 1.02, (
        f"{codec}/{model_name} worsened: {history.test_losses}"
    )
    assert all(e.bytes_sent > 0 for e in history.epochs)


@pytest.mark.parametrize(
    "schedule",
    [InverseDecayLR(rate=0.05), StepDecayLR(step_size=5, factor=0.5)],
    ids=["inverse", "step"],
)
def test_trainer_with_schedule(tiny_split, schedule):
    from repro.compression import IdentityCompressor

    train, test = tiny_split
    model = make_model("lr", train.num_features, reg_lambda=0.01)
    optimizer = Adam(learning_rate=0.02)
    trainer = DistributedTrainer(
        model=model,
        optimizer=optimizer,
        compressor_factory=IdentityCompressor,
        network=cluster1_like(),
        config=TrainerConfig(num_workers=3, epochs=3, seed=0),
        schedule=schedule,
    )
    history = trainer.train(train, test)
    assert history.test_losses[-1] < history.test_losses[0]
    # The trainer restores the base learning rate afterwards.
    assert optimizer.learning_rate == 0.02
