"""End-to-end training over real backends.

The acceptance bar for the runtime subsystem: a fixed-seed logistic
regression run must produce *identical* model parameters whether the
gradients move through the simulated loop or through real spawned
worker processes — the wire bytes are the same, so the math must be.
"""

import numpy as np
import pytest

from repro.compression import IdentityCompressor
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.data import kdd10_like, train_test_split
from repro.distributed import DistributedTrainer, TrainerConfig
from repro.distributed.network import infinite_bandwidth
from repro.models import make_model
from repro.optim import SGD
from repro.runtime import FaultConfig, RuntimeConfig, SupervisionConfig

SEED = 7
NUM_WORKERS = 3
EPOCHS = 2


@pytest.fixture(scope="module")
def split():
    return train_test_split(kdd10_like(seed=SEED, scale=0.02), seed=SEED)


def make_trainer(split, backend, runtime=None, compressor_factory=None):
    train, _ = split
    model = make_model("lr", train.num_features)
    if compressor_factory is None:
        compressor_factory = lambda: SketchMLCompressor(
            SketchMLConfig.full(seed=SEED)
        )
    return DistributedTrainer(
        model=model,
        optimizer=SGD(learning_rate=0.1),
        compressor_factory=compressor_factory,
        network=infinite_bandwidth(),
        config=TrainerConfig(
            num_workers=NUM_WORKERS,
            batch_fraction=0.25,
            epochs=EPOCHS,
            seed=SEED,
            backend=backend,
        ),
        runtime=runtime,
    )


def run_training(split, backend, runtime=None):
    trainer = make_trainer(split, backend, runtime=runtime)
    history = trainer.train(*split)
    return history, trainer.theta


@pytest.fixture(scope="module")
def sim_run(split):
    return run_training(split, "sim")


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["mp", "tcp", "aio"])
    def test_real_backend_matches_sim_bit_identically(
        self, split, sim_run, backend
    ):
        sim_history, sim_theta = sim_run
        history, theta = run_training(split, backend)
        # Same updates ⇒ same parameters, exactly (no tolerance).
        np.testing.assert_array_equal(theta, sim_theta)
        assert history.num_epochs == sim_history.num_epochs
        for got, ref in zip(history.epochs, sim_history.epochs):
            assert got.train_loss == ref.train_loss
            assert got.test_loss == ref.test_loss
            assert got.num_messages == ref.num_messages
            assert got.dropped_workers == {}

    def test_sim_backend_reproduces_itself(self, split, sim_run):
        # The legacy loop is untouched by the runtime plumbing and
        # stays deterministic.
        _, sim_theta = sim_run
        _, theta = run_training(split, "sim")
        np.testing.assert_array_equal(theta, sim_theta)


class TestFaultyTraining:
    def test_training_converges_identically_under_faults(self, split, sim_run):
        # Seeded drop+corrupt faults on a real backend: retries absorb
        # every fault, so the final model still matches sim exactly.
        _, sim_theta = sim_run
        runtime = RuntimeConfig(
            supervision=SupervisionConfig(
                message_timeout=5.0,
                max_retries=5,
                backoff_base=0.01,
                backoff_jitter=0.0,
                seed=SEED,
            ),
            faults=FaultConfig(seed=SEED, drop_rate=0.05, corrupt_rate=0.05),
        )
        _, theta = run_training(split, "mp", runtime=runtime)
        np.testing.assert_array_equal(theta, sim_theta)

    def test_wire_bytes_are_real_on_mp(self, split):
        history, _ = run_training(split, "mp")
        for record in history.epochs:
            # Real backends report actual serialized frame payloads.
            assert record.bytes_sent > 0
            assert record.num_messages > 0


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            TrainerConfig(backend="carrier-pigeon")

    def test_wire_incapable_compressor_fails_before_spawning(self, split):
        # IdentityCompressor has no wire format; a real backend must
        # refuse it up front with a named error, not die in a child.
        trainer = make_trainer(
            split, "mp", compressor_factory=IdentityCompressor
        )
        with pytest.raises(ValueError, match="cannot be serialized"):
            trainer.train(*split)
