"""Tests for the QSGD compressor and conservative-update Count-Min."""

import numpy as np
import pytest

from repro.compression import QSGDCompressor, make_compressor
from repro.sketch.frequency import ConservativeCountMinSketch, CountMinSketch


def make_gradient(nnz=2_000, dimension=50_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-5
    return keys, values, dimension


class TestQSGD:
    def test_registered(self):
        assert isinstance(make_compressor("qsgd"), QSGDCompressor)

    def test_validation(self):
        with pytest.raises(ValueError):
            QSGDCompressor(num_levels=0)
        with pytest.raises(ValueError):
            QSGDCompressor(num_levels=100_000)

    def test_keys_lossless_and_signs_preserved(self):
        keys, values, dim = make_gradient(seed=1)
        comp = QSGDCompressor(num_levels=255, seed=0)
        out_keys, out_values, _ = comp.roundtrip(keys, values, dim)
        np.testing.assert_array_equal(out_keys, keys)
        nonzero = out_values != 0
        assert np.all(np.sign(out_values[nonzero]) == np.sign(values[nonzero]))

    def test_unbiasedness(self):
        """E[decode(encode(g))] = g over the rounding randomness."""
        keys, values, dim = make_gradient(nnz=200, seed=2)
        comp = QSGDCompressor(num_levels=15, seed=7)
        total = np.zeros_like(values)
        trials = 400
        for _ in range(trials):
            _, decoded, _ = comp.roundtrip(keys, values, dim)
            total += decoded
        estimate = total / trials
        norm = np.linalg.norm(values)
        np.testing.assert_allclose(estimate, values, atol=norm / 15 / 4)

    def test_magnitudes_bounded_by_norm(self):
        keys, values, dim = make_gradient(seed=3)
        comp = QSGDCompressor(num_levels=255, seed=1)
        _, decoded, _ = comp.roundtrip(keys, values, dim)
        assert np.abs(decoded).max() <= np.linalg.norm(values) + 1e-12

    def test_byte_accounting(self):
        keys, values, dim = make_gradient(nnz=800, seed=4)
        msg = QSGDCompressor(num_levels=255).compress(keys, values, dim)
        assert msg.breakdown["keys"] == 3_200
        assert msg.breakdown["values"] == 800 + 100  # levels + sign bits
        assert msg.num_bytes == sum(msg.breakdown.values())

    def test_16bit_levels(self):
        keys, values, dim = make_gradient(nnz=100, seed=5)
        comp = QSGDCompressor(num_levels=65_535, seed=0)
        _, decoded, msg = comp.roundtrip(keys, values, dim)
        norm = np.linalg.norm(values)
        assert np.abs(decoded - values).max() <= norm / 65_535 + 1e-12

    def test_empty_and_zero_gradients(self):
        comp = QSGDCompressor()
        empty = np.asarray([], dtype=np.int64)
        out_keys, out_values, _ = comp.roundtrip(empty, empty.astype(float), 10)
        assert out_keys.size == 0
        zeros = np.zeros(3)
        out_keys, out_values, _ = comp.roundtrip(np.arange(3), zeros, 10)
        np.testing.assert_array_equal(out_values, zeros)

    def test_variance_bound_of_corollary_a3(self):
        """Empirical QSGD variance obeys min(d/s^2, sqrt(d)/s)||g||^2."""
        rng = np.random.default_rng(6)
        d, s = 5_000, 255
        keys = np.arange(d)
        values = rng.laplace(scale=0.01, size=d)
        comp = QSGDCompressor(num_levels=s, seed=2)
        errors = []
        for _ in range(20):
            _, decoded, _ = comp.roundtrip(keys, values, d)
            errors.append(np.sum((decoded - values) ** 2))
        bound = min(d / s**2, np.sqrt(d) / s) * float(np.dot(values, values))
        assert np.mean(errors) <= bound


class TestConservativeCountMin:
    def test_never_underestimates(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 500, size=10_000)
        sk = ConservativeCountMinSketch(num_rows=3, num_bins=256, seed=1)
        sk.insert_many(keys)
        true_counts = np.bincount(keys, minlength=500)
        for key in range(0, 500, 17):
            assert sk.query(key) >= true_counts[key]

    def test_tighter_than_plain_count_min(self):
        """Conservative update never does worse than plain CM."""
        rng = np.random.default_rng(1)
        keys = rng.zipf(1.3, size=20_000) % 2_000
        plain = CountMinSketch(num_rows=3, num_bins=256, seed=2)
        conservative = ConservativeCountMinSketch(num_rows=3, num_bins=256, seed=2)
        plain.insert_many(keys)
        conservative.insert_many(keys)
        probes = np.arange(0, 2_000, 13)
        plain_est = plain.query_many(probes)
        cons_est = conservative.query_many(probes)
        assert np.all(cons_est <= plain_est)
        assert cons_est.sum() < plain_est.sum()

    def test_still_overestimates_under_pressure(self):
        """Even conservative update keeps the upward bias MinMaxSketch
        eliminates — §3.3's argument survives the stronger baseline."""
        rng = np.random.default_rng(2)
        keys = np.sort(rng.choice(10**6, size=3_000, replace=False))
        indexes = rng.integers(1, 64, size=3_000)
        sk = ConservativeCountMinSketch(num_rows=2, num_bins=256, seed=3)
        for key, idx in zip(keys.tolist(), indexes.tolist()):
            sk.insert(key, count=idx)
        decoded = sk.query_many(keys)
        assert (decoded > indexes).any()
        assert not (decoded < indexes).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            ConservativeCountMinSketch(num_rows=0)
        sk = ConservativeCountMinSketch()
        with pytest.raises(ValueError):
            sk.insert(1, count=0)

    def test_query_many_and_sizes(self):
        sk = ConservativeCountMinSketch(num_rows=2, num_bins=64, seed=0)
        sk.insert_many([5, 5, 9])
        assert sk.query_many([5, 9]).tolist() == [sk.query(5), sk.query(9)]
        assert sk.total_count == 3
        assert sk.size_bytes == 2 * 64 * 8
        assert sk.query_many([]).size == 0
