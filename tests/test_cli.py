"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.profile == "kdd12"
        assert args.workers == 10

    def test_rejects_bad_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--profile", "criteo"])


class TestInfo:
    def test_lists_components(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "sketchml" in out
        assert "kdd12" in out


class TestCompress:
    def test_sketchml(self, capsys):
        code = main(
            ["compress", "--method", "sketchml", "--nnz", "2000",
             "--dimension", "50000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compression rate" in out
        assert "keys lossless     : True" in out

    def test_every_registered_method(self, capsys):
        from repro.compression import available_compressors

        for method in available_compressors():
            assert main(
                ["compress", "--method", method, "--nnz", "500",
                 "--dimension", "10000"]
            ) == 0

    def test_unknown_method(self, capsys):
        assert main(["compress", "--method", "brotli"]) == 2
        assert "unknown compressor" in capsys.readouterr().err

    def test_bad_sizes(self, capsys):
        assert main(["compress", "--nnz", "100", "--dimension", "10"]) == 2


class TestCompare:
    def test_report_includes_all_codecs(self, capsys):
        code = main(
            ["compare", "--nnz", "1000", "--dimension", "30000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sketchml" in out
        assert "identity" in out
        assert "SketchML-friendly" in out

    def test_bad_sizes(self, capsys):
        assert main(["compare", "--nnz", "10", "--dimension", "5"]) == 2


class TestTrain:
    def test_small_run(self, capsys):
        code = main(
            ["train", "--profile", "kdd10", "--scale", "0.05",
             "--workers", "2", "--epochs", "1", "--cluster", "cluster1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SketchML" in out
        assert "test loss" in out

    def test_ablation_method(self, capsys):
        code = main(
            ["train", "--profile", "kdd10", "--scale", "0.05",
             "--workers", "2", "--epochs", "1", "--method", "Adam+Key"]
        )
        assert code == 0

    def test_unknown_method(self, capsys):
        code = main(
            ["train", "--profile", "kdd10", "--scale", "0.05",
             "--workers", "2", "--epochs", "1", "--method", "DGC"]
        )
        assert code == 2


class TestDatagen:
    def test_writes_libsvm(self, tmp_path, capsys):
        out_path = tmp_path / "data.libsvm"
        code = main(
            ["datagen", "--profile", "kdd10", "--scale", "0.01",
             "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        from repro.data import read_libsvm

        dataset = read_libsvm(out_path)
        assert dataset.num_rows > 0
        assert np.isfinite(dataset.data).all()
