"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.profile == "kdd12"
        assert args.workers == 10

    def test_rejects_bad_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--profile", "criteo"])


class TestInfo:
    def test_lists_components(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "sketchml" in out
        assert "kdd12" in out


class TestCompress:
    def test_sketchml(self, capsys):
        code = main(
            ["compress", "--method", "sketchml", "--nnz", "2000",
             "--dimension", "50000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compression rate" in out
        assert "keys lossless     : True" in out

    def test_every_registered_method(self, capsys):
        from repro.compression import available_compressors

        for method in available_compressors():
            assert main(
                ["compress", "--method", method, "--nnz", "500",
                 "--dimension", "10000"]
            ) == 0

    def test_unknown_method(self, capsys):
        assert main(["compress", "--method", "brotli"]) == 2
        assert "unknown compressor" in capsys.readouterr().err

    def test_bad_sizes(self, capsys):
        assert main(["compress", "--nnz", "100", "--dimension", "10"]) == 2


class TestCompare:
    def test_report_includes_all_codecs(self, capsys):
        code = main(
            ["compare", "--nnz", "1000", "--dimension", "30000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sketchml" in out
        assert "identity" in out
        assert "SketchML-friendly" in out

    def test_bad_sizes(self, capsys):
        assert main(["compare", "--nnz", "10", "--dimension", "5"]) == 2


class TestTrain:
    def test_small_run(self, capsys):
        code = main(
            ["train", "--profile", "kdd10", "--scale", "0.05",
             "--workers", "2", "--epochs", "1", "--cluster", "cluster1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SketchML" in out
        assert "test loss" in out

    def test_ablation_method(self, capsys):
        code = main(
            ["train", "--profile", "kdd10", "--scale", "0.05",
             "--workers", "2", "--epochs", "1", "--method", "Adam+Key"]
        )
        assert code == 0

    def test_unknown_method(self, capsys):
        code = main(
            ["train", "--profile", "kdd10", "--scale", "0.05",
             "--workers", "2", "--epochs", "1", "--method", "DGC"]
        )
        assert code == 2

    def test_backend_default_is_sim(self):
        args = build_parser().parse_args(["train"])
        assert args.backend == "sim"
        assert args.straggler_policy == "fail_fast"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--backend", "smoke-signal"])

    def test_mp_backend_run(self, capsys):
        code = main(
            ["train", "--profile", "kdd10", "--scale", "0.02",
             "--workers", "2", "--epochs", "1", "--backend", "mp"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=mp" in out
        assert "test loss" in out

    def test_mp_backend_matches_sim_losses(self, capsys):
        base = ["train", "--profile", "kdd10", "--scale", "0.02",
                "--workers", "2", "--epochs", "1", "--seed", "5"]
        assert main(base) == 0
        sim_out = capsys.readouterr().out
        assert main(base + ["--backend", "mp"]) == 0
        mp_out = capsys.readouterr().out
        # The loss columns (last two fields of each epoch row) must
        # agree exactly; timings legitimately differ.
        def losses(out):
            rows = [
                line.split()[-2:]
                for line in out.splitlines()
                if line and line.split()[0].isdigit()
            ]
            assert rows
            return rows

        assert losses(sim_out) == losses(mp_out)

    def test_fault_flags_are_parsed(self):
        args = build_parser().parse_args(
            ["train", "--backend", "mp", "--fault-drop", "0.1",
             "--fault-corrupt", "0.05", "--fault-seed", "9",
             "--straggler-policy", "drop", "--max-retries", "7",
             "--message-timeout", "3.5"]
        )
        assert args.fault_drop == 0.1
        assert args.fault_corrupt == 0.05
        assert args.fault_seed == 9
        assert args.straggler_policy == "drop"
        assert args.max_retries == 7
        assert args.message_timeout == 3.5


class TestDatagen:
    def test_writes_libsvm(self, tmp_path, capsys):
        out_path = tmp_path / "data.libsvm"
        code = main(
            ["datagen", "--profile", "kdd10", "--scale", "0.01",
             "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        from repro.data import read_libsvm

        dataset = read_libsvm(out_path)
        assert dataset.num_rows > 0
        assert np.isfinite(dataset.data).all()


class TestLint:
    BAD = "try:\n    f()\nexcept:\n    pass\n"

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(self.BAD)
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "bare-except" in out
        assert f"{bad}:3:" in out
        assert "1 finding" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "mod.py"
        bad.write_text(self.BAD)
        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "bare-except"
        assert payload[0]["line"] == 3

    def test_select_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(self.BAD + "def public():\n    return 1\n")
        assert main(["lint", "--select", "missing-all", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "missing-all" in out and "bare-except" not in out

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", "--select", "bogus", str(tmp_path)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "does/not/exist"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("kernel-parity", "rng-discipline", "dtype-discipline",
                        "hot-loop", "wire-format", "bare-except",
                        "mutable-default", "missing-all",
                        "telemetry-discipline", "noqa-justification"):
            assert rule_id in out
