"""Tests for the single-node baseline and the bench harness."""

import numpy as np
import pytest

from repro.baselines import SingleNodeConfig, SingleNodeTrainer
from repro.bench import (
    ExperimentSpec,
    clear_cache,
    format_series,
    format_table,
    load_split,
    method_factory,
    run_experiment,
)
from repro.compression import IdentityCompressor, ZipMLCompressor
from repro.core import SketchMLCompressor
from repro.models import LogisticRegression
from repro.optim import Adam


class TestSingleNode:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SingleNodeConfig(batch_fraction=0.0)
        with pytest.raises(ValueError):
            SingleNodeConfig(epochs=0)
        with pytest.raises(ValueError):
            SingleNodeConfig(disk_bytes_per_sec=-1)

    def test_trains_and_records(self, tiny_split):
        train, test = tiny_split
        trainer = SingleNodeTrainer(
            LogisticRegression(train.num_features, reg_lambda=0.01),
            Adam(learning_rate=0.01),
            SingleNodeConfig(epochs=3, disk_bytes_per_sec=None),
        )
        history = trainer.train(train, test)
        assert history.num_epochs == 3
        assert history.method == "single-node"
        assert history.num_workers == 1
        assert all(e.network_seconds == 0.0 for e in history.epochs)
        assert all(e.bytes_sent == 0 for e in history.epochs)
        assert history.test_losses[-1] < history.test_losses[0]
        assert trainer.theta.shape == (train.num_features,)

    def test_load_time_charged_to_first_epoch(self, tiny_split):
        train, _ = tiny_split
        trainer = SingleNodeTrainer(
            LogisticRegression(train.num_features),
            Adam(learning_rate=0.01),
            SingleNodeConfig(epochs=2, disk_bytes_per_sec=1e4),
        )
        history = trainer.train(train)
        expected_load = 12 * train.nnz / 1e4
        assert history.epochs[0].compute_seconds > expected_load
        assert history.epochs[1].compute_seconds < expected_load

    def test_theta_before_train_raises(self, tiny_split):
        train, _ = tiny_split
        trainer = SingleNodeTrainer(
            LogisticRegression(train.num_features), Adam(learning_rate=0.01)
        )
        with pytest.raises(RuntimeError):
            _ = trainer.theta


class TestMethodFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("Adam", IdentityCompressor),
            ("Adam-float", IdentityCompressor),
            ("ZipML", ZipMLCompressor),
            ("ZipML-8bit", ZipMLCompressor),
            ("SketchML", SketchMLCompressor),
            ("Adam+Key", SketchMLCompressor),
            ("Adam+Key+Quan", SketchMLCompressor),
            ("Adam+Key+Quan+MinMax", SketchMLCompressor),
        ],
    )
    def test_factory_builds_fresh_instances(self, name, cls):
        factory = method_factory(name)
        a, b = factory(), factory()
        assert isinstance(a, cls)
        assert a is not b

    def test_zipml_bits(self):
        assert method_factory("ZipML")().bits == 16
        assert method_factory("ZipML-8bit")().bits == 8

    def test_sketch_overrides(self):
        comp = method_factory("SketchML", num_buckets=64)()
        assert comp.config.num_buckets == 64

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown method"):
            method_factory("DGC")


class TestRunner:
    def test_load_split_cached(self):
        a = load_split("kdd10", scale=0.05, seed=0)
        b = load_split("kdd10", scale=0.05, seed=0)
        assert a[0] is b[0]

    def test_run_experiment_and_cache(self):
        spec = ExperimentSpec(
            profile="kdd10", model="lr", method="SketchML",
            num_workers=2, epochs=1, scale=0.05, cluster="cluster1",
        )
        first = run_experiment(spec)
        second = run_experiment(spec)
        assert first is second
        assert first.num_epochs == 1
        fresh = run_experiment(spec, use_cache=False)
        assert fresh is not first
        clear_cache()

    def test_spec_network_validation(self):
        with pytest.raises(ValueError, match="unknown cluster"):
            ExperimentSpec(cluster="mars").network()


class TestTables:
    def test_format_table(self):
        out = format_table(
            ["method", "seconds"],
            [["SketchML", 1.5], ["Adam", 10.0]],
            title="Fig X",
        )
        assert "Fig X" in out
        assert "SketchML" in out
        lines = out.splitlines()
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("loss", [(0.0, 1.0), (1.0, 0.5)], "sec", "loss")
        assert "series 'loss'" in out
        assert out.count("\n") == 2

    def test_format_series_downsamples(self):
        points = [(float(i), float(i)) for i in range(1000)]
        out = format_series("big", points, max_points=10)
        assert out.count("\n") <= 110

    def test_write_result(self, tmp_path):
        from repro.bench import write_result

        content = write_result("unit", "hello", directory=str(tmp_path))
        assert content == "hello"
        assert (tmp_path / "unit.txt").read_text() == "hello\n"
