"""Transport conformance: the same contract over sim, mp, and tcp.

Every backend must move opaque frames point-to-point, preserve
per-worker ordering, time out cleanly, and report liveness — the
supervision layer is written against exactly this surface.  Real
backends (``mp``, ``tcp``) spawn actual worker processes whose serve
loop answers ``ECHO`` frames before ``INIT``, so the suite needs no
training state.
"""

import pytest

from repro.runtime.framing import (
    KIND_ECHO,
    KIND_STOP,
    pack_frame,
    unpack_frame,
)
from repro.runtime.transport import (
    TRANSPORT_BACKENDS,
    TransportClosed,
    TransportTimeout,
    make_transport,
)

NUM_WORKERS = 2


def _echo_handler(worker_id):
    def handler(frame):
        kind, _, payload = unpack_frame(frame)
        if kind == KIND_STOP:
            return []
        return [pack_frame(KIND_ECHO, worker_id, payload)]

    return handler


def _build(backend):
    if backend == "sim":
        handlers = [_echo_handler(i) for i in range(NUM_WORKERS)]
        return make_transport("sim", NUM_WORKERS, handlers=handlers)
    return make_transport(backend, NUM_WORKERS)


def _shutdown(transport):
    for worker_id in range(transport.num_workers):
        try:
            if transport.alive(worker_id):
                transport.send(worker_id, pack_frame(KIND_STOP, 0))
        except TransportClosed:
            pass
    transport.close()


@pytest.fixture(params=TRANSPORT_BACKENDS)
def transport(request):
    t = _build(request.param)
    try:
        yield t
    finally:
        _shutdown(t)


class TestConformance:
    def test_name_matches_backend(self, transport):
        assert transport.name in TRANSPORT_BACKENDS
        assert transport.num_workers == NUM_WORKERS

    def test_echo_roundtrip_every_worker(self, transport):
        for worker_id in range(NUM_WORKERS):
            payload = b"ping-%d" % worker_id
            transport.send(worker_id, pack_frame(KIND_ECHO, 0, payload))
            kind, sender, got = unpack_frame(transport.recv(worker_id, 20.0))
            assert (kind, sender, got) == (KIND_ECHO, worker_id, payload)

    def test_per_worker_ordering_preserved(self, transport):
        for i in range(5):
            transport.send(0, pack_frame(KIND_ECHO, 0, b"seq-%d" % i))
        for i in range(5):
            _, _, payload = unpack_frame(transport.recv(0, 20.0))
            assert payload == b"seq-%d" % i

    def test_large_payload_survives(self, transport):
        # Bigger than any pipe buffer / single socket read.
        payload = bytes(range(256)) * 4096  # 1 MiB
        transport.send(1, pack_frame(KIND_ECHO, 0, payload))
        _, _, got = unpack_frame(transport.recv(1, 30.0))
        assert got == payload

    def test_recv_timeout_raises(self, transport):
        with pytest.raises(TransportTimeout):
            transport.recv(0, 0.05)

    def test_invalid_worker_id_rejected(self, transport):
        with pytest.raises(ValueError):
            transport.send(NUM_WORKERS, b"")
        with pytest.raises(ValueError):
            transport.recv(-1, 0.0)

    def test_alive_then_terminated(self, transport):
        assert transport.alive(0)
        assert transport.alive(1)
        transport.terminate(1)
        if transport.name in ("mp", "tcp"):
            # Real processes take a moment to die.
            import time

            deadline = time.monotonic() + 10.0
            while transport.alive(1) and time.monotonic() < deadline:
                time.sleep(0.02)
        assert not transport.alive(1)
        # Worker 0 is unaffected.
        transport.send(0, pack_frame(KIND_ECHO, 0, b"still-here"))
        _, _, payload = unpack_frame(transport.recv(0, 20.0))
        assert payload == b"still-here"

    def test_send_after_terminate_fails(self, transport):
        transport.terminate(0)
        if transport.name == "mp":
            # The pipe stays writable until the process death is
            # observed; a recv sees the hangup.
            transport._procs[0].join(timeout=10.0)
            with pytest.raises((TransportClosed, TransportTimeout)):
                transport.recv(0, 0.2)
        else:
            with pytest.raises((TransportClosed, TransportTimeout)):
                transport.send(0, pack_frame(KIND_ECHO, 0, b"x"))
                transport.recv(0, 0.2)

    @pytest.mark.parametrize("backend", TRANSPORT_BACKENDS)
    def test_context_manager_closes(self, backend):
        with _build(backend) as t:
            t.send(0, pack_frame(KIND_ECHO, 0, b"cm"))
            _, _, payload = unpack_frame(t.recv(0, 20.0))
            assert payload == b"cm"
            _shutdown(t)
