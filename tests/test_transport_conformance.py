"""Transport conformance: the same contract over sim, mp, tcp, and aio.

Every backend must move opaque frames point-to-point, preserve
per-worker ordering, time out cleanly, and report liveness — the
supervision layer is written against exactly this surface.  Real
backends (``mp``, ``tcp``, ``aio``) spawn actual worker processes
whose serve loop answers ``ECHO`` frames before ``INIT``, so the suite
needs no training state.

The stream-reassembly section drives the socket backends through raw
client sockets to pin down partial reads (one byte per segment),
frames split across ``recv`` boundaries, coalesced back-to-back
frames, and short-write resumption on oversized sends.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.runtime.aio import AioTransport
from repro.runtime.framing import (
    DEFAULT_CAPS,
    HEADER_SIZE,
    KIND_ACK,
    KIND_ECHO,
    KIND_ERROR,
    KIND_INIT,
    KIND_READY,
    KIND_STOP,
    KIND_UPDATE,
    V1_CAPS,
    FrameAssembler,
    FrameError,
    NegotiationError,
    ProtocolCaps,
    iter_chunk_frames,
    pack_ack,
    pack_frame,
    unpack_frame,
)
from repro.runtime.transport import (
    TRANSPORT_BACKENDS,
    TcpTransport,
    TransportClosed,
    TransportTimeout,
    make_transport,
)

NUM_WORKERS = 2


def _echo_handler(worker_id):
    def handler(frame):
        kind, _, payload = unpack_frame(frame)
        if kind == KIND_STOP:
            return []
        return [pack_frame(KIND_ECHO, worker_id, payload)]

    return handler


def _build(backend):
    if backend == "sim":
        handlers = [_echo_handler(i) for i in range(NUM_WORKERS)]
        return make_transport("sim", NUM_WORKERS, handlers=handlers)
    return make_transport(backend, NUM_WORKERS)


def _shutdown(transport):
    for worker_id in range(transport.num_workers):
        try:
            if transport.alive(worker_id):
                transport.send(worker_id, pack_frame(KIND_STOP, 0))
        except TransportClosed:
            pass
    transport.close()


@pytest.fixture(params=TRANSPORT_BACKENDS)
def transport(request):
    t = _build(request.param)
    try:
        yield t
    finally:
        _shutdown(t)


class TestConformance:
    def test_name_matches_backend(self, transport):
        assert transport.name in TRANSPORT_BACKENDS
        assert transport.num_workers == NUM_WORKERS

    def test_echo_roundtrip_every_worker(self, transport):
        for worker_id in range(NUM_WORKERS):
            payload = b"ping-%d" % worker_id
            transport.send(worker_id, pack_frame(KIND_ECHO, 0, payload))
            kind, sender, got = unpack_frame(transport.recv(worker_id, 20.0))
            assert (kind, sender, got) == (KIND_ECHO, worker_id, payload)

    def test_per_worker_ordering_preserved(self, transport):
        for i in range(5):
            transport.send(0, pack_frame(KIND_ECHO, 0, b"seq-%d" % i))
        for i in range(5):
            _, _, payload = unpack_frame(transport.recv(0, 20.0))
            assert payload == b"seq-%d" % i

    def test_large_payload_survives(self, transport):
        # Bigger than any pipe buffer / single socket read.
        payload = bytes(range(256)) * 4096  # 1 MiB
        transport.send(1, pack_frame(KIND_ECHO, 0, payload))
        _, _, got = unpack_frame(transport.recv(1, 30.0))
        assert got == payload

    def test_recv_timeout_raises(self, transport):
        with pytest.raises(TransportTimeout):
            transport.recv(0, 0.05)

    def test_invalid_worker_id_rejected(self, transport):
        with pytest.raises(ValueError):
            transport.send(NUM_WORKERS, b"")
        with pytest.raises(ValueError):
            transport.recv(-1, 0.0)

    def test_alive_then_terminated(self, transport):
        assert transport.alive(0)
        assert transport.alive(1)
        transport.terminate(1)
        if transport.name in ("mp", "tcp"):
            # Real processes take a moment to die.
            import time

            deadline = time.monotonic() + 10.0
            while transport.alive(1) and time.monotonic() < deadline:
                time.sleep(0.02)
        assert not transport.alive(1)
        # Worker 0 is unaffected.
        transport.send(0, pack_frame(KIND_ECHO, 0, b"still-here"))
        _, _, payload = unpack_frame(transport.recv(0, 20.0))
        assert payload == b"still-here"

    def test_send_after_terminate_fails(self, transport):
        transport.terminate(0)
        if transport.name == "mp":
            # The pipe stays writable until the process death is
            # observed; a recv sees the hangup.
            transport._procs[0].join(timeout=10.0)
            with pytest.raises((TransportClosed, TransportTimeout)):
                transport.recv(0, 0.2)
        else:
            with pytest.raises((TransportClosed, TransportTimeout)):
                transport.send(0, pack_frame(KIND_ECHO, 0, b"x"))
                transport.recv(0, 0.2)

    @pytest.mark.parametrize("backend", TRANSPORT_BACKENDS)
    def test_context_manager_closes(self, backend):
        with _build(backend) as t:
            t.send(0, pack_frame(KIND_ECHO, 0, b"cm"))
            _, _, payload = unpack_frame(t.recv(0, 20.0))
            assert payload == b"cm"
            _shutdown(t)


# ----------------------------------------------------------------------
# Version negotiation: the HELLO exchange over every backend.
#
# A v2-capable worker opens with a HELLO carrying its supported
# ranges; the driver pins the highest mutually supported pair and
# replies.  A v1-capped worker emits the exact pre-v2 byte stream
# (silence on mp, the legacy ACK hello on tcp/aio) and is pinned to
# (1, 1) without any extra traffic.  Mixed fleets therefore negotiate
# per connection, and a fleet with no common version is a structured
# construction failure, not a hang.
# ----------------------------------------------------------------------
V2_ONLY_CAPS = ProtocolCaps(
    frame_min=2, frame_max=2, payload_min=2, payload_max=2
)

_FLEETS = {
    "v1-only": ({0: V1_CAPS, 1: V1_CAPS}, {0: (1, 1), 1: (1, 1)}),
    "v2-only": ({0: DEFAULT_CAPS, 1: DEFAULT_CAPS}, {0: (2, 2), 1: (2, 2)}),
    "mixed": ({0: V1_CAPS, 1: DEFAULT_CAPS}, {0: (1, 1), 1: (2, 2)}),
}


def _build_with_caps(backend, worker_caps, driver_caps=None):
    kwargs = {"driver_caps": driver_caps, "worker_caps": worker_caps}
    if backend == "sim":
        handlers = [_echo_handler(i) for i in range(NUM_WORKERS)]
        return make_transport("sim", NUM_WORKERS, handlers=handlers, **kwargs)
    return make_transport(backend, NUM_WORKERS, **kwargs)


class TestVersionNegotiation:
    @pytest.mark.parametrize("fleet", sorted(_FLEETS))
    @pytest.mark.parametrize("backend", TRANSPORT_BACKENDS)
    def test_negotiation_matrix(self, backend, fleet):
        worker_caps, expected = _FLEETS[fleet]
        t = _build_with_caps(backend, worker_caps)
        try:
            assert dict(t.negotiated) == expected
            for worker_id in range(NUM_WORKERS):
                assert t.negotiated_versions(worker_id) == expected[worker_id]
            # The negotiated connection still moves frames: the serve
            # loop answered the HELLO exchange and is back in dispatch.
            for worker_id in range(NUM_WORKERS):
                t.send(worker_id, pack_frame(KIND_ECHO, 0, b"post-hello"))
                kind, sender, payload = unpack_frame(t.recv(worker_id, 20.0))
                assert (kind, sender, payload) == (
                    KIND_ECHO, worker_id, b"post-hello"
                )
        finally:
            _shutdown(t)

    @pytest.mark.parametrize("backend", TRANSPORT_BACKENDS)
    def test_default_fleet_negotiates_v2(self, backend):
        t = _build(backend)
        try:
            assert dict(t.negotiated) == {0: (2, 2), 1: (2, 2)}
        finally:
            _shutdown(t)

    @pytest.mark.parametrize("backend", TRANSPORT_BACKENDS)
    def test_no_common_version_is_structured_failure(self, backend):
        # A v1-pinned driver cannot speak to a v2-only worker: the
        # transport must fail construction with NegotiationError (a
        # FrameError), never hang or train on garbage.
        with pytest.raises(NegotiationError, match="no common"):
            t = _build_with_caps(
                backend,
                {0: V2_ONLY_CAPS, 1: V1_CAPS},
                driver_caps=V1_CAPS,
            )
            _shutdown(t)  # pragma: no cover - construction must raise

    def test_negotiation_error_is_frame_error(self):
        assert issubclass(NegotiationError, FrameError)


class TestNegotiatedTraining:
    """Fleet composition must not change the math.

    The same fixed-seed logistic regression must land on bit-identical
    parameters whether the fleet is all-v1, all-v2 (with entropy
    coding and streamed frames), or mixed — the v2 payload carries the
    identical message, so theta cannot move.  The mp cell is the
    acceptance bar; tcp and aio pin the socket backends.
    """

    @pytest.fixture(scope="class")
    def split(self):
        from repro.data import kdd10_like, train_test_split

        return train_test_split(kdd10_like(seed=7, scale=0.02), seed=7)

    def _theta(self, split, backend, worker_caps=None, **cfg):
        from repro.runtime import RuntimeConfig
        from tests.test_runtime_train import make_trainer

        trainer = make_trainer(
            split,
            backend,
            runtime=RuntimeConfig(
                backend=backend, worker_caps=worker_caps, **cfg
            ),
        )
        trainer.train(*split)
        return trainer.theta

    def test_mixed_fleet_trains_bit_identical_on_mp(self, split):
        from tests.test_runtime_train import NUM_WORKERS as TRAIN_WORKERS

        all_v1 = self._theta(
            split, "mp",
            worker_caps={w: V1_CAPS for w in range(TRAIN_WORKERS)},
        )
        mixed = self._theta(
            split, "mp",
            worker_caps={0: V1_CAPS},  # the rest default to v2
            entropy_coding=True,
            chunk_bytes=4096,
        )
        all_v2 = self._theta(
            split, "mp", entropy_coding=True, chunk_bytes=4096
        )
        np.testing.assert_array_equal(all_v1, mixed)
        np.testing.assert_array_equal(all_v1, all_v2)

    def test_sim_cluster_streams_chunked_updates(self):
        """The default sim fleet negotiates frame v2, so an update
        larger than ``chunk_bytes`` broadcasts as a CHUNK/END stream
        straight into the in-process handler — regression for
        ``_sim_handler`` forwarding chunk frames to
        ``WorkerRuntime.handle`` and crashing the run."""
        from repro.core.serialization import serialize_message
        from repro.data import kdd10_like
        from repro.runtime import RuntimeCluster, RuntimeConfig
        from tests.test_runtime_faults import (
            NUM_WORKERS as SIM_WORKERS,
            make_bootstraps,
        )

        dataset = kdd10_like(seed=3, scale=0.02)

        def run(**cfg):
            config = RuntimeConfig(backend="sim", **cfg)
            with RuntimeCluster(make_bootstraps(dataset), config) as cluster:
                cluster.start_epoch(0)
                first = cluster.step(0, 0.1)
                update = next(
                    r.message for r in first.values() if r.has_batch
                )
                update_bytes = serialize_message(update)
                acked = cluster.broadcast(0, 0.1, update_bytes, message=update)
                second = cluster.step(1, 0.1)
            losses = [
                (w, r.local_loss, r.gradient_nnz)
                for w, r in sorted(second.items())
            ]
            return update_bytes, acked, losses

        v1_caps = {w: V1_CAPS for w in range(SIM_WORKERS)}
        _, acked_v1, second_v1 = run(worker_caps=v1_caps)
        update_bytes, acked, second = run(
            entropy_coding=True, chunk_bytes=256
        )
        # The update genuinely exceeded one chunk, so it streamed.
        assert len(update_bytes) > 256
        assert acked == acked_v1 == list(range(SIM_WORKERS))
        # Post-update gradients are bit-identical across fleets.
        assert second == second_v1

    @pytest.mark.parametrize("backend", ["tcp", "aio"])
    def test_mixed_fleet_matches_v1_fleet_on_sockets(self, split, backend):
        from tests.test_runtime_train import NUM_WORKERS as TRAIN_WORKERS

        all_v1 = self._theta(
            split, backend,
            worker_caps={w: V1_CAPS for w in range(TRAIN_WORKERS)},
        )
        mixed = self._theta(
            split, backend,
            worker_caps={0: V1_CAPS},
            entropy_coding=True,
            chunk_bytes=4096,
        )
        np.testing.assert_array_equal(all_v1, mixed)


class _ScriptedEndpoint:
    """Minimal worker-side endpoint: recv pops a scripted frame list
    (None at the end plays the driver hang-up), send records."""

    def __init__(self, frames):
        self.frames = list(frames)
        self.sent = []

    def recv(self):
        if self.frames:
            return self.frames.pop(0)
        return None

    def send(self, frame):
        self.sent.append(bytes(frame))

    def close(self):
        pass


class TestServeChunkRecovery:
    """A chunked request that dies mid-sequence and is retried from
    seq 0 must reassemble cleanly in ``serve()`` — regression for the
    strict reassembler turning the retried stream's sequence reset
    into an ERROR frame and worker-process exit."""

    def _stub_runtime(self, monkeypatch, calls):
        from repro.runtime import worker_main

        class StubRuntime:
            def __init__(self, bootstrap):
                pass

            def set_wire(self, frame_v, payload_v, ops=False):
                pass

            def handle(self, kind, payload):
                raise AssertionError(
                    f"frame kind {kind} must not reach handle()"
                )

            def handle_chunks(self, inner_kind, chunks):
                calls.append((inner_kind, b"".join(chunks)))
                return [pack_frame(KIND_ACK, 1, pack_ack(0))]

        class StubBootstrap:
            heartbeat_interval = 0.0
            heartbeat_jitter = 0.0
            seed = 0
            trace_dir = None
            run_id = None

            @staticmethod
            def from_bytes(payload):
                return StubBootstrap()

        monkeypatch.setattr(worker_main, "WorkerRuntime", StubRuntime)
        monkeypatch.setattr(worker_main, "WorkerBootstrap", StubBootstrap)
        return worker_main

    def test_retried_stream_reassembles_once(self, monkeypatch):
        calls = []
        worker_main = self._stub_runtime(monkeypatch, calls)
        body = bytes(range(256)) * 2
        stream = list(
            iter_chunk_frames(KIND_UPDATE, 0xFFFF, [body], chunk_bytes=64)
        )
        assert len(stream) >= 5  # several CHUNKs + END
        frames = [pack_frame(KIND_INIT, 0xFFFF, b"")]
        frames += stream[:3]  # the send died after three chunks...
        frames += stream      # ...and the supervisor re-sent it all
        endpoint = _ScriptedEndpoint(frames)
        worker_main.serve(
            endpoint, 1, frame_version=2, payload_version=2
        )
        assert calls == [(KIND_UPDATE, body)]
        kinds = [unpack_frame(f)[0] for f in endpoint.sent]
        assert kinds == [KIND_READY, KIND_ACK]
        assert KIND_ERROR not in kinds

    def test_stale_tail_then_fresh_stream(self, monkeypatch):
        calls = []
        worker_main = self._stub_runtime(monkeypatch, calls)
        body = bytes(range(256)) * 2
        stream = list(
            iter_chunk_frames(KIND_UPDATE, 0xFFFF, [body], chunk_bytes=64)
        )
        frames = [pack_frame(KIND_INIT, 0xFFFF, b"")]
        frames += stream[2:]  # stale mid-stream tail incl. its END
        frames += stream      # the full retried stream
        endpoint = _ScriptedEndpoint(frames)
        worker_main.serve(
            endpoint, 1, frame_version=2, payload_version=2
        )
        assert calls == [(KIND_UPDATE, body)]
        kinds = [unpack_frame(f)[0] for f in endpoint.sent]
        assert kinds == [KIND_READY, KIND_ACK]


# ----------------------------------------------------------------------
# Stream reassembly: partial reads, split frames, coalesced frames.
#
# The socket backends must tolerate every way TCP can slice a byte
# stream: one byte per segment, a frame split mid-header or
# mid-payload, and many frames arriving coalesced in one read.  A raw
# client socket (spawn_workers=False) plays the worker so the tests
# control the exact write boundaries.
# ----------------------------------------------------------------------
_HELLO = pack_frame(KIND_ACK, 0, pack_ack(0))


def _dribble(sock, chunks, delay=0.002):
    """Write ``chunks`` with pauses so each lands in its own segment."""
    for chunk in chunks:
        sock.sendall(chunk)
        if delay:
            time.sleep(delay)


@pytest.fixture(params=["tcp", "aio"])
def raw_stream(request):
    """(transport, raw client socket) — no handshake performed yet."""
    if request.param == "tcp":
        t = TcpTransport(1, spawn_workers=False)
    else:
        t = AioTransport(1, spawn_workers=False)
    sock = socket.create_connection(("127.0.0.1", t.port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        yield t, sock
    finally:
        try:
            sock.close()
        except OSError:
            pass
        t.close()


def _handshake(t):
    if t.name == "tcp":
        t.accept_connections(timeout=10.0)
    else:
        t.wait_connected(10.0)


class TestStreamReassembly:
    def test_one_byte_at_a_time(self, raw_stream):
        t, sock = raw_stream
        frame = pack_frame(KIND_ECHO, 0, b"dribbled-one-byte-at-a-time")
        data = _HELLO + frame
        writer = threading.Thread(
            target=_dribble,
            args=(sock, [data[i:i + 1] for i in range(len(data))]),
            kwargs={"delay": 0.0005},
        )
        writer.start()
        try:
            _handshake(t)
            assert t.recv(0, 10.0) == frame
        finally:
            writer.join()

    def test_frame_split_across_recv_boundaries(self, raw_stream):
        t, sock = raw_stream
        sock.sendall(_HELLO)
        _handshake(t)
        frame = pack_frame(KIND_ECHO, 0, b"p" * 4096)
        # Split mid-header, then mid-payload.
        sock.sendall(frame[: HEADER_SIZE // 2])
        with pytest.raises(TransportTimeout):
            t.recv(0, 0.05)  # only half a header: no frame surfaces
        sock.sendall(frame[HEADER_SIZE // 2: HEADER_SIZE + 100])
        with pytest.raises(TransportTimeout):
            t.recv(0, 0.05)  # header + partial payload: still no frame
        sock.sendall(frame[HEADER_SIZE + 100:])
        assert t.recv(0, 10.0) == frame

    def test_coalesced_back_to_back_frames(self, raw_stream):
        t, sock = raw_stream
        frames = [
            pack_frame(KIND_ECHO, 0, b"coalesced-%d" % i) for i in range(3)
        ]
        # Hello and all three frames in one write: one kernel buffer,
        # likely one recv_into on the driver side.
        sock.sendall(_HELLO + b"".join(frames))
        _handshake(t)
        for frame in frames:
            assert t.recv(0, 10.0) == frame

    def test_large_send_resumes_after_short_writes(self, raw_stream):
        # Driver-side short-write handling: a frame far larger than the
        # socket buffer forces partial writes that must resume cleanly.
        t, sock = raw_stream
        sock.sendall(_HELLO)
        _handshake(t)
        frame = pack_frame(KIND_ECHO, 0, bytes(range(256)) * 8192)  # 2 MiB
        writer = threading.Thread(target=t.send, args=(0, frame))
        writer.start()
        try:
            got = bytearray()
            sock.settimeout(10.0)
            while len(got) < len(frame):
                chunk = sock.recv(65536)
                assert chunk, "driver closed mid-frame"
                got.extend(chunk)
        finally:
            writer.join()
        assert bytes(got) == frame


class TestFrameAssembler:
    """Unit-level reassembly: the codec under the socket backends."""

    def test_byte_at_a_time_feed(self):
        frame = pack_frame(KIND_ECHO, 3, b"tiny")
        asm = FrameAssembler()
        for i, byte in enumerate(frame):
            assert asm.next_frame() is None, f"frame surfaced at byte {i}"
            asm.feed(bytes([byte]))
        assert asm.next_frame() == frame
        assert asm.next_frame() is None

    def test_coalesced_frames_in_one_feed(self):
        frames = [pack_frame(KIND_ECHO, i, b"x" * i) for i in range(5)]
        asm = FrameAssembler()
        asm.feed(b"".join(frames))
        for frame in frames:
            assert asm.next_frame() == frame
        assert asm.next_frame() is None

    def test_split_exactly_at_header_boundary(self):
        frame = pack_frame(KIND_ECHO, 0, b"payload-after-header")
        asm = FrameAssembler()
        asm.feed(frame[:HEADER_SIZE])
        assert asm.next_frame() is None
        asm.feed(frame[HEADER_SIZE:])
        assert asm.next_frame() == frame

    def test_grows_past_initial_capacity(self):
        frame = pack_frame(KIND_ECHO, 0, bytes(range(256)) * 2048)  # 512 KiB
        asm = FrameAssembler(initial_capacity=64)
        for i in range(0, len(frame), 4096):
            asm.feed(frame[i:i + 4096])
        assert asm.next_frame() == frame

    def test_writable_view_survives_growth(self):
        # Regression: growing must swap buffers, not resize in place —
        # resizing a bytearray with a live memoryview export raises
        # BufferError.
        asm = FrameAssembler(initial_capacity=32)
        view = asm.writable(16)
        bigger = asm.writable(1024)  # must not raise while `view` lives
        assert len(bigger) >= 1024
        del view

    def test_bad_magic_raises(self):
        asm = FrameAssembler()
        asm.feed(b"JUNK" + bytes(HEADER_SIZE - 4))
        with pytest.raises(FrameError):
            asm.next_frame()
