"""Smoke tests: every example script must run cleanly end-to-end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    fname for fname in os.listdir(EXAMPLES_DIR) if fname.endswith(".py")
)


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 8  # the README promises a broad example set
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
