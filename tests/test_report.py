"""Tests for the consolidated report generator."""

import os

import pytest

from repro.bench.report import RESULT_ORDER, build_report, write_report
from repro.cli import main


class TestBuildReport:
    def test_missing_directory(self, tmp_path):
        markdown, missing = build_report(str(tmp_path / "nope"))
        assert len(missing) == len(RESULT_ORDER)
        assert "no archived result" in markdown

    def test_includes_archived_sections(self, tmp_path):
        (tmp_path / "fig4_gradient_distribution.txt").write_text("FIG4 BODY\n")
        markdown, missing = build_report(str(tmp_path))
        assert "FIG4 BODY" in markdown
        assert "fig4_gradient_distribution" not in missing
        assert "fig9_end_to_end_runtime" in missing

    def test_unexpected_results_appended(self, tmp_path):
        (tmp_path / "my_custom_bench.txt").write_text("CUSTOM\n")
        markdown, _ = build_report(str(tmp_path))
        assert "## my_custom_bench" in markdown
        assert "CUSTOM" in markdown

    def test_sections_in_paper_order(self, tmp_path):
        for stem, _ in RESULT_ORDER:
            (tmp_path / f"{stem}.txt").write_text(stem + "\n")
        markdown, missing = build_report(str(tmp_path))
        assert not missing
        positions = [markdown.index(heading) for _, heading in RESULT_ORDER]
        assert positions == sorted(positions)

    def test_write_report(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig4_gradient_distribution.txt").write_text("X\n")
        out_path, missing = write_report(str(results))
        assert os.path.exists(out_path)
        assert out_path.endswith("REPORT.md")
        assert missing  # most benches not run in this temp dir


class TestReportCli:
    def test_cli_happy_path(self, tmp_path, capsys, monkeypatch):
        results = tmp_path / "benchmarks" / "results"
        results.mkdir(parents=True)
        (results / "fig4_gradient_distribution.txt").write_text("X\n")
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "benchmarks" / "REPORT.md").exists()

    def test_cli_missing_results(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 2
        assert "no results directory" in capsys.readouterr().err
