"""Elastic + stale training over real backends.

The fleet subsystem's acceptance bar mirrors the runtime one: a
fixed-seed run with workers joining and leaving mid-training — and
optionally a bounded-staleness gather — must produce *identical*
model parameters whether the control frames move through the
simulated loop or through real spawned worker processes.
"""

import numpy as np
import pytest

from repro.core import SketchMLCompressor, SketchMLConfig
from repro.data import kdd10_like, train_test_split
from repro.distributed.network import infinite_bandwidth
from repro.fleet import (
    FleetConfig,
    FleetTrainer,
    MembershipEvent,
    MembershipSchedule,
)
from repro.models import make_model
from repro.optim import SGD

SEED = 7
EPOCHS = 2

#: Universe of 4, starting with 3 active; worker 3 joins before round 2
#: and worker 1 leaves before round 4 — both land inside the ~8 global
#: rounds a 2-epoch run produces at batch_fraction 0.25.
SCHEDULE = MembershipSchedule(
    num_workers=4,
    start=(0, 1, 2),
    events=(
        MembershipEvent(round=2, joins=(3,)),
        MembershipEvent(round=4, leaves=(1,)),
    ),
)


@pytest.fixture(scope="module")
def split():
    return train_test_split(kdd10_like(seed=SEED, scale=0.02), seed=SEED)


def run_fleet(split, backend, staleness=None, schedule=SCHEDULE):
    train, test = split
    trainer = FleetTrainer(
        model=make_model("lr", train.num_features),
        optimizer=SGD(learning_rate=0.1),
        compressor_factory=lambda: SketchMLCompressor(
            SketchMLConfig.full(seed=SEED)
        ),
        network=infinite_bandwidth(),
        schedule=schedule,
        config=FleetConfig(
            epochs=EPOCHS,
            batch_fraction=0.25,
            seed=SEED,
            backend=backend,
            staleness=staleness,
        ),
    )
    history = trainer.train(train, test)
    return history, trainer


@pytest.fixture(scope="module")
def sim_elastic(split):
    return run_fleet(split, "sim")


@pytest.fixture(scope="module")
def sim_stale(split):
    return run_fleet(split, "sim", staleness=2)


class TestElasticEquivalence:
    def test_mp_matches_sim_bit_identically(self, split, sim_elastic):
        sim_history, sim_trainer = sim_elastic
        history, trainer = run_fleet(split, "mp")
        # Same schedule + seed ⇒ same control frames, same updates,
        # same parameters — exactly (no tolerance).
        np.testing.assert_array_equal(trainer.theta, sim_trainer.theta)
        assert history.num_epochs == sim_history.num_epochs
        for got, ref in zip(history.epochs, sim_history.epochs):
            assert got.train_loss == ref.train_loss
            assert got.test_loss == ref.test_loss

    def test_sim_reproduces_itself(self, split, sim_elastic):
        _, sim_trainer = sim_elastic
        _, trainer = run_fleet(split, "sim")
        np.testing.assert_array_equal(trainer.theta, sim_trainer.theta)

    def test_membership_log_follows_schedule(self, sim_elastic):
        _, trainer = sim_elastic
        log = dict(trainer.membership_log)
        assert log[0] == (0, 1, 2)
        assert log[2] == (0, 1, 2, 3)
        assert log[4] == (0, 2, 3)


class TestRoundWeights:
    def test_weights_sum_to_one_every_round(self, sim_elastic):
        _, trainer = sim_elastic
        assert trainer.round_weights
        for weights in trainer.round_weights:
            assert sum(weights.values()) == pytest.approx(1.0, abs=1e-12)

    def test_weights_shift_with_membership(self, sim_elastic):
        # A 3-worker round and a 4-worker round cannot weight the same
        # contributors identically — resharding changes the fractions.
        _, trainer = sim_elastic
        sizes = {len(w) for w in trainer.round_weights}
        assert {3, 4} <= sizes


class TestStaleEquivalence:
    def test_stale_mp_matches_sim_bit_identically(self, split, sim_stale):
        # The virtual clock, the SSP gate, and the update journal are
        # all driver-side seeded state, so the bounded-async regime is
        # just as reproducible as the synchronous one.
        _, sim_trainer = sim_stale
        _, trainer = run_fleet(split, "mp", staleness=2)
        np.testing.assert_array_equal(trainer.theta, sim_trainer.theta)

    def test_stale_zero_static_matches_across_backends(self, split):
        # N = 0 over a static membership: synchronous semantics with
        # per-worker pacing, still bit-identical sim vs mp.
        static = MembershipSchedule(num_workers=3)
        _, sim_trainer = run_fleet(split, "sim", staleness=0, schedule=static)
        _, mp_trainer = run_fleet(split, "mp", staleness=0, schedule=static)
        np.testing.assert_array_equal(mp_trainer.theta, sim_trainer.theta)


class TestConfigValidation:
    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError, match="staleness"):
            FleetConfig(staleness=-1)

    def test_bad_batch_fraction_rejected(self):
        with pytest.raises(ValueError, match="batch_fraction"):
            FleetConfig(batch_fraction=0.0)
