"""The event-driven backend's own guarantees, beyond conformance.

Conformance proves ``aio`` speaks the Transport contract; this file
pins the properties the backend was built for: bounded queues that
surface :class:`TransportBackpressure` (and become a *structured*
supervision error one layer up, on both ``mp`` and ``aio``),
arrival-order readiness hints, inbox pause/resume flow control, and
the seeded heartbeat jitter schedule.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.perf.soak_bench import SOAK_MODES, run_soak_bench
from repro.runtime.aio import AioTransport
from repro.runtime.framing import (
    KIND_ACK,
    KIND_ECHO,
    pack_ack,
    pack_frame,
    unpack_frame,
)
from repro.runtime.supervision import (
    RetryExhaustedError,
    SupervisionConfig,
    Supervisor,
)
from repro.runtime.transport import (
    MultiprocessTransport,
    TransportBackpressure,
)
from repro.runtime.worker_main import heartbeat_delays


def _hello(worker_id):
    return pack_frame(KIND_ACK, worker_id, pack_ack(worker_id))


def _client(port, worker_id):
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.sendall(_hello(worker_id))
    return sock


class TestAioBackpressure:
    def test_stuck_consumer_raises_backpressure(self):
        # A client that never reads: the kernel buffers fill, the
        # bounded outbox fills, and send() must fail loudly instead of
        # buffering without limit.
        transport = AioTransport(
            1, spawn_workers=False, max_outbox_bytes=256 * 1024
        )
        transport.SEND_TIMEOUT = 0.2
        sock = _client(transport.port, 0)
        try:
            transport.wait_connected(10.0)
            frame = pack_frame(KIND_ECHO, 0, bytes(512 * 1024))
            with pytest.raises(TransportBackpressure):
                for _ in range(100):
                    transport.send(0, frame)
        finally:
            sock.close()
            transport.close()

    def test_backpressure_surfaces_as_structured_supervision_error(self):
        transport = AioTransport(
            1, spawn_workers=False, max_outbox_bytes=256 * 1024
        )
        transport.SEND_TIMEOUT = 0.2
        sock = _client(transport.port, 0)
        try:
            transport.wait_connected(10.0)
            frame = pack_frame(KIND_ECHO, 0, bytes(512 * 1024))
            # Jam the outbox first (the client never reads).
            with pytest.raises(TransportBackpressure):
                for _ in range(100):
                    transport.send(0, frame)
            supervisor = Supervisor(
                transport,
                SupervisionConfig(
                    message_timeout=0.2,
                    max_retries=1,
                    backoff_base=0.0,
                    backoff_jitter=0.0,
                ),
            )
            with pytest.raises(RetryExhaustedError) as excinfo:
                supervisor.request(
                    0, frame, phase="step", expect_kind=KIND_ECHO
                )
            err = excinfo.value
            assert err.worker_id == 0
            assert err.phase == "step"
            assert isinstance(err.cause, TransportBackpressure)
        finally:
            sock.close()
            transport.close()


class TestMpBackpressure:
    def test_full_pipe_surfaces_as_structured_supervision_error(self):
        # The worker echoes every frame; nobody drains the replies, so
        # the worker eventually blocks writing and stops reading, the
        # driver-side pipe fills, and send() must raise instead of
        # blocking forever.  Frames stay under PIPE_BUF so a positive
        # writability poll means the whole frame fits.
        transport = MultiprocessTransport(1)
        transport.SEND_TIMEOUT = 0.2
        try:
            frame = pack_frame(KIND_ECHO, 0, bytes(2048))
            # Warm up: one full round trip so a later non-writable pipe
            # means a genuinely blocked worker, not a slow spawn.
            transport.send(0, frame)
            kind, _, _ = unpack_frame(transport.recv(0, 20.0))
            assert kind == KIND_ECHO
            with pytest.raises(TransportBackpressure):
                for _ in range(5000):
                    transport.send(0, frame)
            # The jam is stable: the worker is blocked writing replies
            # nobody drains, so the next send fails the same way.
            with pytest.raises(TransportBackpressure):
                transport.send(0, frame)
            supervisor = Supervisor(
                transport,
                SupervisionConfig(
                    message_timeout=0.2,
                    max_retries=1,
                    backoff_base=0.0,
                    backoff_jitter=0.0,
                ),
            )
            with pytest.raises(RetryExhaustedError) as excinfo:
                supervisor.request(
                    0, frame, phase="step", expect_kind=KIND_ECHO
                )
            assert isinstance(excinfo.value.cause, TransportBackpressure)
        finally:
            transport.close()


class TestReadyWorkers:
    def test_reports_arrival_order_not_id_order(self):
        transport = AioTransport(2, spawn_workers=False)
        socks = [_client(transport.port, w) for w in range(2)]
        try:
            transport.wait_connected(10.0)
            assert transport.ready_workers() == []
            # Worker 1 replies first; the hint must say so while
            # worker 0 has sent nothing.
            socks[1].sendall(pack_frame(KIND_ECHO, 1, b"early"))
            ready = transport.ready_workers(timeout=5.0)
            assert ready == [1]
            assert transport.recv(1, 1.0) == pack_frame(
                KIND_ECHO, 1, b"early"
            )
            assert transport.ready_workers() == []
        finally:
            for sock in socks:
                sock.close()
            transport.close()

    def test_candidates_filter_and_timeout(self):
        transport = AioTransport(2, spawn_workers=False)
        socks = [_client(transport.port, w) for w in range(2)]
        try:
            transport.wait_connected(10.0)
            socks[1].sendall(pack_frame(KIND_ECHO, 1, b"x"))
            deadline_ready = transport.ready_workers([1], timeout=5.0)
            assert deadline_ready == [1]
            # Worker 0 stays silent: a bounded wait returns empty.
            start = time.monotonic()
            assert transport.ready_workers([0], timeout=0.1) == []
            assert time.monotonic() - start < 2.0
        finally:
            for sock in socks:
                sock.close()
            transport.close()

    def test_blocking_wait_wakes_on_late_arrival(self):
        transport = AioTransport(1, spawn_workers=False)
        sock = _client(transport.port, 0)
        try:
            transport.wait_connected(10.0)

            def late_send():
                time.sleep(0.1)
                sock.sendall(pack_frame(KIND_ECHO, 0, b"late"))

            writer = threading.Thread(target=late_send)
            writer.start()
            try:
                assert transport.ready_workers(timeout=5.0) == [0]
            finally:
                writer.join()
        finally:
            sock.close()
            transport.close()


class TestInboxFlowControl:
    def test_paused_reads_resume_without_losing_frames(self):
        # Inbox bound of 4, 32 frames in flight: reads pause (flow
        # control pushes back on the sender) and resume as the caller
        # drains — nothing is dropped, order is preserved.
        transport = AioTransport(1, spawn_workers=False, max_inbox_frames=4)
        sock = _client(transport.port, 0)
        try:
            transport.wait_connected(10.0)
            frames = [
                pack_frame(KIND_ECHO, 0, b"flood-%d" % i) for i in range(32)
            ]
            sock.sendall(b"".join(frames))
            for frame in frames:
                assert transport.recv(0, 10.0) == frame
        finally:
            sock.close()
            transport.close()


class TestHeartbeatJitter:
    def test_schedule_is_deterministic_under_fixed_seed(self):
        a = heartbeat_delays(1.0, 0.2, seed=7, worker_id=3)
        b = heartbeat_delays(1.0, 0.2, seed=7, worker_id=3)
        assert [next(a) for _ in range(10)] == [next(b) for _ in range(10)]

    def test_workers_get_distinct_phases(self):
        phases = {
            next(heartbeat_delays(1.0, 0.2, seed=7, worker_id=w))
            for w in range(16)
        }
        assert len(phases) == 16  # no two workers beat in lockstep

    def test_delays_stay_within_jitter_bounds(self):
        interval, jitter = 0.5, 0.2
        gen = heartbeat_delays(interval, jitter, seed=1, worker_id=0)
        phase = next(gen)
        assert 0.0 <= phase < interval
        for _ in range(100):
            delay = next(gen)
            assert interval * (1 - jitter / 2) <= delay
            assert delay <= interval * (1 + jitter / 2)

    def test_zero_jitter_keeps_exact_interval(self):
        gen = heartbeat_delays(0.25, 0.0, seed=3, worker_id=2)
        next(gen)  # phase is still randomised
        assert [next(gen) for _ in range(5)] == [0.25] * 5

    def test_config_plumbing_defaults(self):
        assert SupervisionConfig().heartbeat_jitter == 0.2
        with pytest.raises(ValueError):
            SupervisionConfig(heartbeat_jitter=1.5)


class TestSoakBenchSmoke:
    def test_all_modes_run_and_report(self):
        results = run_soak_bench(worker_counts=[4], rounds=2)
        assert [r.name for r in results] == [
            f"soak/{mode}/w4" for mode in SOAK_MODES
        ]
        for result in results:
            record = result.to_json()
            assert result.elements == 8  # 4 workers × 2 rounds
            assert record["messages_per_s"] > 0
            assert 0 < record["p50_ms"] <= record["p99_ms"]
            assert record["workers"] == 4
            assert record["rounds"] == 2

    def test_delay_schedule_is_seeded(self):
        from repro.perf.soak_bench import WorkerSwarm

        a = WorkerSwarm("127.0.0.1", 1, 2, b"", seed=5)
        b = WorkerSwarm("127.0.0.1", 1, 2, b"", seed=5)
        delays_a = [a._delay(0) for _ in range(20)]
        delays_b = [b._delay(0) for _ in range(20)]
        assert delays_a == delays_b
        assert delays_a != [a._delay(1) for _ in range(20)]
