"""Run the docstring examples of the core public modules as tests."""

import doctest

import pytest

import repro.compression.qsgd
import repro.compression.zipml
import repro.core.compressor
import repro.core.quantizer
import repro.sketch.frequency.space_saving
import repro.sketch.quantile.gk
import repro.sketch.quantile.kll
import repro.sketch.quantile.tdigest

MODULES = [
    repro.sketch.quantile.gk,
    repro.sketch.quantile.kll,
    repro.sketch.quantile.tdigest,
    repro.sketch.frequency.space_saving,
    repro.core.quantizer,
    repro.core.compressor,
    repro.compression.zipml,
    repro.compression.qsgd,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0
