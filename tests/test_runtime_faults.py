"""Every injected fault path, demonstrably exercised end-to-end.

Each test runs a real :class:`RuntimeCluster` protocol round over the
``sim`` transport with a surgically-placed :class:`FaultSchedule`
entry, then asserts both that the fault fired (transport stats) and
that the supervision layer absorbed it the intended way (retry /
idempotency / rejection / policy).
"""

import numpy as np
import pytest

from repro import sanitize
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.data import kdd10_like
from repro.data.splits import partition_rows
from repro.models import make_model
from repro.optim import SGD
from repro.runtime import (
    FaultConfig,
    FaultSchedule,
    FaultyTransport,
    RuntimeCluster,
    RuntimeConfig,
    SupervisionConfig,
    WorkerBootstrap,
    WorkerCrashedError,
)

NUM_WORKERS = 2
SEED = 3


def make_bootstraps(dataset, num_workers=NUM_WORKERS):
    model = make_model("lr", dataset.num_features)
    partitions = partition_rows(dataset.num_rows, num_workers, seed=SEED)
    bootstraps = []
    for worker_id, rows in enumerate(partitions):
        part = dataset.subset(rows)
        bootstraps.append(
            WorkerBootstrap(
                worker_id=worker_id,
                dataset=part,
                model=model,
                optimizer=SGD(learning_rate=0.1),
                compressor=SketchMLCompressor(SketchMLConfig.full(seed=SEED)),
                batch_size=max(1, part.num_rows // 4),
                seed=SEED,
            )
        )
    return bootstraps


def make_cluster(dataset, schedule=None, faults=None, **sup_overrides):
    defaults = dict(
        message_timeout=5.0, max_retries=3,
        backoff_base=0.0, backoff_jitter=0.0, seed=SEED,
    )
    defaults.update(sup_overrides)
    config = RuntimeConfig(
        backend="sim",
        supervision=SupervisionConfig(**defaults),
        faults=faults,
        fault_schedule=schedule,
    )
    return RuntimeCluster(make_bootstraps(dataset), config)


@pytest.fixture(scope="module")
def dataset():
    return kdd10_like(seed=SEED, scale=0.02)


@pytest.fixture(scope="module")
def clean_round(dataset):
    """Reference round results with no faults injected."""
    with make_cluster(dataset) as cluster:
        cluster.start_epoch(0)
        results = cluster.step(0, 0.1)
    return results


def assert_matches_clean(results, clean_round):
    assert sorted(results) == sorted(clean_round)
    for worker_id, got in results.items():
        ref = clean_round[worker_id]
        assert got.local_loss == ref.local_loss
        assert got.gradient_nnz == ref.gradient_nnz
        assert got.message_bytes == ref.message_bytes


class TestDrop:
    def test_dropped_send_is_retried_transparently(self, dataset, clean_round):
        # Per-worker send stream: EPOCH is index 0, STEP is index 1.
        schedule = FaultSchedule().add("drop", "send", 0, 1)
        with make_cluster(dataset, schedule=schedule) as cluster:
            cluster.start_epoch(0)
            results = cluster.step(0, 0.1)
            assert cluster.transport.stats["drops"] == 1
            assert cluster.supervisor.stats["retries"] >= 1
            assert cluster.supervisor.stats["timeouts"] >= 1
        # The retried round recomputes nothing: results match a clean run.
        assert_matches_clean(results, clean_round)


class TestDuplicate:
    def test_duplicate_reply_discarded_as_stale(self, dataset, clean_round):
        # Duplicate worker 0's EPOCH ack (recv index 0); the copy
        # arrives while the driver waits for a GRAD and must be
        # discarded as stale, not decoded as a gradient.
        schedule = FaultSchedule().add("duplicate", "recv", 0, 0)
        with make_cluster(dataset, schedule=schedule) as cluster:
            cluster.start_epoch(0)
            results = cluster.step(0, 0.1)
            assert cluster.transport.stats["duplicates"] == 1
            assert cluster.supervisor.stats["stale_frames"] >= 1
        assert_matches_clean(results, clean_round)

    def test_duplicate_update_ack_is_harmless(self, dataset):
        # Duplicate the GRAD reply (recv index 1); the second copy is
        # consumed while waiting for the UPDATE ack and discarded.
        schedule = FaultSchedule().add("duplicate", "recv", 0, 1)
        with make_cluster(dataset, schedule=schedule) as cluster:
            cluster.start_epoch(0)
            results = cluster.step(0, 0.1)
            messages = [
                r.message for r in results.values() if r.message is not None
            ]
            assert messages
            from repro.core.serialization import serialize_message
            from repro.distributed import Driver

            driver = Driver(
                SketchMLCompressor(SketchMLConfig.full(seed=SEED)),
                make_model("lr", dataset.num_features).num_parameters,
            )
            agg = driver.aggregate(messages)
            acked = cluster.broadcast(
                0, 0.1, serialize_message(agg.broadcast_message)
            )
            assert acked == [0, 1]
            assert cluster.transport.stats["duplicates"] == 1


class TestCorrupt:
    def test_corrupted_grad_rejected_then_retried(self, dataset, clean_round):
        # Corrupt worker 0's GRAD payload (recv index 1).  The frame
        # still parses; the *content* layer (deserialize_message under
        # the sanitizer) must reject it, and the retry must be served
        # from the worker's idempotency cache.
        schedule = FaultSchedule().add("corrupt", "recv", 1, 1)
        with sanitize.sanitized():
            with make_cluster(dataset, schedule=schedule) as cluster:
                cluster.start_epoch(0)
                results = cluster.step(0, 0.1)
                assert cluster.transport.stats["corrupts"] == 1
                assert cluster.supervisor.stats["rejected_replies"] >= 1
                assert cluster.supervisor.stats["retries"] >= 1
        assert_matches_clean(results, clean_round)

    def test_corruption_never_reaches_aggregation(self, dataset, clean_round):
        # Same fault, but decode the recovered message and check its
        # values are the *clean* ones — the corrupted copy left no trace.
        schedule = FaultSchedule().add("corrupt", "recv", 1, 1)
        with sanitize.sanitized():
            with make_cluster(dataset, schedule=schedule) as cluster:
                cluster.start_epoch(0)
                results = cluster.step(0, 0.1)
        compressor = SketchMLCompressor(SketchMLConfig.full(seed=SEED))
        got_k, got_v = compressor.decompress(results[1].message)
        ref_k, ref_v = compressor.decompress(clean_round[1].message)
        np.testing.assert_array_equal(got_k, ref_k)
        np.testing.assert_array_equal(got_v, ref_v)


class TestDelay:
    def test_delayed_reply_times_out_then_recovers(self, dataset, clean_round):
        schedule = FaultSchedule().add("delay", "recv", 0, 1)
        with make_cluster(dataset, schedule=schedule) as cluster:
            cluster.start_epoch(0)
            results = cluster.step(0, 0.1)
            assert cluster.transport.stats["delays"] == 1
            assert cluster.supervisor.stats["retries"] >= 1
        assert_matches_clean(results, clean_round)


class TestDeadWorker:
    def test_fail_fast_raises_structured_error(self, dataset):
        with make_cluster(dataset) as cluster:
            cluster.start_epoch(0)
            cluster.transport.terminate(1)
            with pytest.raises(WorkerCrashedError) as excinfo:
                cluster.step(0, 0.1)
            assert excinfo.value.worker_id == 1
            assert excinfo.value.phase == "step"

    def test_drop_policy_continues_over_survivors(self, dataset):
        with make_cluster(dataset, straggler_policy="drop") as cluster:
            cluster.start_epoch(0)
            cluster.transport.terminate(1)
            results = cluster.step(0, 0.1)
            assert sorted(results) == [0]
            assert cluster.alive_workers == [0]
            assert 1 in cluster.dropped_workers
            assert "worker 1" in cluster.dropped_workers[1]
            # The aggregate over survivors re-weights by the answering
            # count: with one worker left, the mean is its gradient.
            from repro.distributed import aggregate_sparse_gradients

            compressor = SketchMLCompressor(SketchMLConfig.full(seed=SEED))
            keys, values = compressor.decompress(results[0].message)
            agg_k, agg_v = aggregate_sparse_gradients([(keys, values)])
            np.testing.assert_array_equal(agg_k, keys)
            np.testing.assert_allclose(agg_v, values)
            # Training continues without the dead worker.
            more = cluster.step(1, 0.1)
            assert sorted(more) == [0]


class TestSeededReproducibility:
    def run_with_faults(self, dataset, seed):
        faults = FaultConfig(
            seed=seed, drop_rate=0.2, duplicate_rate=0.2, corrupt_rate=0.1
        )
        with sanitize.sanitized():
            with make_cluster(dataset, faults=faults) as cluster:
                cluster.start_epoch(0)
                losses = []
                for rid in range(3):
                    results = cluster.step(rid, 0.1)
                    losses.append(
                        tuple(results[w].local_loss for w in sorted(results))
                    )
                return dict(cluster.transport.stats), losses

    def test_same_seed_same_fault_pattern(self, dataset):
        stats_a, losses_a = self.run_with_faults(dataset, seed=11)
        stats_b, losses_b = self.run_with_faults(dataset, seed=11)
        assert stats_a == stats_b
        assert losses_a == losses_b
        assert sum(stats_a.values()) > 0  # the run was actually faulty


class TestFaultConfigValidation:
    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(delay_recvs=-1)

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule().add("explode", "send", 0, 0)
        with pytest.raises(ValueError):
            FaultSchedule().add("drop", "sideways", 0, 0)

    def test_budget_caps_total_faults(self, dataset):
        faults = FaultConfig(seed=0, drop_rate=1.0, max_faults=2)
        schedule = None
        config = RuntimeConfig(
            backend="sim",
            supervision=SupervisionConfig(
                message_timeout=5.0, max_retries=5,
                backoff_base=0.0, backoff_jitter=0.0,
            ),
            faults=faults,
            fault_schedule=schedule,
        )
        with RuntimeCluster(make_bootstraps(dataset), config) as cluster:
            cluster.start_epoch(0)  # every send dropped until budget spent
            assert cluster.transport.stats["drops"] == 2
