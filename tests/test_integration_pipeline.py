"""Cross-cutting integration tests over the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DistributedTrainer,
    IdentityCompressor,
    SketchMLCompressor,
    TrainerConfig,
    ZipMLCompressor,
    cluster1_like,
)
from repro.core import WireSketchMLCompressor
from repro.data import SparseDataset
from repro.models import make_model
from repro.optim import Adam


def random_dataset(seed, rows=600, features=5_000, min_nnz=8, max_nnz=16):
    rng = np.random.default_rng(seed)
    true_theta = rng.normal(size=features)
    row_list, labels = [], []
    for _ in range(rows):
        nnz = int(rng.integers(min_nnz, max_nnz))
        cols = np.sort(rng.choice(features, size=nnz, replace=False))
        vals = rng.normal(size=nnz)
        row_list.append((cols, vals))
        labels.append(1.0 if np.dot(vals, true_theta[cols]) >= 0 else -1.0)
    return SparseDataset.from_rows(row_list, np.asarray(labels), features)


@given(seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=6, deadline=None)
def test_full_stack_property(seed):
    """For random data: training runs, loss is finite and non-worsening,
    bytes ordering SketchML < ZipML < Adam holds (at message sizes where
    fixed codec overheads don't dominate), determinism holds."""
    dataset = random_dataset(seed)
    results = {}
    for name, factory in (
        ("adam", IdentityCompressor),
        ("zipml", ZipMLCompressor),
        ("sketchml", SketchMLCompressor),
    ):
        model = make_model("lr", dataset.num_features, reg_lambda=0.01)
        trainer = DistributedTrainer(
            model=model,
            optimizer=Adam(learning_rate=0.02),
            compressor_factory=factory,
            network=cluster1_like(),
            config=TrainerConfig(
                num_workers=3, epochs=2, seed=seed, batch_fraction=0.5
            ),
        )
        results[name] = trainer.train(dataset, dataset)
    for history in results.values():
        assert all(np.isfinite(loss) for loss in history.test_losses)
        assert history.test_losses[-1] <= history.test_losses[0] * 1.05
    assert (
        results["sketchml"].total_bytes_sent
        < results["zipml"].total_bytes_sent
        < results["adam"].total_bytes_sent
    )


def test_wire_and_memory_pipelines_agree_in_training():
    """Training through real serialised bytes must match the in-memory
    pipeline exactly (same decoded gradients → same model)."""
    dataset = random_dataset(99, rows=90)
    losses = {}
    for name, factory in (
        ("memory", SketchMLCompressor),
        ("wire", WireSketchMLCompressor),
    ):
        model = make_model("lr", dataset.num_features, reg_lambda=0.01)
        trainer = DistributedTrainer(
            model=model,
            optimizer=Adam(learning_rate=0.02),
            compressor_factory=factory,
            network=cluster1_like(),
            config=TrainerConfig(num_workers=3, epochs=2, seed=1),
        )
        losses[name] = trainer.train(dataset, dataset).test_losses
    assert losses["memory"] == pytest.approx(losses["wire"])
