"""Tests for Count-Min, Count Sketch, and the Bloom filter."""

import numpy as np
import pytest

from repro.sketch.frequency import BloomFilter, CountMinSketch, CountSketch


class TestCountMin:
    def test_never_underestimates(self):
        """The defining one-sided guarantee of Count-Min (§2.4)."""
        rng = np.random.default_rng(0)
        keys = rng.zipf(1.5, size=20_000) % 1_000
        cm = CountMinSketch(num_rows=4, num_bins=512, seed=1)
        cm.insert_many(keys)
        true_counts = np.bincount(keys, minlength=1_000)
        for key in range(0, 1_000, 37):
            assert cm.query(key) >= true_counts[key]

    def test_error_bound_from_sizing(self):
        epsilon, delta = 0.01, 0.01
        cm = CountMinSketch.from_error_bounds(epsilon, delta, seed=2)
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 5_000, size=50_000)
        cm.insert_many(keys)
        true_counts = np.bincount(keys, minlength=5_000)
        sample = rng.integers(0, 5_000, size=200)
        overshoots = [cm.query(int(k)) - true_counts[k] for k in sample]
        violations = sum(o > epsilon * cm.total_count for o in overshoots)
        assert violations <= max(2, delta * len(sample) * 5)

    def test_from_error_bounds_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bounds(0.0, 0.5)
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bounds(0.5, 1.5)

    def test_query_many_matches_query(self):
        cm = CountMinSketch(num_rows=3, num_bins=128, seed=3)
        keys = np.asarray([1, 1, 2, 3, 3, 3])
        cm.insert_many(keys)
        batch = cm.query_many([1, 2, 3, 4])
        singles = [cm.query(k) for k in [1, 2, 3, 4]]
        assert batch.tolist() == singles

    def test_insert_with_count(self):
        cm = CountMinSketch(num_rows=3, num_bins=128, seed=4)
        cm.insert(7, count=5)
        assert cm.query(7) >= 5
        assert cm.total_count == 5

    def test_merge(self):
        a = CountMinSketch(num_rows=3, num_bins=128, seed=5)
        b = CountMinSketch(num_rows=3, num_bins=128, seed=5)
        a.insert_many([1] * 10)
        b.insert_many([1] * 7 + [2] * 3)
        a.merge(b)
        assert a.query(1) >= 17
        assert a.total_count == 20

    def test_merge_incompatible(self):
        a = CountMinSketch(num_rows=3, num_bins=128)
        b = CountMinSketch(num_rows=4, num_bins=128)
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(TypeError):
            a.merge(object())

    def test_size_bytes(self):
        cm = CountMinSketch(num_rows=2, num_bins=100)
        assert cm.size_bytes == 2 * 100 * 8  # int64 bins

    def test_empty_queries(self):
        cm = CountMinSketch(num_rows=2, num_bins=64, seed=0)
        assert cm.query_many([]).size == 0
        cm.insert_many([])
        assert cm.total_count == 0


class TestCountSketch:
    def test_roughly_unbiased(self):
        """Count Sketch errors are two-sided but centred near zero."""
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2_000, size=40_000)
        cs = CountSketch(num_rows=5, num_bins=512, seed=1)
        cs.insert_many(keys)
        true_counts = np.bincount(keys, minlength=2_000)
        sample = rng.integers(0, 2_000, size=300)
        errors = np.asarray([cs.query(int(k)) - true_counts[k] for k in sample])
        # Mean error near zero (unbiased), and both signs occur.
        assert abs(errors.mean()) < 5
        assert (errors > 0).any() and (errors < 0).any()

    def test_exact_when_no_collisions(self):
        cs = CountSketch(num_rows=5, num_bins=4_096, seed=2)
        cs.insert(42, count=9)
        assert cs.query(42) == 9

    def test_query_many(self):
        cs = CountSketch(num_rows=3, num_bins=256, seed=3)
        cs.insert_many([5] * 4 + [6] * 2)
        batch = cs.query_many([5, 6])
        assert batch.tolist() == [cs.query(5), cs.query(6)]

    def test_merge_and_validation(self):
        a = CountSketch(num_rows=3, num_bins=128, seed=4)
        b = CountSketch(num_rows=3, num_bins=128, seed=4)
        a.insert_many([1] * 5)
        b.insert_many([1] * 5)
        a.merge(b)
        assert a.query(1) == 10
        with pytest.raises(ValueError):
            a.merge(CountSketch(num_rows=4, num_bins=128))
        with pytest.raises(TypeError):
            a.merge("nope")


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(num_bits=4_096, num_hashes=3, seed=1)
        keys = np.arange(0, 500, dtype=np.int64)
        bf.add_many(keys)
        assert bf.contains_many(keys).all()
        for key in keys[:50]:
            assert int(key) in bf

    def test_false_positive_rate_near_target(self):
        target = 0.02
        bf = BloomFilter.from_capacity(2_000, false_positive_rate=target, seed=2)
        bf.add_many(np.arange(2_000))
        probes = np.arange(1_000_000, 1_010_000)
        fp_rate = bf.contains_many(probes).mean()
        assert fp_rate < 5 * target

    def test_from_capacity_validation(self):
        with pytest.raises(ValueError):
            BloomFilter.from_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.from_capacity(10, false_positive_rate=1.5)

    def test_approximate_count(self):
        bf = BloomFilter.from_capacity(5_000, seed=3)
        bf.add_many(np.arange(3_000))
        assert bf.approximate_count == pytest.approx(3_000, rel=0.1)

    def test_merge_union(self):
        a = BloomFilter(num_bits=2_048, num_hashes=3, seed=4)
        b = BloomFilter(num_bits=2_048, num_hashes=3, seed=4)
        a.add_many(np.arange(0, 100))
        b.add_many(np.arange(100, 200))
        a.merge(b)
        assert a.contains_many(np.arange(0, 200)).all()

    def test_merge_incompatible(self):
        a = BloomFilter(num_bits=1_024, num_hashes=3)
        with pytest.raises(ValueError):
            a.merge(BloomFilter(num_bits=2_048, num_hashes=3))
        with pytest.raises(TypeError):
            a.merge(None)

    def test_empty_operations(self):
        bf = BloomFilter(num_bits=256, num_hashes=2)
        assert bf.contains_many([]).size == 0
        bf.add_many([])
        assert bf.fill_ratio == 0.0
        assert bf.expected_false_positive_rate == 0.0
