"""Tests for the wire-format SketchML compressor."""

import numpy as np
import pytest

from repro.compression import CompressedGradient, make_compressor
from repro.core import (
    SketchMLCompressor,
    SketchMLConfig,
    WireSketchMLCompressor,
)
from repro.distributed import DistributedTrainer, TrainerConfig, cluster1_like
from repro.models import LogisticRegression
from repro.optim import Adam


def make_gradient(nnz=4_000, dimension=100_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-6
    return keys, values, dimension


class TestWireCompressor:
    def test_registered(self):
        assert isinstance(
            make_compressor("sketchml-wire"), WireSketchMLCompressor
        )

    def test_payload_is_bytes_and_sized_honestly(self):
        keys, values, dim = make_gradient(seed=1)
        message = WireSketchMLCompressor().compress(keys, values, dim)
        assert isinstance(message.payload, bytes)
        assert message.num_bytes == len(message.payload)

    def test_roundtrip_matches_in_memory_pipeline(self):
        keys, values, dim = make_gradient(seed=2)
        config = SketchMLConfig.full(seed=5)
        in_memory = SketchMLCompressor(config)
        on_wire = WireSketchMLCompressor(config)
        mem_keys, mem_values, _ = in_memory.roundtrip(keys, values, dim)
        wire_keys, wire_values, _ = on_wire.roundtrip(keys, values, dim)
        np.testing.assert_array_equal(wire_keys, mem_keys)
        np.testing.assert_allclose(wire_values, mem_values)

    def test_accounting_model_tracks_reality(self):
        """The in-memory num_bytes must approximate true wire length."""
        keys, values, dim = make_gradient(nnz=10_000, seed=3)
        config = SketchMLConfig.full()
        modelled = SketchMLCompressor(config).compress(keys, values, dim)
        actual = WireSketchMLCompressor(config).compress(keys, values, dim)
        assert actual.num_bytes < modelled.num_bytes * 1.35 + 512
        assert actual.num_bytes > modelled.num_bytes * 0.7

    def test_rejects_foreign_payload(self):
        comp = WireSketchMLCompressor()
        fake = CompressedGradient(payload=(1, 2), num_bytes=2, dimension=5, nnz=0)
        with pytest.raises(TypeError):
            comp.decompress(fake)

    def test_trains_end_to_end(self, tiny_split):
        """The whole simulated cluster can run on genuine bytes."""
        train, test = tiny_split
        trainer = DistributedTrainer(
            model=LogisticRegression(train.num_features, reg_lambda=0.01),
            optimizer=Adam(learning_rate=0.01),
            compressor_factory=WireSketchMLCompressor,
            network=cluster1_like(),
            config=TrainerConfig(num_workers=3, epochs=2, seed=0),
        )
        history = trainer.train(train, test)
        assert history.test_losses[-1] < history.test_losses[0]
        assert history.total_bytes_sent > 0

    def test_ablation_configs_work_on_wire(self):
        keys, values, dim = make_gradient(nnz=500, seed=4)
        for config in (
            SketchMLConfig.adam(),
            SketchMLConfig.keys_only(),
            SketchMLConfig.keys_and_quantization(),
            SketchMLConfig.full(compensate_decay=True),
        ):
            comp = WireSketchMLCompressor(config)
            out_keys, out_values, _ = comp.roundtrip(keys, values, dim)
            np.testing.assert_array_equal(out_keys, keys)
            assert np.all(np.sign(out_values) == np.sign(values))
