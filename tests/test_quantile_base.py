"""Tests for the shared quantile-sketch helpers."""

import numpy as np
import pytest

from repro.sketch.quantile import (
    QuantileSketch,
    exact_quantiles,
    uniform_probabilities,
)


class TestUniformProbabilities:
    def test_shape_and_endpoints(self):
        phis = uniform_probabilities(4)
        np.testing.assert_allclose(phis, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_probabilities(0)
        with pytest.raises(ValueError):
            uniform_probabilities(-3)

    def test_q_one(self):
        np.testing.assert_allclose(uniform_probabilities(1), [0.0, 1.0])


class TestExactQuantiles:
    def test_known_values(self):
        values = list(range(10))
        result = exact_quantiles(values, [0.0, 0.5, 1.0])
        assert result[0] == 0
        assert result[1] == 5
        assert result[2] == 9  # clipped to the last element

    def test_returns_data_points(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        for phi in (0.1, 0.33, 0.77):
            assert exact_quantiles(values, [phi])[0] in values

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            exact_quantiles([], [0.5])

    def test_phis_clipped(self):
        result = exact_quantiles([1.0, 2.0, 3.0], [-0.5, 1.5])
        assert result[0] == 1.0
        assert result[1] == 3.0

    def test_single_value(self):
        result = exact_quantiles([42.0], [0.0, 0.5, 1.0])
        assert np.all(result == 42.0)


class TestAbstractBase:
    def test_abstract_methods_raise(self):
        sketch = QuantileSketch()
        with pytest.raises(NotImplementedError):
            sketch.insert(1.0)
        with pytest.raises(NotImplementedError):
            sketch.query(0.5)
        with pytest.raises(NotImplementedError):
            sketch.merge(sketch)
        with pytest.raises(NotImplementedError):
            len(sketch)

    def test_default_insert_many_uses_insert(self):
        class Recorder(QuantileSketch):
            def __init__(self):
                self.seen = []

            def insert(self, value):
                self.seen.append(value)

        recorder = Recorder()
        recorder.insert_many([1.0, 2.0, 3.0])
        assert recorder.seen == [1.0, 2.0, 3.0]

    def test_default_query_many_uses_query(self):
        class Const(QuantileSketch):
            def query(self, phi):
                return 7.0

            def __len__(self):
                return 1

        sketch = Const()
        assert sketch.query_many([0.1, 0.9]) == [7.0, 7.0]
        assert not sketch.is_empty
