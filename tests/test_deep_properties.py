"""Deeper property-based tests over the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GroupedMinMaxSketch, SketchMLCompressor, SketchMLConfig
from repro.core.quantizer import QuantileBucketQuantizer
from repro.data import SparseDataset
from repro.distributed import aggregate_sparse_gradients
from repro.sketch.quantile import KLLSketch


# ----------------------------------------------------------------------
# GroupedMinMaxSketch: partition is a lossless re-arrangement
# ----------------------------------------------------------------------
@given(
    n=st.integers(min_value=1, max_value=300),
    groups=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_partition_is_a_permutation(n, groups, seed):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(10**6, size=n, replace=False))
    indexes = rng.integers(0, 64, size=n)
    grouped = GroupedMinMaxSketch(num_groups=groups, index_range=64, seed=seed)
    partitions = grouped.partition(keys, indexes)
    rebuilt = {}
    for g, (part_keys, offsets) in enumerate(partitions):
        for key, offset in zip(part_keys.tolist(), offsets.tolist()):
            assert key not in rebuilt
            rebuilt[key] = g * grouped.group_width + offset
    assert rebuilt == dict(zip(keys.tolist(), indexes.tolist()))


# ----------------------------------------------------------------------
# Aggregation equals the dense-reference average
# ----------------------------------------------------------------------
@given(
    num_workers=st.integers(min_value=1, max_value=6),
    dimension=st.integers(min_value=5, max_value=200),
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=40, deadline=None)
def test_aggregation_matches_dense_reference(num_workers, dimension, seed):
    rng = np.random.default_rng(seed)
    gradients = []
    dense_sum = np.zeros(dimension)
    for _ in range(num_workers):
        nnz = int(rng.integers(0, dimension))
        keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
        values = rng.normal(size=nnz)
        gradients.append((keys, values))
        np.add.at(dense_sum, keys, values)
    keys, values = aggregate_sparse_gradients(gradients)
    dense_mean = dense_sum / num_workers
    reference_keys = np.flatnonzero(dense_sum)
    # Every key present in any gradient appears exactly once, sorted.
    np.testing.assert_array_equal(
        keys, np.unique(np.concatenate([k for k, _ in gradients]))
    )
    rebuilt = np.zeros(dimension)
    rebuilt[keys] = values
    np.testing.assert_allclose(rebuilt[reference_keys], dense_mean[reference_keys])


# ----------------------------------------------------------------------
# KLL weight conservation under arbitrary merge trees
# ----------------------------------------------------------------------
@given(
    chunk_sizes=st.lists(
        st.integers(min_value=1, max_value=2_000), min_size=1, max_size=6
    ),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_kll_merge_tree_conserves_weight(chunk_sizes, seed):
    rng = np.random.default_rng(seed)
    merged = KLLSketch(k=32, seed=seed)
    total = 0
    for i, size in enumerate(chunk_sizes):
        local = KLLSketch(k=32, seed=seed + i + 1)
        local.insert_many(rng.normal(size=size))
        merged.merge(local)
        total += size
    assert len(merged) == total
    weight = sum(
        (1 << level) * len(items) for level, items in enumerate(merged._levels)
    )
    assert weight == total


# ----------------------------------------------------------------------
# Quantizer bucket-budget split properties
# ----------------------------------------------------------------------
@given(
    n_pos=st.integers(min_value=0, max_value=5_000),
    n_neg=st.integers(min_value=0, max_value=5_000),
    q=st.integers(min_value=2, max_value=256),
)
@settings(max_examples=60, deadline=None)
def test_bucket_budget_split(n_pos, n_neg, q):
    if n_pos + n_neg == 0:
        return  # fit() rejects empty gradients before the split runs
    quant = QuantileBucketQuantizer(num_buckets=q)
    q_pos, q_neg = quant._split_budget(n_pos, n_neg)
    assert q_pos + q_neg == q
    if n_pos and n_neg:
        assert q_pos >= 1 and q_neg >= 1
    if n_pos == 0:
        assert q_pos == 0
    if n_neg == 0:
        assert q_neg == 0


# ----------------------------------------------------------------------
# Compressor: repeated decompression is idempotent and side-effect free
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20, deadline=None)
def test_decompress_is_idempotent(seed):
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(10, 400))
    dimension = nnz * 10
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.normal(scale=0.05, size=nnz)
    values[values == 0.0] = 0.01
    comp = SketchMLCompressor(SketchMLConfig.full(seed=seed))
    message = comp.compress(keys, values, dimension)
    first = comp.decompress(message)
    second = comp.decompress(message)
    np.testing.assert_array_equal(first[0], second[0])
    np.testing.assert_array_equal(first[1], second[1])


# ----------------------------------------------------------------------
# SparseDataset: subset composition behaves like fancy indexing
# ----------------------------------------------------------------------
@given(
    rows=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_subset_composes(rows, seed):
    rng = np.random.default_rng(seed)
    features = 50
    row_list = []
    for _ in range(rows):
        nnz = int(rng.integers(1, 10))
        cols = np.sort(rng.choice(features, size=nnz, replace=False))
        row_list.append((cols, rng.normal(size=nnz)))
    ds = SparseDataset.from_rows(row_list, rng.normal(size=rows), features)
    outer = np.sort(rng.choice(rows, size=max(1, rows // 2), replace=False))
    inner = np.sort(
        rng.choice(outer.size, size=max(1, outer.size // 2), replace=False)
    )
    # subset(outer).subset(inner) == subset(outer[inner])
    composed = ds.subset(outer).subset(inner)
    direct = ds.subset(outer[inner])
    np.testing.assert_array_equal(composed.indices, direct.indices)
    np.testing.assert_allclose(composed.data, direct.data)
    np.testing.assert_allclose(composed.labels, direct.labels)


# ----------------------------------------------------------------------
# Trainer edge cases
# ----------------------------------------------------------------------
class TestTrainerEdgeCases:
    def test_full_batch_fraction(self, tiny_split):
        from repro.compression import IdentityCompressor
        from repro.distributed import (
            DistributedTrainer,
            TrainerConfig,
            cluster1_like,
        )
        from repro.models import LogisticRegression
        from repro.optim import Adam

        train, test = tiny_split
        trainer = DistributedTrainer(
            model=LogisticRegression(train.num_features),
            optimizer=Adam(learning_rate=0.05),
            compressor_factory=IdentityCompressor,
            network=cluster1_like(),
            config=TrainerConfig(
                num_workers=2, epochs=2, batch_fraction=1.0, seed=0
            ),
        )
        history = trainer.train(train, test)
        # One round per epoch: each worker sends exactly one message.
        assert history.epochs[0].num_messages == 2
        assert history.test_losses[-1] < history.test_losses[0]

    def test_evaluate_test_disabled(self, tiny_split):
        from repro.compression import IdentityCompressor
        from repro.distributed import (
            DistributedTrainer,
            TrainerConfig,
            cluster1_like,
        )
        from repro.models import LogisticRegression
        from repro.optim import Adam

        train, test = tiny_split
        trainer = DistributedTrainer(
            model=LogisticRegression(train.num_features),
            optimizer=Adam(learning_rate=0.05),
            compressor_factory=IdentityCompressor,
            network=cluster1_like(),
            config=TrainerConfig(
                num_workers=2, epochs=1, seed=0, evaluate_test=False
            ),
        )
        history = trainer.train(train, test)
        assert history.epochs[0].test_loss is None
