"""Tests for SparseVector and SparseDataset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SparseDataset, SparseVector


def random_dataset(rows=50, features=200, density=0.1, seed=0):
    rng = np.random.default_rng(seed)
    row_list = []
    for _ in range(rows):
        nnz = max(1, rng.binomial(features, density))
        cols = np.sort(rng.choice(features, size=nnz, replace=False))
        vals = rng.normal(size=nnz)
        row_list.append((cols, vals))
    labels = rng.choice([-1.0, 1.0], size=rows)
    return SparseDataset.from_rows(row_list, labels, features)


class TestSparseVector:
    def test_roundtrip_dense(self):
        dense = np.asarray([0.0, 1.5, 0.0, -2.0, 0.0])
        vec = SparseVector.from_dense(dense)
        assert vec.keys.tolist() == [1, 3]
        np.testing.assert_array_equal(vec.to_dense(), dense)
        assert vec.nnz == 2
        assert vec.density == pytest.approx(0.4)

    def test_tolerance_filter(self):
        dense = np.asarray([1e-9, 0.5, -1e-12])
        vec = SparseVector.from_dense(dense, tolerance=1e-6)
        assert vec.keys.tolist() == [1]

    def test_dot(self):
        vec = SparseVector(np.asarray([0, 2]), np.asarray([2.0, 3.0]), 4)
        dense = np.asarray([1.0, 10.0, -1.0, 5.0])
        assert vec.dot(dense) == pytest.approx(2.0 - 3.0)

    def test_add_into(self):
        vec = SparseVector(np.asarray([1, 3]), np.asarray([1.0, -1.0]), 4)
        target = np.zeros(4)
        vec.add_into(target, scale=2.0)
        np.testing.assert_array_equal(target, [0.0, 2.0, 0.0, -2.0])

    def test_scaled_and_norm(self):
        vec = SparseVector(np.asarray([0, 1]), np.asarray([3.0, 4.0]), 2)
        assert vec.l2_norm() == pytest.approx(5.0)
        assert vec.scaled(2.0).values.tolist() == [6.0, 8.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            SparseVector(np.asarray([2, 1]), np.asarray([1.0, 1.0]), 5)
        with pytest.raises(ValueError, match="keys must lie"):
            SparseVector(np.asarray([5]), np.asarray([1.0]), 5)
        with pytest.raises(ValueError, match="parallel"):
            SparseVector(np.asarray([1]), np.asarray([1.0, 2.0]), 5)


class TestSparseDataset:
    def test_construction_and_shape(self):
        ds = random_dataset()
        assert ds.num_rows == 50
        assert ds.num_features == 200
        assert ds.nnz == ds.indices.size
        assert ds.avg_nnz_per_row == pytest.approx(ds.nnz / 50)

    def test_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            SparseDataset(
                np.asarray([1, 2]), np.asarray([0, 1]), np.ones(2), np.ones(1), 10
            )
        with pytest.raises(ValueError, match="labels"):
            SparseDataset(
                np.asarray([0, 1]), np.asarray([0]), np.ones(1), np.ones(3), 10
            )
        with pytest.raises(ValueError, match="indices must lie"):
            SparseDataset(
                np.asarray([0, 1]), np.asarray([99]), np.ones(1), np.ones(1), 10
            )

    def test_row_access(self):
        ds = random_dataset(seed=1)
        row = ds.row(3)
        start, end = ds.indptr[3], ds.indptr[4]
        np.testing.assert_array_equal(row.keys, ds.indices[start:end])
        np.testing.assert_array_equal(row.values, ds.data[start:end])

    def test_dot_rows_matches_dense(self):
        ds = random_dataset(seed=2)
        theta = np.random.default_rng(3).normal(size=ds.num_features)
        rows = np.asarray([0, 5, 10, 49])
        expected = [ds.row(i).dot(theta) for i in rows]
        np.testing.assert_allclose(ds.dot_rows(rows, theta), expected)

    def test_dot_rows_empty_row(self):
        ds = SparseDataset.from_rows(
            [(np.asarray([1]), np.asarray([2.0])), (np.asarray([], dtype=np.int64), np.asarray([]))],
            np.asarray([1.0, -1.0]),
            5,
        )
        theta = np.ones(5)
        np.testing.assert_allclose(ds.dot_rows(np.asarray([0, 1]), theta), [2.0, 0.0])

    def test_gradient_rows_matches_dense(self):
        ds = random_dataset(rows=20, seed=4)
        rows = np.arange(10)
        coeff = np.random.default_rng(5).normal(size=10)
        expected = np.zeros(ds.num_features)
        for r, c in zip(rows, coeff):
            ds.row(r).add_into(expected, scale=c)
        np.testing.assert_allclose(ds.gradient_rows(rows, coeff), expected)

    def test_gradient_rows_validation(self):
        ds = random_dataset(seed=6)
        with pytest.raises(ValueError, match="parallel"):
            ds.gradient_rows(np.asarray([0, 1]), np.asarray([1.0]))

    def test_active_columns(self):
        ds = random_dataset(seed=7)
        rows = np.asarray([0, 1])
        active = ds.active_columns(rows)
        manual = np.unique(
            np.concatenate([ds.row(0).keys, ds.row(1).keys])
        )
        np.testing.assert_array_equal(active, manual)

    def test_subset_preserves_rows(self):
        ds = random_dataset(seed=8)
        rows = np.asarray([3, 7, 11])
        sub = ds.subset(rows)
        assert sub.num_rows == 3
        for i, r in enumerate(rows):
            np.testing.assert_array_equal(sub.row(i).keys, ds.row(r).keys)
            np.testing.assert_array_equal(sub.row(i).values, ds.row(r).values)
            assert sub.labels[i] == ds.labels[r]

    def test_iter_batches_covers_all_rows(self):
        ds = random_dataset(rows=25, seed=9)
        rng = np.random.default_rng(0)
        seen = np.concatenate(list(ds.iter_batches(7, rng)))
        assert sorted(seen.tolist()) == list(range(25))

    def test_iter_batches_sizes(self):
        ds = random_dataset(rows=25, seed=10)
        rng = np.random.default_rng(0)
        sizes = [b.size for b in ds.iter_batches(7, rng)]
        assert sizes == [7, 7, 7, 4]

    def test_iter_batches_validation(self):
        ds = random_dataset(seed=11)
        with pytest.raises(ValueError):
            list(ds.iter_batches(0, np.random.default_rng(0)))


@given(
    rows=st.integers(min_value=1, max_value=20),
    features=st.integers(min_value=5, max_value=100),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_dot_gradient_adjoint_property(rows, features, seed):
    """<X r, c> == <r, X^T c> — dot_rows and gradient_rows are adjoint."""
    rng = np.random.default_rng(seed)
    row_list = []
    for _ in range(rows):
        nnz = rng.integers(1, features)
        cols = np.sort(rng.choice(features, size=nnz, replace=False))
        row_list.append((cols, rng.normal(size=nnz)))
    ds = SparseDataset.from_rows(row_list, np.zeros(rows), features)
    theta = rng.normal(size=features)
    coeff = rng.normal(size=rows)
    all_rows = np.arange(rows)
    lhs = float(np.dot(ds.dot_rows(all_rows, theta), coeff))
    rhs = float(np.dot(theta, ds.gradient_rows(all_rows, coeff)))
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)
