"""CLI tests for the deep tier: SARIF output, exit codes, baseline
workflow, and the policy self-verification check."""

import json
import os

import pytest

from repro.cli import main
from repro.lint.policy import all_policy_relpaths, verify_policy

BAD_LOCK_MODULE = (
    "import threading\n\n"
    '__all__ = ["Pool"]\n\n'
    "class Pool:\n"
    "    def __init__(self):\n"
    "        self.alpha = threading.Lock()\n"
    "        self.beta = threading.Lock()\n\n"
    "    def forward(self):\n"
    "        with self.alpha:\n"
    "            with self.beta:\n"
    "                pass\n\n"
    "    def backward(self):\n"
    "        with self.beta:\n"
    "            with self.alpha:\n"
    "                pass\n"
)


@pytest.fixture
def defect_tree(tmp_path):
    """A package tree with one deep finding (cyclic lock order)."""
    pkg = tmp_path / "repro" / "runtime"
    pkg.mkdir(parents=True)
    (pkg / "pool.py").write_text(BAD_LOCK_MODULE)
    return tmp_path / "repro"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("__all__ = []\n")
        assert main(["lint", "--deep", "--baseline",
                     str(tmp_path / "b.json"), str(tmp_path)]) == 0

    def test_findings_exit_one(self, defect_tree, tmp_path, capsys):
        assert main(["lint", "--deep", "--baseline",
                     str(tmp_path / "b.json"), str(defect_tree)]) == 1
        out = capsys.readouterr().out
        assert "lock-order" in out

    def test_usage_error_exits_two(self, tmp_path, capsys):
        assert main(["lint", "--deep", "--select", "bogus",
                     str(tmp_path)]) == 2

    def test_update_baseline_without_deep_is_usage_error(
        self, tmp_path, capsys
    ):
        assert main(["lint", "--update-baseline", str(tmp_path)]) == 2

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "--deep", "does/not/exist"]) == 2


class TestSarif:
    def test_sarif_schema_fields(self, defect_tree, tmp_path, capsys):
        code = main(["lint", "--deep", "--format", "sarif", "--baseline",
                     str(tmp_path / "b.json"), str(defect_tree)])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {r["id"] for r in driver["rules"]}
        # the full two-tier rule catalogue rides along
        assert {"lock-order", "seed-flow", "wire-escape",
                "reactor-reachability", "wire-format"} <= rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning"
            )
        (result,) = [
            r for r in run["results"] if r["ruleId"] == "lock-order"
        ]
        assert result["level"] == "error"
        assert "lock-order cycle" in result["message"]["text"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("pool.py")
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1  # SARIF is 1-based

    def test_shallow_sarif_works_too(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        code = main(["lint", "--format", "sarif", str(bad)])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert any(
            r["ruleId"] == "mutable-default"
            for r in doc["runs"][0]["results"]
        )

    def test_clean_sarif_has_empty_results(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("__all__ = []\n")
        assert main(["lint", "--format", "sarif", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestBaselineWorkflow:
    def test_accept_then_clean_then_regress(
        self, defect_tree, tmp_path, capsys
    ):
        baseline = str(tmp_path / "baseline.json")
        args = ["lint", "--deep", "--baseline", baseline, str(defect_tree)]
        # finding fails without a baseline...
        assert main(args) == 1
        # ...is accepted by --update-baseline...
        assert main(args + ["--update-baseline"]) == 0
        doc = json.load(open(baseline))
        assert doc["version"] == 1
        assert len(doc["findings"]) == 1
        assert doc["findings"][0]["key"].startswith("lock-order::")
        # ...after which the same tree is green...
        assert main(args) == 0
        # ...but a *new* finding still fails (baseline is counted, so a
        # second distinct cycle is new even with one accepted).
        (defect_tree / "runtime" / "pool2.py").write_text(
            BAD_LOCK_MODULE.replace("Pool", "OtherPool")
        )
        capsys.readouterr()
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "OtherPool" in out
        assert "Pool.alpha" not in out.replace("OtherPool", "")

    def test_baseline_is_line_drift_tolerant(
        self, defect_tree, tmp_path, capsys
    ):
        baseline = str(tmp_path / "baseline.json")
        args = ["lint", "--deep", "--baseline", baseline, str(defect_tree)]
        assert main(args + ["--update-baseline"]) == 0
        # prepend lines: the finding moves but its key does not
        pool = defect_tree / "runtime" / "pool.py"
        pool.write_text('"""Moved down."""\n\n' + pool.read_text())
        assert main(args) == 0

    def test_corrupt_baseline_is_usage_error(
        self, defect_tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"not": "a baseline"}')
        assert main(["lint", "--deep", "--baseline", str(baseline),
                     str(defect_tree)]) == 2


class TestCommittedBaseline:
    def test_repo_baseline_exists_and_is_exhausted(self):
        """The committed baseline matches the tree: src/ deep-lints
        clean against it (acceptance criterion)."""
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        baseline = os.path.join(root, "analysis-baseline.json")
        assert os.path.isfile(baseline)
        cwd = os.getcwd()
        os.chdir(root)
        try:
            assert main(["lint", "--deep", "--baseline", baseline,
                         os.path.join(root, "src")]) == 0
        finally:
            os.chdir(cwd)


class TestPolicySelfVerification:
    def test_real_policy_names_only_existing_files(self):
        assert verify_policy() == []

    def test_missing_module_is_detected(self, tmp_path):
        missing = verify_policy(str(tmp_path))
        assert set(missing) == set(all_policy_relpaths())
        assert "runtime/aio.py" in missing

    def test_lint_refuses_to_run_with_stale_policy(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.lint.policy as policy

        monkeypatch.setattr(
            policy, "WIRE_MODULES",
            frozenset({"core/serialization.py", "core/renamed_away.py"}),
        )
        (tmp_path / "ok.py").write_text("__all__ = []\n")
        assert main(["lint", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "renamed_away" in err
