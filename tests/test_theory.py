"""Empirical validation of the paper's Appendix A analysis.

* A.1 / Theorem A.2 — variance bound of quantile-bucket quantification
  (also covered per-component in test_quantizer; here we check the
  corollary against the uniform-quantization bound of Alistarh et al.).
* A.2 — MinMaxSketch correctness rate lower bound (Eq. 2) and the
  min-counter invariant (Theorem A.4).
* A.3 — expected bytes per delta key ``ceil(1/8 log2(rD/d))``.
"""

import numpy as np
import pytest

from repro.core.delta_encoding import delta_key_stats
from repro.core.minmax_sketch import MinMaxSketch
from repro.core.quantizer import QuantileBucketQuantizer


class TestTheoremA2Corollary:
    def test_quantile_bound_beats_uniform_bound_for_large_d(self):
        """Corollary A.3: for unbiased quantile spreads the equi-depth
        variance bound is O(||g||^2) independent of d, while the uniform
        bound min(d/q^2, sqrt(d)/q) ||g||^2 grows with d."""
        rng = np.random.default_rng(0)
        q = 256
        for d in (10_000, 100_000):
            values = rng.laplace(scale=0.01, size=d)
            values[values == 0.0] = 1e-5
            quant = QuantileBucketQuantizer(num_buckets=q, sketch="exact").fit(values)
            g_norm_sq = float(np.dot(values, values))
            uniform_bound = min(d / q**2, np.sqrt(d) / q) * g_norm_sq
            assert quant.variance_bound(values) < uniform_bound

    def test_actual_variance_well_below_bound(self):
        rng = np.random.default_rng(1)
        values = rng.laplace(scale=0.01, size=50_000)
        values[values == 0.0] = 1e-5
        quant = QuantileBucketQuantizer(num_buckets=128, sketch="exact").fit(values)
        decoded = quant.quantize(values)
        actual = float(np.sum((decoded - values) ** 2))
        assert actual < quant.variance_bound(values)


def correctness_rate_lower_bound(v: int, w: int, d: int) -> float:
    """Eq. (2): expected fraction of exact queries for v distinct keys,
    w bins per row, d rows (keys ordered by increasing frequency —
    here, by insertion value order, which our min-insert analogue maps
    to increasing bucket index)."""
    ls = np.arange(1, v + 1)
    per_row_correct = (1.0 - 1.0 / w) ** (v - ls)
    per_key = 1.0 - (1.0 - per_row_correct) ** d
    return float(per_key.mean())


class TestMinMaxCorrectnessRate:
    @pytest.mark.parametrize("w,rows", [(512, 2), (1_024, 2), (512, 4)])
    def test_empirical_rate_meets_eq2_bound(self, w, rows):
        """The measured exact-decode fraction must meet the Eq. (2)
        lower bound (distinct indexes, uniform hashing)."""
        rng = np.random.default_rng(2)
        v = 1_000
        keys = np.sort(rng.choice(10**6, size=v, replace=False))
        # Distinct 'frequencies': use distinct indexes 0..v-1 shuffled.
        indexes = rng.permutation(v)
        sk = MinMaxSketch(num_rows=rows, num_bins=w, index_range=v, seed=3)
        sk.insert_many(keys, indexes)
        decoded = sk.query_many(keys)
        exact = float((decoded == indexes).mean())
        bound = correctness_rate_lower_bound(v, w, rows)
        assert exact >= bound - 0.05  # Monte-Carlo slack

    def test_rate_improves_with_width(self):
        rng = np.random.default_rng(4)
        v = 2_000
        keys = np.sort(rng.choice(10**6, size=v, replace=False))
        indexes = rng.permutation(v)
        rates = []
        for w in (256, 1_024, 8_192):
            sk = MinMaxSketch(num_rows=2, num_bins=w, index_range=v, seed=5)
            sk.insert_many(keys, indexes)
            rates.append(float((sk.query_many(keys) == indexes).mean()))
        assert rates[0] < rates[1] < rates[2]


class TestTheoremA4Invariant:
    def test_counter_equals_min_of_mapped_indexes(self):
        """Every bin must hold exactly the minimum index among the keys
        hashed to it (the min-insert analogue of Theorem A.4)."""
        rng = np.random.default_rng(6)
        n = 3_000
        keys = np.sort(rng.choice(10**6, size=n, replace=False))
        indexes = rng.integers(0, 100, size=n)
        sk = MinMaxSketch(num_rows=3, num_bins=257, index_range=100, seed=7)
        sk.insert_many(keys, indexes)
        for row, h in enumerate(sk._hashes):
            bins = h(keys)
            for b in np.unique(bins)[:50]:
                expected = indexes[bins == b].min()
                assert sk._table[row, b] == expected


class TestAppendixA3KeyCost:
    def test_expected_bytes_formula(self):
        """E[bytes per key] ≈ ceil(1/8 log2(rD/d)) for random keys
        partitioned into r groups over dimension D."""
        rng = np.random.default_rng(8)
        D = 2**20
        for d, r in [(100_000, 1), (50_000, 8), (5_000, 8)]:
            keys = np.sort(rng.choice(D, size=d, replace=False))
            # Random r-way partition (stand-in for bucket groups).
            groups = rng.integers(0, r, size=d)
            payload = 0
            for g in range(r):
                part = keys[groups == g]
                if part.size:
                    payload += delta_key_stats(part).payload_bytes
            measured = payload / d
            expected = np.ceil(np.log2(r * D / d) / 8)
            assert measured <= expected + 0.6  # flags excluded, slack for tails

    def test_practical_cost_below_1_5_bytes(self):
        """§A.3: 'the average size for one key ... is around 1.5 bytes'."""
        rng = np.random.default_rng(9)
        D = 2**20
        keys = np.sort(rng.choice(D, size=D // 16, replace=False))
        stats = delta_key_stats(keys)
        assert stats.bytes_per_key < 1.5
