"""Regenerate the golden 8-worker fleet trace and its derived pins.

Run from the repo root after a *deliberate* instrumentation or wire
change::

    PYTHONPATH=src:tests python tests/golden/trace/regen_fleet.py

Produces, in this directory:

* ``fleet_8w.jsonl`` — a real fixed-seed 8-worker ``mp`` flight
  recording (run id ``kdd10-SketchML-lr-w8-s7-mp``), now carrying the
  live-ops plane: span ids, wire-propagated causality, worker metric
  deltas.
* ``fleet_8w_costmodel.json`` — the cost model fitted from it
  (``tests/test_fleet_replay.py`` re-fits and compares at 1e-9).
* ``fleet_8w_dag.json`` — the causal span DAG projected to
  ``(parent, child, count)`` edges (``tests/test_obs_smoke.py`` pins
  it; timing- and id-free, so only *structural* causality changes
  show up as a diff).
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

__all__ = ["TRACE", "MODEL", "DAG", "TRAIN_ARGS", "main"]

HERE = os.path.dirname(os.path.abspath(__file__))
TRACE = os.path.join(HERE, "fleet_8w.jsonl")
MODEL = os.path.join(HERE, "fleet_8w_costmodel.json")
DAG = os.path.join(HERE, "fleet_8w_dag.json")

#: The recorded invocation — one epoch of the kdd10 profile on eight
#: real worker processes, fixed seed.
TRAIN_ARGS = [
    "train",
    "--profile", "kdd10",
    "--model", "lr",
    "--method", "SketchML",
    "--workers", "8",
    "--epochs", "1",
    "--seed", "7",
    "--scale", "0.05",
    "--backend", "mp",
    "--trace", TRACE,
]


def main():
    from repro.cli import main as repro_main
    from repro.fleet import fit_cost_model
    from repro.telemetry.critical_path import causal_edges
    from repro.telemetry.merge import read_trace

    rc = repro_main(TRAIN_ARGS)
    if rc != 0:
        raise SystemExit(f"traced train failed with exit code {rc}")
    events = read_trace(TRACE)

    model = fit_cost_model(events)
    with open(MODEL, "w", encoding="utf-8") as fh:
        json.dump(model.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")

    edges = causal_edges(events)
    with open(DAG, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "format": "repro-causal-dag/1",
                "edges": [list(edge) for edge in edges],
            },
            fh, indent=1, sort_keys=True,
        )
        fh.write("\n")
    print(f"wrote {TRACE} ({len(events)} events)")
    print(f"wrote {MODEL} ({model.num_workers} workers)")
    print(f"wrote {DAG} ({len(edges)} edges)")


if __name__ == "__main__":
    main()
