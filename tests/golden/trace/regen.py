"""Regenerate the golden trace projection fixture.

Run from the repo root after a *deliberate* instrumentation change::

    PYTHONPATH=src:tests python tests/golden/trace/regen.py

The fixture pins the timing-free event inventory (see
``project_trace`` in ``tests/test_telemetry_trace.py``) of the
fixed-seed 2-worker sim run, including counter values — i.e. the byte
accounting — so instrumentation drift shows up as a reviewed diff.
"""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from test_telemetry_trace import project_trace, run_traced  # noqa: E402

__all__ = ["OUT", "main"]

OUT = os.path.join(os.path.dirname(__file__), "sim_2worker_projection.json")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        _, events = run_traced(
            os.path.join(tmp, "sim.jsonl"), "sim", run_id="golden-sim"
        )
    fixture = {
        "format": "repro-trace-projection/1",
        "projection": project_trace(events),
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(fixture, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT} ({len(fixture['projection'])} distinct keys)")


if __name__ == "__main__":
    main()
