"""Traced-run integration tests: the flight recorder end to end.

Three acceptance properties of the telemetry subsystem:

* a fixed-seed traced run produces a schema-valid merged trace whose
  per-epoch ``trainer.*`` event sums reproduce every ``EpochRecord``
  timing/byte field *exactly* (single-source accounting);
* the normalized event inventory of a fixed-seed 2-worker sim run is
  pinned by a committed golden projection (``tests/golden/trace/``);
* fault-injected runs attribute drop / retry / heartbeat events to the
  correct worker and round.
"""

import json
import os

import pytest

from repro import telemetry
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.data import kdd10_like, train_test_split
from repro.distributed import DistributedTrainer, TrainerConfig
from repro.distributed.network import infinite_bandwidth
from repro.models import make_model
from repro.optim import SGD
from repro.runtime import FaultSchedule, RuntimeConfig, SupervisionConfig
from repro.telemetry import recorder as recorder_module
from repro.telemetry.epoch import replay_epoch_sums
from repro.telemetry.merge import read_trace
from repro.telemetry.schema import validate_trace

SEED = 7
NUM_WORKERS = 2
EPOCHS = 2

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "trace",
    "sim_2worker_projection.json",
)


@pytest.fixture(autouse=True)
def clean_telemetry_state():
    assert telemetry.get_recorder() is None
    assert telemetry.active_session() is None
    yield
    if telemetry.active_session() is not None:
        telemetry.finish_run()
    leftover = telemetry.set_recorder(None)
    if leftover is not None:
        leftover.close()
    recorder_module._CONTEXT.clear()


def run_traced(out_path, backend, runtime=None, run_id="trace-test"):
    """One fixed-seed training run with the flight recorder on."""
    split = train_test_split(kdd10_like(seed=SEED, scale=0.02), seed=SEED)
    train, _ = split
    trainer = DistributedTrainer(
        model=make_model("lr", train.num_features),
        optimizer=SGD(learning_rate=0.1),
        compressor_factory=lambda: SketchMLCompressor(
            SketchMLConfig.full(seed=SEED)
        ),
        network=infinite_bandwidth(),
        config=TrainerConfig(
            num_workers=NUM_WORKERS,
            batch_fraction=0.25,
            epochs=EPOCHS,
            seed=SEED,
            backend=backend,
        ),
        runtime=runtime,
    )
    telemetry.start_run(out_path, run_id=run_id)
    try:
        history = trainer.train(*split)
    finally:
        telemetry.finish_run()
    return history, read_trace(out_path)


def project_trace(events):
    """Timing-free inventory of a trace: key -> occurrence count.

    Keeps the deterministic coordinates of every event — type, name,
    worker / epoch / round / phase attribution, and counter values
    (which pin the byte accounting) — and drops everything wall-clock
    dependent (ts, dur, pid, seq, measured seconds).
    """
    counts = {}
    for event in events:
        if event["type"] == "meta":
            key = (
                f"meta source={event['source']} "
                f"w={event.get('worker', '-')}"
            )
        else:
            attrs = event.get("attrs") or {}
            worker = attrs.get("worker", event.get("worker", "-"))
            key = (
                f"{event['type']} {event.get('name', '-')} "
                f"w={worker} e={event.get('epoch', '-')} "
                f"r={event.get('round', '-')} p={event.get('phase', '-')}"
            )
            if event["type"] == "counter":
                key += f" v={event['value']}"
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def assert_replay_matches_history(events, history):
    """Per-epoch trainer.* event sums == EpochRecord fields, exactly."""
    replay = replay_epoch_sums(events)
    assert sorted(replay) == [e.epoch for e in history.epochs]
    for record in history.epochs:
        sums = replay[record.epoch]
        assert sums["compute_seconds"] == record.compute_seconds
        assert sums["network_seconds"] == record.network_seconds
        assert sums["encode_seconds"] == record.encode_seconds
        assert sums["decode_seconds"] == record.decode_seconds
        assert sums["bytes_sent"] == record.bytes_sent
        assert sums["raw_bytes"] == record.raw_bytes
        assert sums["num_messages"] == record.num_messages
        assert (
            sums["gradient_nnz"] / sums["num_messages"]
            == record.gradient_nnz
        )


@pytest.fixture(scope="module")
def sim_trace(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("trace") / "sim.jsonl")
    return run_traced(out, "sim", run_id="golden-sim")


class TestSimTrace:
    def test_trace_is_schema_valid(self, sim_trace):
        _, events = sim_trace
        stats = validate_trace(events)
        assert stats["processes"] == 1
        for etype in ("meta", "span", "measure", "counter"):
            assert stats["types"].get(etype, 0) > 0

    def test_epoch_records_replay_exactly(self, sim_trace):
        history, events = sim_trace
        assert history.num_epochs == EPOCHS
        assert_replay_matches_history(events, history)

    def test_span_taxonomy_present(self, sim_trace):
        _, events = sim_trace
        span_names = {e["name"] for e in events if e["type"] == "span"}
        for name in ("trainer.epoch", "trainer.round", "worker.step",
                     "codec.compress", "codec.decompress"):
            assert name in span_names, name
        step_workers = {
            e["worker"] for e in events
            if e["type"] == "span" and e["name"] == "worker.step"
        }
        assert step_workers == set(range(NUM_WORKERS))

    def test_every_event_carries_the_run_id(self, sim_trace):
        _, events = sim_trace
        assert all(e.get("run") == "golden-sim" for e in events
                   if e["type"] != "meta")

    def test_projection_matches_committed_golden(self, sim_trace):
        _, events = sim_trace
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert golden["format"] == "repro-trace-projection/1"
        projection = project_trace(events)
        assert projection == golden["projection"], (
            "trace inventory drifted from tests/golden/trace/ — if the "
            "instrumentation changed deliberately, regenerate the "
            "fixture with tests/golden/trace/regen.py"
        )


class TestMpTrace:
    def test_mp_trace_merges_workers_and_replays_exactly(self, tmp_path):
        out = str(tmp_path / "mp.jsonl")
        history, events = run_traced(out, "mp", run_id="mp-run")
        stats = validate_trace(events)
        # Driver + one process per worker.
        assert stats["processes"] == 1 + NUM_WORKERS
        sources = [e["source"] for e in events if e["type"] == "meta"]
        assert sources.count("driver") == 1
        assert sources.count("worker") == NUM_WORKERS
        assert_replay_matches_history(events, history)
        # Worker-side spans arrive attributed in the merged trace.
        step_workers = {
            e["worker"] for e in events
            if e["type"] == "span" and e["name"] == "worker.step"
        }
        assert step_workers == set(range(NUM_WORKERS))
        # Driver-side wire accounting covers every worker both ways.
        for name in ("transport.bytes_sent", "transport.bytes_recv"):
            workers = {
                (e.get("attrs") or {}).get("worker") for e in events
                if e["type"] == "counter" and e["name"] == name
            }
            assert workers == set(range(NUM_WORKERS)), name


class TestFaultAttribution:
    def test_drop_retry_heartbeat_events_attributed(self, tmp_path):
        # Surgical drops: per-(send, worker) frame index 0 is INIT, so
        # index 1 is the first STEP frame (worker 0) and index 2 the
        # first UPDATE frame (worker 1).
        schedule = FaultSchedule([
            ("drop", "send", 0, 1),
            ("drop", "send", 1, 2),
        ])
        runtime = RuntimeConfig(
            supervision=SupervisionConfig(
                message_timeout=2.0,
                max_retries=5,
                backoff_base=0.01,
                backoff_jitter=0.0,
                heartbeat_interval=0.05,
                seed=SEED,
            ),
            fault_schedule=schedule,
        )
        out = str(tmp_path / "faults.jsonl")
        history, events = run_traced(out, "mp", runtime=runtime,
                                     run_id="fault-run")
        validate_trace(events)
        assert history.num_epochs == EPOCHS

        drops = [e for e in events
                 if e["type"] == "event" and e["name"] == "fault.drop"]
        assert len(drops) == len(schedule.entries)
        assert sorted(e["attrs"]["worker"] for e in drops) == [0, 1]
        assert all(e["attrs"]["direction"] == "send" for e in drops)

        retries = [e for e in events
                   if e["type"] == "event" and e["name"] == "runtime.retry"]
        for drop in drops:
            matching = [
                r for r in retries
                if r["attrs"]["worker"] == drop["attrs"]["worker"]
                and r.get("round") == drop.get("round")
            ]
            assert matching, (
                f"no retry attributed to worker "
                f"{drop['attrs']['worker']} round {drop.get('round')}"
            )

        retry_counts = sum(
            e["value"] for e in events
            if e["type"] == "counter" and e["name"] == "runtime.retries"
        )
        assert retry_counts == len(retries)

        # Workers heartbeat every 50ms; the 2s timeout windows opened
        # by the drops guarantee the driver drains some, attributed to
        # the worker that sent them.
        heartbeats = [
            e for e in events
            if e["type"] == "counter" and e["name"] == "runtime.heartbeats"
        ]
        assert heartbeats
        assert all(
            e["attrs"]["worker"] in range(NUM_WORKERS) for e in heartbeats
        )
