"""Sanitizer tests: enablement plumbing, per-invariant check functions,
and end-to-end injection — a tampered message must raise a structured
:class:`SanitizerError`, and the same tamper must decode silently with
the sanitizer off (proving the sanitizer is what catches it)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sanitize
from repro.core.compressor import SketchMLCompressor
from repro.core.config import SketchMLConfig
from repro.sanitize import (
    INVARIANT_ASCENDING_KEYS,
    INVARIANT_DECAY_SCALE,
    INVARIANT_INDEX_RANGE,
    INVARIANT_ONE_SIDED,
    INVARIANT_SIGN,
    INVARIANTS,
    SanitizerError,
)

DIMENSION = 100_000


def make_gradient(seed=0, nnz=2_000):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(DIMENSION, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 0.001
    return keys, values


@pytest.fixture(autouse=True)
def _reset_forced():
    """Leave the process-global force flag as we found it."""
    previous = sanitize.set_enabled(None)
    yield
    sanitize.set_enabled(previous)


class TestEnablement:
    def test_env_var_controls_default(self, monkeypatch):
        for off in ("", "0", "false", "off", "no", "FALSE", " Off "):
            monkeypatch.setenv("REPRO_SANITIZE", off)
            assert not sanitize.enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize.enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.enabled()

    def test_set_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitize.set_enabled(False)
        assert not sanitize.enabled()
        sanitize.set_enabled(None)
        assert sanitize.enabled()

    def test_context_manager_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        with sanitize.sanitized():
            assert sanitize.enabled()
            with sanitize.sanitized(False):
                assert not sanitize.enabled()
            assert sanitize.enabled()
        assert not sanitize.enabled()

    def test_config_flag_enables_per_compressor(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        with sanitize.sanitized(False):
            keys, values = make_gradient()
            comp = SketchMLCompressor(SketchMLConfig(sanitize=True))
            message = comp.compress(keys, values, DIMENSION)
            message.payload.decay_scale = 99.0
            with pytest.raises(SanitizerError):
                comp.decompress(message)


class TestCheckFunctions:
    def test_error_is_a_valueerror_and_structured(self):
        err = SanitizerError(INVARIANT_SIGN, "boom", part="sign=1",
                            group=2, offset=7)
        assert isinstance(err, ValueError)
        assert err.invariant == INVARIANT_SIGN
        assert err.group == 2 and err.offset == 7
        assert INVARIANT_SIGN in str(err) and "offset=7" in str(err)
        assert err.invariant in INVARIANTS

    def test_sign_preservation(self):
        sanitize.check_sign_preservation(1, np.array([0.0, 0.5, 2.0]))
        sanitize.check_sign_preservation(-1, np.array([-0.5, 0.0]))
        sanitize.check_sign_preservation(0, np.array([-1.0, 1.0]))
        with pytest.raises(SanitizerError) as info:
            sanitize.check_sign_preservation(1, np.array([0.1, -0.2]))
        assert info.value.invariant == INVARIANT_SIGN
        assert info.value.offset == 1
        with pytest.raises(SanitizerError):
            sanitize.check_sign_preservation(-1, np.array([0.3]))

    def test_bucket_index_range(self):
        sanitize.check_bucket_indexes(np.array([0, 5, 255]), 256)
        sanitize.check_bucket_indexes(
            np.array([32, 47]), 256, group=1, group_width=32
        )
        with pytest.raises(SanitizerError) as info:
            sanitize.check_bucket_indexes(np.array([0, 256]), 256)
        assert info.value.invariant == INVARIANT_INDEX_RANGE
        with pytest.raises(SanitizerError):
            sanitize.check_bucket_indexes(np.array([-1]), 256)
        # Inside [0, q) but outside the group band is still a violation.
        with pytest.raises(SanitizerError):
            sanitize.check_bucket_indexes(
                np.array([31]), 256, group=1, group_width=32
            )

    def test_one_sided(self):
        sanitize.check_one_sided(np.array([3, 7]), np.array([3, 5]))
        with pytest.raises(SanitizerError) as info:
            sanitize.check_one_sided(np.array([3, 7]), np.array([3, 8]))
        assert info.value.invariant == INVARIANT_ONE_SIDED
        assert info.value.offset == 1
        with pytest.raises(SanitizerError):
            sanitize.check_one_sided(np.array([3]), np.array([3, 4]))

    def test_ascending_keys(self):
        sanitize.check_ascending_keys(np.array([0, 1, 99]))
        sanitize.check_ascending_keys(np.array([], dtype=np.int64))
        for bad in ([5, 5], [5, 4], [-1, 3]):
            with pytest.raises(SanitizerError) as info:
                sanitize.check_ascending_keys(np.array(bad))
            assert info.value.invariant == INVARIANT_ASCENDING_KEYS

    def test_decay_scale(self):
        sanitize.check_decay_scale(1.0)
        sanitize.check_decay_scale(8.0)
        for bad in (0.5, 8.5, float("nan"), float("inf")):
            with pytest.raises(SanitizerError) as info:
                sanitize.check_decay_scale(bad)
            assert info.value.invariant == INVARIANT_DECAY_SCALE


class _OverEstimatingSketch:
    """Duck-typed sketch whose queries inflate the stored offsets."""

    group_width = 4
    index_range = 8

    def query_group(self, group, keys, strict=False):
        # True offsets are 0..n-1; report them all as the band maximum.
        base = group * self.group_width
        return np.full(len(keys), base + self.group_width - 1, dtype=np.int64)


class TestEncoderSideVerify:
    def test_rejects_over_estimating_sketch(self):
        sorted_keys = np.array([5, 9, 12], dtype=np.int64)
        sorted_offsets = np.array([0, 1, 0], dtype=np.int64)
        counts = np.array([2, 1], dtype=np.int64)
        with pytest.raises(SanitizerError) as info:
            sanitize.verify_sketch_roundtrip(
                _OverEstimatingSketch(), sorted_keys, sorted_offsets, counts
            )
        assert info.value.invariant == INVARIANT_ONE_SIDED

    def test_accepts_real_sketch(self):
        keys, values = make_gradient(seed=3)
        with sanitize.sanitized():
            SketchMLCompressor().compress(keys, values, DIMENSION)


class TestCompressorInjection:
    """The acceptance-criteria injections: each tamper raises a
    SanitizerError naming the violated invariant, and decodes silently
    (wrong, but silently) with the sanitizer off."""

    def _roundtrip_raises(self, message, invariant, config=None):
        comp = SketchMLCompressor(config)
        with sanitize.sanitized():
            with pytest.raises(SanitizerError) as info:
                comp.decompress(message)
        assert info.value.invariant == invariant
        with sanitize.sanitized(False):
            comp.decompress(message)  # same tamper, no sanitizer: silent

    def test_valid_roundtrip_passes(self):
        keys, values = make_gradient(seed=1)
        with sanitize.sanitized():
            comp = SketchMLCompressor()
            out_keys, out_values, _ = comp.roundtrip(keys, values, DIMENSION)
        assert np.array_equal(out_keys, keys)
        assert np.all(np.sign(out_values) * np.sign(values) >= 0)

    def test_sign_flip_rejected(self):
        keys, values = make_gradient(seed=2)
        message = SketchMLCompressor().compress(keys, values, DIMENSION)
        part = next(p for p in message.payload.parts if p.sign > 0)
        part.buckets.sign = -1.0  # decoded positives now come out negative
        self._roundtrip_raises(message, INVARIANT_SIGN)

    def test_over_estimated_index_rejected(self):
        config = SketchMLConfig(enable_minmax=False, pack_index_bits=False)
        keys, values = make_gradient(seed=4)
        message = SketchMLCompressor(config).compress(keys, values, DIMENSION)
        part = message.payload.parts[0]
        assert part.indexes is not None
        part.indexes[0] = part.buckets.num_buckets + 1
        self._roundtrip_raises(message, INVARIANT_INDEX_RANGE, config)

    def test_sketch_table_tamper_rejected(self):
        keys, values = make_gradient(seed=5)
        message = SketchMLCompressor().compress(keys, values, DIMENSION)
        part = next(p for p in message.payload.parts if p.sketch is not None)
        inner = part.sketch._sketches[0]
        inner._table[:] = part.sketch.group_width  # >= per-group range
        self._roundtrip_raises(message, INVARIANT_INDEX_RANGE)

    def test_duplicate_keys_rejected(self):
        keys, values = make_gradient(seed=6)
        message = SketchMLCompressor().compress(keys, values, DIMENSION)
        # Duplicate a part: every one of its keys now appears twice in
        # the merged decode.
        message.payload.parts.append(message.payload.parts[0])
        self._roundtrip_raises(message, INVARIANT_ASCENDING_KEYS)

    def test_decay_scale_tamper_rejected(self):
        keys, values = make_gradient(seed=7)
        message = SketchMLCompressor().compress(keys, values, DIMENSION)
        message.payload.decay_scale = 99.0
        self._roundtrip_raises(message, INVARIANT_DECAY_SCALE)


class TestSanitizedProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), nnz=st.integers(32, 400))
    def test_valid_messages_always_accepted(self, seed, nnz):
        keys, values = make_gradient(seed=seed, nnz=nnz)
        with sanitize.sanitized():
            out_keys, out_values, _ = SketchMLCompressor().roundtrip(
                keys, values, DIMENSION
            )
        assert np.array_equal(out_keys, keys)
        assert np.all(np.sign(out_values) * np.sign(values) >= 0)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        corruption=st.sampled_from(["sign-flip", "dup-part", "decay"]),
    )
    def test_corrupted_messages_always_rejected(self, seed, corruption):
        keys, values = make_gradient(seed=seed, nnz=256)
        comp = SketchMLCompressor()
        message = comp.compress(keys, values, DIMENSION)
        payload = message.payload
        if corruption == "sign-flip":
            payload.parts[0].buckets.sign = -payload.parts[0].buckets.sign
        elif corruption == "dup-part":
            payload.parts.append(payload.parts[0])
        else:
            payload.decay_scale = -3.0
        with sanitize.sanitized():
            with pytest.raises(SanitizerError):
                comp.decompress(message)
