"""Tests for quantile-bucket quantification (§3.2 + §3.3 Solution 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantizer import QuantileBucketQuantizer, SignedBuckets


def laplace_values(n=5_000, scale=0.01, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.laplace(scale=scale, size=n)
    values[values == 0.0] = scale / 100
    return values


class TestFit:
    def test_requires_fit_before_encode(self):
        quant = QuantileBucketQuantizer()
        with pytest.raises(RuntimeError, match="fit"):
            quant.encode(np.asarray([0.1]))
        with pytest.raises(RuntimeError, match="fit"):
            quant.decode(np.asarray([1]), np.asarray([0]))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            QuantileBucketQuantizer().fit(np.asarray([]))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            QuantileBucketQuantizer().fit(np.asarray([1.0, np.inf]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            QuantileBucketQuantizer(num_buckets=1)
        with pytest.raises(ValueError):
            QuantileBucketQuantizer(sketch="hdr-histogram")

    def test_bucket_budget_split_by_counts(self):
        rng = np.random.default_rng(1)
        values = np.concatenate(
            [rng.uniform(0.001, 1, size=9_000), -rng.uniform(0.001, 1, size=1_000)]
        )
        quant = QuantileBucketQuantizer(num_buckets=100).fit(values)
        assert quant.positive.num_buckets == pytest.approx(90, abs=3)
        assert quant.negative.num_buckets == pytest.approx(10, abs=3)
        assert quant.total_buckets == 100

    def test_single_sign_gets_all_buckets(self):
        values = np.linspace(0.01, 1.0, 1_000)
        quant = QuantileBucketQuantizer(num_buckets=64).fit(values)
        assert quant.positive.num_buckets == 64
        assert quant.negative is None


class TestRoundtrip:
    @pytest.mark.parametrize("sketch", ["exact", "kll", "gk"])
    def test_sign_never_flips(self, sketch):
        """§3.3 Solution 1: pos/neg separation prevents reversed gradients."""
        values = laplace_values()
        quant = QuantileBucketQuantizer(num_buckets=64, sketch=sketch).fit(values)
        decoded = quant.quantize(values)
        nonzero = values != 0
        assert np.all(np.sign(decoded[nonzero]) == np.sign(values[nonzero]))

    def test_equi_depth_buckets(self):
        """Each bucket should receive roughly the same number of values."""
        values = laplace_values(n=20_000)
        quant = QuantileBucketQuantizer(num_buckets=32, sketch="exact").fit(values)
        _, indexes = quant.encode(values[values > 0])
        counts = np.bincount(indexes, minlength=quant.positive.num_buckets)
        expected = counts.sum() / counts.size
        assert counts.max() < 3 * expected

    def test_indexes_ordered_by_magnitude(self):
        """Index 0 must be the bucket nearest zero for both signs."""
        values = laplace_values()
        quant = QuantileBucketQuantizer(num_buckets=64, sketch="exact").fit(values)
        signs, indexes = quant.encode(values)
        for sign in (1, -1):
            mask = signs == sign
            mags = np.abs(values[mask])
            idx = indexes[mask]
            # Average magnitude must increase with bucket index.
            top = mags[idx >= idx.max() - 2].mean()
            bottom = mags[idx <= 2].mean()
            assert top > bottom

    def test_decode_is_bucket_mean(self):
        values = np.asarray([0.1, 0.2, 0.3, 0.4])
        quant = QuantileBucketQuantizer(num_buckets=2, sketch="exact").fit(values)
        decoded = quant.quantize(values)
        assert np.all(decoded > 0)
        assert len(np.unique(decoded)) <= 2

    def test_quantization_error_shrinks_with_buckets(self):
        values = laplace_values(n=20_000)
        errors = []
        for q in (8, 32, 128):
            quant = QuantileBucketQuantizer(num_buckets=q, sketch="exact").fit(values)
            decoded = quant.quantize(values)
            errors.append(np.mean((decoded - values) ** 2))
        assert errors[0] > errors[1] > errors[2]

    def test_all_negative_values(self):
        values = -np.abs(laplace_values())
        quant = QuantileBucketQuantizer(num_buckets=32).fit(values)
        decoded = quant.quantize(values)
        assert np.all(decoded < 0)

    def test_zero_treated_as_positive(self):
        values = np.asarray([0.0, 0.5, -0.5, 1.0])
        quant = QuantileBucketQuantizer(num_buckets=4, sketch="exact").fit(values)
        signs, _ = quant.encode(values)
        assert signs[0] == 1

    def test_encode_unseen_sign_raises(self):
        quant = QuantileBucketQuantizer(num_buckets=8, sketch="exact").fit(
            np.asarray([0.1, 0.2, 0.3])
        )
        with pytest.raises(ValueError, match="negative"):
            quant.encode(np.asarray([-0.1]))


class TestVarianceBound:
    """Theorem A.2: E||g - ĝ||² <= d/(4q) (phi_min² + phi_max²)."""

    @pytest.mark.parametrize("q", [16, 64, 256])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bound_holds(self, q, seed):
        values = laplace_values(n=4_000, seed=seed)
        quant = QuantileBucketQuantizer(num_buckets=q, sketch="exact").fit(values)
        decoded = quant.quantize(values)
        actual = float(np.sum((decoded - values) ** 2))
        assert actual <= quant.variance_bound(values) * 1.0000001

    def test_bound_formula(self):
        values = np.asarray([-0.5, 0.1, 0.3])
        quant = QuantileBucketQuantizer(num_buckets=10)
        expected = 3 / 40 * (0.5**2 + 0.3**2)
        assert quant.variance_bound(values) == pytest.approx(expected)

    def test_beats_uniform_near_zero(self):
        """The motivation for Fig. 4: uniform (equi-width) quantization
        collapses the near-zero mass of a gradient onto a single level
        ("methods such as ZipML quantify them to zero"), while
        equi-depth buckets keep resolving it."""
        values = laplace_values(n=20_000, scale=0.01, seed=9)
        q = 16
        quant = QuantileBucketQuantizer(num_buckets=q, sketch="exact").fit(values)
        quantile_decoded = quant.quantize(values)
        # Uniform (equi-width) quantization over the same range.
        low, high = values.min(), values.max()
        width = (high - low) / q
        uniform_decoded = low + (np.floor((values - low) / width) + 0.5) * width
        # Typical (median) relative error on the small half of the
        # gradient mass: uniform rounds those values to the dominant
        # level (≈100% relative error); equi-depth keeps resolving them.
        small = np.abs(values) < np.median(np.abs(values))
        rel_quantile = np.median(
            np.abs((quantile_decoded[small] - values[small]) / values[small])
        )
        rel_uniform = np.median(
            np.abs((uniform_decoded[small] - values[small]) / values[small])
        )
        assert rel_quantile < rel_uniform / 2
        # Uniform collapses a large share of values onto one level.
        dominant_level_share = (
            np.bincount(
                np.floor((values - low) / width).astype(int), minlength=q
            ).max()
            / values.size
        )
        assert dominant_level_share > 0.4


class TestSignedBuckets:
    def test_payload_bytes(self):
        buckets = SignedBuckets(
            splits=np.asarray([0.0, 0.5, 1.0]),
            means=np.asarray([0.25, 0.75]),
            sign=1.0,
        )
        assert buckets.payload_bytes == 16
        assert buckets.num_buckets == 2

    def test_decode_clips_out_of_range(self):
        buckets = SignedBuckets(
            splits=np.asarray([0.0, 0.5, 1.0]),
            means=np.asarray([0.25, 0.75]),
            sign=-1.0,
        )
        decoded = buckets.decode(np.asarray([-5, 0, 1, 99]))
        assert decoded.tolist() == [-0.25, -0.25, -0.75, -0.75]


@given(
    n=st.integers(min_value=2, max_value=400),
    q=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_properties(n, q, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(scale=0.1, size=n)
    values[values == 0.0] = 0.05
    quant = QuantileBucketQuantizer(num_buckets=q, sketch="exact").fit(values)
    decoded = quant.quantize(values)
    # Signs preserved, magnitudes within the fitted range.
    assert np.all(np.sign(decoded) == np.sign(values))
    assert np.all(np.abs(decoded) <= np.abs(values).max() + 1e-12)
