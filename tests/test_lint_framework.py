"""Framework-level tests: noqa policy, selection, file walking, and the
committed tree staying lint-clean."""

import os

import pytest

from repro.lint import LintError, build_rules, lint_paths, lint_source

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")

BAD_EXCEPT = "try:\n    f()\nexcept:\n    g()\n"


class TestNoqaPolicy:
    def test_justified_noqa_suppresses(self):
        text = (
            "try:\n"
            "    f()\n"
            "except:  # repro: noqa[bare-except] — demo fixture needs it\n"
            "    g()\n"
        )
        assert lint_source(text, select=["bare-except"]) == []

    def test_ascii_separators_accepted(self):
        for sep in ("--", "-", ":"):
            text = (
                "try:\n"
                "    f()\n"
                f"except:  # repro: noqa[bare-except] {sep} fixture\n"
                "    g()\n"
            )
            assert lint_source(text, select=["bare-except"]) == []

    def test_noqa_without_reason_is_a_finding(self):
        text = (
            "try:\n"
            "    f()\n"
            "except:  # repro: noqa[bare-except]\n"
            "    g()\n"
        )
        findings = lint_source(text, select=["bare-except"])
        # An unjustified noqa does not suppress: the original finding
        # survives AND the missing justification is itself reported.
        assert sorted(f.rule_id for f in findings) == [
            "bare-except", "noqa-justification"
        ]

    def test_noqa_for_unknown_rule_is_a_finding(self):
        text = "x = 1  # repro: noqa[no-such-rule] — whatever\n"
        findings = lint_source(text)
        assert any(f.rule_id == "noqa-justification" and
                   "no-such-rule" in f.message for f in findings)

    def test_noqa_only_suppresses_named_rule(self):
        text = (
            "try:\n"
            "    f()\n"
            "except:  # repro: noqa[hot-loop] — wrong rule named\n"
            "    g()\n"
        )
        findings = lint_source(text, select=["bare-except", "hot-loop"])
        assert [f.rule_id for f in findings] == ["bare-except"]

    def test_multi_rule_noqa(self):
        text = (
            "try:\n"
            "    f()\n"
            "except:  # repro: noqa[bare-except, hot-loop] — fixture\n"
            "    g()\n"
        )
        assert lint_source(text, select=["bare-except"]) == []


class TestSelection:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="no-such-rule"):
            build_rules(["no-such-rule"])

    def test_select_limits_rules(self):
        text = BAD_EXCEPT + "def public():\n    return 1\n"
        all_ids = {f.rule_id for f in lint_source(text)}
        assert {"bare-except", "missing-all"} <= all_ids
        only = {f.rule_id for f in lint_source(text, select=["bare-except"])}
        assert only == {"bare-except"}

    def test_findings_carry_location(self):
        findings = lint_source(BAD_EXCEPT, path="pkg/mod.py",
                               select=["bare-except"])
        f = findings[0]
        assert f.path == "pkg/mod.py"
        assert f.line == 3
        assert f.location.startswith("pkg/mod.py:3:")
        assert f.to_dict()["rule"] == "bare-except"


class TestLintPaths:
    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no-such-dir"):
            lint_paths(["no-such-dir"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([str(tmp_path)])
        assert [f.rule_id for f in findings] == ["syntax-error"]

    def test_walks_directories_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text(BAD_EXCEPT)
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "a.py").write_text(BAD_EXCEPT)
        findings = lint_paths([str(tmp_path)], select=["bare-except"])
        assert [os.path.basename(f.path) for f in findings] == ["b.py", "a.py"]


class TestCommittedTree:
    def test_repo_package_is_lint_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(
            f"{f.location}: [{f.rule_id}] {f.message}" for f in findings
        )
