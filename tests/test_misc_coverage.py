"""Targeted tests for smaller code paths not covered elsewhere."""

import numpy as np
import pytest

from repro.compression.base import (
    CompressedGradient,
    GradientCompressor,
    register_compressor,
    validate_sparse_gradient,
)
from repro.compression import IdentityCompressor
from repro.data import mnist_like
from repro.distributed import Worker
from repro.models import DenseDataset, MLPClassifier, Model
from repro.models.base import Model as BaseModel


class TestCompressedGradient:
    def test_raw_bytes_and_rate(self):
        msg = CompressedGradient(payload=None, num_bytes=600, dimension=10, nnz=100)
        assert msg.raw_bytes == 1_200
        assert msg.compression_rate == pytest.approx(2.0)

    def test_zero_bytes_rate_is_inf(self):
        msg = CompressedGradient(payload=None, num_bytes=0, dimension=10, nnz=5)
        assert msg.compression_rate == float("inf")


class TestGradientCompressorBase:
    def test_abstract_methods_raise(self):
        comp = GradientCompressor()
        with pytest.raises(NotImplementedError):
            comp.compress(np.asarray([0]), np.asarray([1.0]), 1)
        with pytest.raises(NotImplementedError):
            comp.decompress(
                CompressedGradient(payload=None, num_bytes=0, dimension=1, nnz=0)
            )
        comp.reset()  # default no-op must not raise
        assert "GradientCompressor" in repr(comp)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_compressor("identity")(IdentityCompressor)

    def test_validate_sparse_gradient_canonicalises(self):
        keys, values = validate_sparse_gradient([1, 5], [0.5, -0.5], 10)
        assert keys.dtype == np.int64
        assert values.dtype == np.float64

    def test_validate_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            validate_sparse_gradient(np.zeros((2, 2)), np.zeros((2, 2)), 10)


class TestModelBase:
    def test_abstract_methods_raise(self):
        model = BaseModel(num_features=5)
        with pytest.raises(NotImplementedError):
            model.batch_gradient(None, np.asarray([0]), np.zeros(5))
        with pytest.raises(NotImplementedError):
            model.data_loss(None, np.asarray([0]), np.zeros(5))
        assert model.num_parameters == 5
        assert model.init_theta().shape == (5,)

    def test_reg_loss_zero_lambda(self):
        model = BaseModel(num_features=3, reg_lambda=0.0)
        assert model._reg_loss(np.ones(3)) == 0.0


class TestWorkerDensePath:
    def test_batch_nnz_counts_every_cell(self):
        images, labels = mnist_like(num_train=30, seed=0)
        dataset = DenseDataset(images, labels)
        model = MLPClassifier(input_dim=400, hidden_dims=(8,), num_classes=10)
        worker = Worker(
            worker_id=0,
            dataset=dataset,
            model=model,
            compressor=IdentityCompressor(),
            batch_size=10,
            compute_seconds_per_nnz=1.0,  # 1 second per cell -> easy check
        )
        worker.start_epoch()
        rows = worker.next_batch()
        result = worker.compute_step(rows, model.init_theta())
        # Modelled compute = rows * 400 pixels * 1 s/pixel (plus tiny
        # measured time).
        assert result.compute_seconds == pytest.approx(rows.size * 400, rel=0.01)

    def test_negative_rate_rejected(self):
        images, labels = mnist_like(num_train=10, seed=1)
        dataset = DenseDataset(images, labels)
        model = MLPClassifier(input_dim=400, hidden_dims=(4,), num_classes=10)
        with pytest.raises(ValueError):
            Worker(0, dataset, model, IdentityCompressor(), batch_size=5,
                   compute_seconds_per_nnz=-1.0)


class TestSparseVectorRepr:
    def test_reprs_are_informative(self):
        from repro.core import MinMaxSketch, SketchMLCompressor, SketchMLConfig
        from repro.data import SparseVector
        from repro.sketch import GKSummary, KLLSketch, TDigest

        assert "nnz=2" in repr(SparseVector(np.asarray([0, 1]), np.ones(2), 4))
        assert "rows=" in repr(MinMaxSketch())
        assert "Adam" in repr(SketchMLCompressor(SketchMLConfig.adam()))
        assert "GKSummary" in repr(GKSummary())
        assert "KLLSketch" in repr(KLLSketch())
        assert "TDigest" in repr(TDigest())
