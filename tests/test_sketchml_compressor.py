"""End-to-end tests for the SketchML compressor (Figure 2 pipeline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressedGradient
from repro.core import SketchMLCompressor, SketchMLConfig


def make_gradient(nnz=3_000, dimension=100_000, seed=0, scale=0.01):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=scale, size=nnz)
    values[values == 0.0] = scale / 10
    return keys, values, dimension


ABLATION_CONFIGS = [
    SketchMLConfig.adam(),
    SketchMLConfig.keys_only(),
    SketchMLConfig.keys_and_quantization(),
    SketchMLConfig.full(),
]


class TestConfig:
    def test_minmax_requires_quantization(self):
        with pytest.raises(ValueError, match="requires enable_quantization"):
            SketchMLConfig(enable_quantization=False, enable_minmax=True)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SketchMLConfig(num_buckets=1)
        with pytest.raises(ValueError):
            SketchMLConfig(minmax_rows=0)
        with pytest.raises(ValueError):
            SketchMLConfig(num_groups=0)
        with pytest.raises(ValueError):
            SketchMLConfig(quantile_sketch="bogus")

    def test_ablation_labels(self):
        labels = [cfg.ablation_label for cfg in ABLATION_CONFIGS]
        assert labels == [
            "Adam",
            "Adam+Key",
            "Adam+Key+Quan",
            "Adam+Key+Quan+MinMax",
        ]

    def test_with_overrides(self):
        cfg = SketchMLConfig().with_overrides(num_buckets=64)
        assert cfg.num_buckets == 64
        assert SketchMLConfig().num_buckets == 128  # original untouched

    def test_minmax_total_bins(self):
        cfg = SketchMLConfig(minmax_cols_factor=0.2, minmax_min_cols=64)
        assert cfg.minmax_total_bins(10_000) == 2_000
        assert cfg.minmax_total_bins(10) == 64


class TestRoundtrip:
    @pytest.mark.parametrize("config", ABLATION_CONFIGS, ids=lambda c: c.ablation_label)
    def test_keys_always_lossless(self, config):
        keys, values, dim = make_gradient(seed=1)
        comp = SketchMLCompressor(config)
        out_keys, out_values, _ = comp.roundtrip(keys, values, dim)
        np.testing.assert_array_equal(out_keys, keys)
        assert out_values.size == values.size

    @pytest.mark.parametrize("config", ABLATION_CONFIGS, ids=lambda c: c.ablation_label)
    def test_signs_never_flip(self, config):
        keys, values, dim = make_gradient(seed=2)
        comp = SketchMLCompressor(config)
        _, out_values, _ = comp.roundtrip(keys, values, dim)
        assert np.all(np.sign(out_values) == np.sign(values))

    def test_unquantized_paths_are_exact(self):
        keys, values, dim = make_gradient(seed=3)
        for config in (SketchMLConfig.adam(), SketchMLConfig.keys_only()):
            _, out_values, _ = SketchMLCompressor(config).roundtrip(
                keys, values, dim
            )
            np.testing.assert_allclose(out_values, values)

    def test_full_pipeline_decays_magnitudes(self):
        """MinMaxSketch underestimates: |decoded| <= max bucket mean and
        the mean magnitude never grows."""
        keys, values, dim = make_gradient(seed=4)
        comp = SketchMLCompressor(SketchMLConfig.full())
        _, out_values, _ = comp.roundtrip(keys, values, dim)
        assert np.abs(out_values).mean() <= np.abs(values).mean() * 1.05

    def test_empty_gradient(self):
        comp = SketchMLCompressor()
        keys = np.asarray([], dtype=np.int64)
        values = np.asarray([], dtype=np.float64)
        out_keys, out_values, msg = comp.roundtrip(keys, values, 1_000)
        assert out_keys.size == 0
        assert out_values.size == 0
        assert msg.num_bytes > 0  # header only

    def test_single_pair(self):
        comp = SketchMLCompressor()
        out_keys, out_values, _ = comp.roundtrip(
            np.asarray([42]), np.asarray([-0.5]), 1_000
        )
        assert out_keys.tolist() == [42]
        assert out_values[0] == pytest.approx(-0.5)

    def test_all_positive_gradient(self):
        rng = np.random.default_rng(5)
        keys = np.sort(rng.choice(10_000, size=500, replace=False))
        values = np.abs(rng.laplace(scale=0.1, size=500)) + 1e-6
        out_keys, out_values, _ = SketchMLCompressor().roundtrip(keys, values, 10_000)
        np.testing.assert_array_equal(out_keys, keys)
        assert np.all(out_values > 0)

    def test_tiny_dimension(self):
        keys = np.asarray([0, 1, 2])
        values = np.asarray([0.5, -0.25, 0.125])
        out_keys, out_values, _ = SketchMLCompressor().roundtrip(keys, values, 3)
        np.testing.assert_array_equal(out_keys, keys)
        assert np.all(np.sign(out_values) == np.sign(values))


class TestByteAccounting:
    def test_compression_rates_increase_down_the_stack(self):
        """Fig. 8(b): each added component increases the rate."""
        keys, values, dim = make_gradient(nnz=8_000, seed=6)
        rates = []
        for config in ABLATION_CONFIGS:
            msg = SketchMLCompressor(config).compress(keys, values, dim)
            rates.append(msg.compression_rate)
        assert rates[0] == pytest.approx(1.0, rel=0.01)  # header overhead only
        assert rates[1] > rates[0]
        assert rates[2] > rates[1]
        assert rates[3] > rates[2]

    def test_breakdown_sums_to_total(self):
        keys, values, dim = make_gradient(seed=7)
        for config in ABLATION_CONFIGS:
            msg = SketchMLCompressor(config).compress(keys, values, dim)
            assert sum(msg.breakdown.values()) == msg.num_bytes

    def test_raw_bytes_is_12d(self):
        keys, values, dim = make_gradient(nnz=1_000, seed=8)
        msg = SketchMLCompressor().compress(keys, values, dim)
        assert msg.raw_bytes == 12_000

    def test_space_formula_of_section_3_5(self):
        """Total ≈ d(keys) + 8q(means) + s*t(sketch) + headers."""
        keys, values, dim = make_gradient(nnz=4_000, seed=9)
        cfg = SketchMLConfig.full()
        msg = SketchMLCompressor(cfg).compress(keys, values, dim)
        assert msg.breakdown["bucket_means"] <= 8 * cfg.num_buckets
        expected_sketch = cfg.minmax_rows * cfg.minmax_total_bins(4_000)
        # Two sign sketches share the per-sign nnz; allow rounding slack.
        assert msg.breakdown["sketch"] <= 2 * expected_sketch + 64

    def test_quan_without_minmax_charges_one_byte_per_value(self):
        keys, values, dim = make_gradient(nnz=2_000, seed=10)
        msg = SketchMLCompressor(SketchMLConfig.keys_and_quantization()).compress(
            keys, values, dim
        )
        assert msg.breakdown["values"] == 2_000

    def test_pack_index_bits_saves_space_and_roundtrips(self):
        keys, values, dim = make_gradient(nnz=4_000, seed=15)
        plain_cfg = SketchMLConfig.keys_and_quantization()
        packed_cfg = SketchMLConfig.keys_and_quantization(pack_index_bits=True)
        plain_msg = SketchMLCompressor(plain_cfg).compress(keys, values, dim)
        packed = SketchMLCompressor(packed_cfg)
        out_keys, out_values, packed_msg = packed.roundtrip(keys, values, dim)
        np.testing.assert_array_equal(out_keys, keys)
        # Same decoded values as the byte-aligned variant.
        _, plain_values = SketchMLCompressor(plain_cfg).decompress(plain_msg)
        np.testing.assert_allclose(out_values, plain_values)
        # And strictly smaller on the wire (q=128 → 7 bits/index).
        assert packed_msg.num_bytes < plain_msg.num_bytes


class TestDecodeErrors:
    def test_decompress_foreign_payload_rejected(self):
        comp = SketchMLCompressor()
        fake = CompressedGradient(payload=("x",), num_bytes=1, dimension=10, nnz=0)
        with pytest.raises(TypeError, match="SketchMLCompressor"):
            comp.decompress(fake)

    def test_decoded_quantization_error_bounded_by_buckets(self):
        keys, values, dim = make_gradient(nnz=5_000, seed=11)
        small = SketchMLCompressor(SketchMLConfig.full(num_buckets=16))
        large = SketchMLCompressor(SketchMLConfig.full(num_buckets=256))
        _, v_small, _ = small.roundtrip(keys, values, dim)
        _, v_large, _ = large.roundtrip(keys, values, dim)
        err_small = np.mean((v_small - values) ** 2)
        err_large = np.mean((v_large - values) ** 2)
        assert err_large < err_small

    def test_grouping_reduces_decode_error(self):
        keys, values, dim = make_gradient(nnz=5_000, seed=12)
        errs = {}
        for groups in (1, 8):
            comp = SketchMLCompressor(
                SketchMLConfig.full(num_groups=groups, minmax_cols_factor=0.05)
            )
            _, decoded, _ = comp.roundtrip(keys, values, dim)
            errs[groups] = float(np.mean(np.abs(decoded - values)))
        assert errs[8] <= errs[1]

    def test_seed_consistency_between_instances(self):
        """Encoder and decoder built separately must agree (same seed)."""
        keys, values, dim = make_gradient(seed=13)
        cfg = SketchMLConfig.full(seed=99)
        msg = SketchMLCompressor(cfg).compress(keys, values, dim)
        out_keys, out_values = SketchMLCompressor(cfg).decompress(msg)
        np.testing.assert_array_equal(out_keys, keys)
        assert np.all(np.sign(out_values) == np.sign(values))


@given(
    nnz=st.integers(min_value=1, max_value=500),
    seed=st.integers(min_value=0, max_value=200),
    q=st.sampled_from([16, 64, 256]),
)
@settings(max_examples=30, deadline=None)
def test_pipeline_invariants_property(nnz, seed, q):
    rng = np.random.default_rng(seed)
    dimension = max(nnz * 10, 100)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.normal(scale=0.05, size=nnz)
    values[values == 0.0] = 0.01
    comp = SketchMLCompressor(SketchMLConfig.full(num_buckets=q, seed=seed))
    out_keys, out_values, msg = comp.roundtrip(keys, values, dimension)
    np.testing.assert_array_equal(out_keys, keys)  # lossless keys
    assert np.all(np.sign(out_values) == np.sign(values))  # no reversal
    assert msg.num_bytes > 0
    assert np.abs(out_values).max() <= np.abs(values).max() + 1e-12
