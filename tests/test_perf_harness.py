"""Smoke tests for the ``repro.perf`` benchmark harness and CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.perf import BenchResult, run_suite, time_kernel, write_results
from repro.perf.suite import results_to_json

EXPECTED_KERNELS = {
    "quantizer_fit",
    "minmax_insert",
    "minmax_query",
    "delta_encode",
    "delta_decode",
    "e2e_compress",
    "e2e_decompress",
}

#: serialization kernels timed by the wire bench (repro.perf.wire_bench)
WIRE_KERNELS = {
    "wire_encode_v1",
    "wire_encode_v2",
    "wire_decode_v1",
    "wire_decode_v2",
    "wire_stream_v2",
}


def test_time_kernel_reports_median_of_repeats():
    calls = []
    result = time_kernel(
        "noop",
        lambda: calls.append(None),
        elements=1000,
        bytes_processed=8000,
        warmup=2,
        repeats=5,
    )
    assert len(calls) == 7  # warmup + repeats
    assert len(result.samples) == 5
    assert result.seconds == sorted(result.samples)[2]
    assert result.ns_per_element == result.seconds * 1e9 / 1000
    assert result.mb_per_s == pytest.approx(8000 / result.seconds / 1e6)


def test_time_kernel_rejects_bad_repeat_counts():
    with pytest.raises(ValueError):
        time_kernel("bad", lambda: None, elements=1, bytes_processed=1, repeats=0)


def test_zero_division_guards():
    result = BenchResult(
        name="degenerate", elements=0, bytes_processed=0, seconds=0.0, samples=[0.0]
    )
    assert result.ns_per_element == 0.0
    assert result.mb_per_s == 0.0


def test_run_suite_quick_covers_every_kernel():
    results = run_suite(sizes=[512], warmup=0, repeats=1)
    names = {r.name for r in results}
    assert names == {f"{k}/512" for k in EXPECTED_KERNELS}
    for r in results:
        assert r.seconds > 0
        assert r.elements > 0


def test_write_results_schema(tmp_path):
    results = run_suite(sizes=[512], warmup=0, repeats=1)
    out = tmp_path / "bench.json"
    write_results(results, str(out))
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro-bench-codec/1"
    assert payload["platform"]["numpy"] == np.__version__
    assert set(payload["kernels"]) == {r.name for r in results}
    sample = payload["kernels"]["e2e_compress/512"]
    assert set(sample) == {
        "elements", "bytes", "median_ms", "ns_per_element", "mb_per_s", "repeats",
    }
    assert sample["elements"] == 512
    # round-trip sanity: the JSON view reflects the in-memory results
    assert payload == results_to_json(results)


def test_cli_perf_quick(tmp_path, capsys):
    out = tmp_path / "BENCH_codec.json"
    code = main(["perf", "--quick", "--sizes", "512", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "e2e_compress/512" in captured
    payload = json.loads(out.read_text())
    codec_names = {f"{k}/512" for k in EXPECTED_KERNELS | WIRE_KERNELS}
    # Quick mode also times the in-process (sim) transport echo path.
    transport_names = {
        n for n in payload["kernels"] if n.startswith("transport_echo/sim/")
    }
    assert transport_names
    assert set(payload["kernels"]) == codec_names | transport_names
    # The wire bench also writes its bytes-on-wire summary section.
    wire = payload["wire"]
    assert wire["schema"] == "repro-bench-wire/1"
    row = wire["sizes"]["512"]
    assert row["v2_bytes"] <= row["v1_bytes"]
    assert row["entropy"]["coded_bytes"] <= row["entropy"]["plain_bytes"]


def test_cli_perf_no_output_file(capsys):
    code = main(["perf", "--quick", "--sizes", "512", "--out", "-"])
    assert code == 0
    assert "wrote" not in capsys.readouterr().out


def test_cli_perf_transports_none_skips_transport_bench(tmp_path):
    out = tmp_path / "bench.json"
    code = main(["perf", "--quick", "--sizes", "512", "--transports",
                 "--out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert not any(
        n.startswith("transport_echo/") for n in payload["kernels"]
    )


class TestWireBench:
    def test_measures_both_versions_and_counters(self):
        from repro.perf import run_wire_bench

        results, section = run_wire_bench(sizes=[2048], warmup=0, repeats=1)
        assert {r.name for r in results} == {
            f"{k}/2048" for k in WIRE_KERNELS
        }
        row = section["sizes"]["2048"]
        # The encoder only swaps in the rANS block when it is strictly
        # smaller, so v2 can never be larger than v1 — and the
        # telemetry counters must agree with that choice.
        assert 0 < row["v2_bytes"] <= row["v1_bytes"]
        assert row["entropy"]["plain_bytes"] > 0
        assert row["entropy"]["coded_bytes"] <= row["entropy"]["plain_bytes"]
        assert row["entropy"]["saved_bytes"] == (
            row["entropy"]["plain_bytes"] - row["entropy"]["coded_bytes"]
        )

    def test_probe_does_not_leak_recorder(self):
        from repro import telemetry
        from repro.perf import run_wire_bench

        assert not telemetry.enabled()
        run_wire_bench(sizes=[512], warmup=0, repeats=1)
        assert not telemetry.enabled()

    def test_extra_section_round_trips_through_write_results(self, tmp_path):
        from repro.perf import run_wire_bench

        results, section = run_wire_bench(sizes=[512], warmup=0, repeats=1)
        out = tmp_path / "bench.json"
        write_results(results, str(out), extra={"wire": section})
        payload = json.loads(out.read_text())
        assert payload["wire"] == section
        with pytest.raises(ValueError, match="clash"):
            results_to_json(results, extra={"kernels": {}})


class TestTransportBench:
    def test_sim_rows_record_messages_and_bytes(self):
        from repro.perf import run_transport_bench

        results = run_transport_bench(
            ["sim"], payload_sizes=[1024], warmup=0, repeats=2
        )
        assert [r.name for r in results] == ["transport_echo/sim/1024"]
        record = results[0].to_json()
        assert record["bytes_per_message"] > 1024  # payload + frame header
        assert record["messages_per_s"] > 0
        assert record["repeats"] == 2

    def test_unknown_backend_rejected(self):
        from repro.perf import run_transport_bench

        with pytest.raises(ValueError, match="unknown transport backend"):
            run_transport_bench(["udp"])

    def test_mp_backend_round_trips(self):
        from repro.perf import run_transport_bench

        results = run_transport_bench(
            ["mp"], payload_sizes=[1024], warmup=0, repeats=1
        )
        assert results[0].seconds > 0
        assert results[0].to_json()["messages_per_s"] > 0
