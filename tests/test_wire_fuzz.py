"""Differential fuzzing of the wire stack.

Two tiers lock the protocol down:

* **Property tier** (hypothesis): randomly generated compressed
  gradients must round-trip bit-identically through
  ``serialize_message``/``deserialize_message`` under *both* kernel
  paths and *both* payload versions, contiguous and streamed; random
  frames must survive arbitrary re-chunking through
  :class:`FrameAssembler`.  Bound the example count with
  ``REPRO_FUZZ_EXAMPLES`` (CI smoke uses a small value).

* **Mutation corpus** (deterministic, seeded): 200+ adversarial
  mutations of valid wire bytes — truncations, bit-flips, length-field
  lies, duplicated/reordered/dropped chunks, lying ``END`` trailers —
  must always surface as a structured :class:`SerializationError` /
  :class:`FrameError`; never a hang, an allocation bomb, or a
  silently-wrong tensor.  A mutant the decoder *accepts* (a bit flip
  in value data) must re-serialize to exactly the bytes it was decoded
  from — the decode is then a faithful reading of the (corrupt)
  payload, not an invention.

The corpus runs under both kernel paths; the wire layer is
kernel-independent by design and this pins that claim.
"""

import os
import struct  # repro: noqa[wire-format] — fuzzing the framing layer requires crafting raw adversarial headers

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.compressor import SketchMLCompressor
from repro.core.config import SketchMLConfig
from repro.core.serialization import (
    MAX_MESSAGE_BYTES,
    SerializationError,
    deserialize_message,
    deserialize_message_chunks,
    iter_serialize_message,
    serialize_message,
)
from repro.runtime.framing import (
    FRAME_MAGIC,
    KIND_CHUNK,
    KIND_END,
    KIND_GRAD,
    KIND_UPDATE,
    ChunkReassembler,
    FrameAssembler,
    FrameError,
    iter_chunk_frames,
    pack_frame,
    unpack_frame,
    unpack_header,
)

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "30"))
FUZZ = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_HEADER = struct.Struct("<4sBBHQ")  # repro: noqa[wire-format] — fuzzing the framing layer requires crafting raw adversarial headers

_VARIANTS = (
    {},                                             # full sketch
    {"enable_minmax": False},                       # quantization
    {"enable_minmax": False, "pack_index_bits": True},
    {"enable_quantization": False, "enable_minmax": False},
)


def _gradient(seed, nnz, dimension, sign_mode):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-4
    if sign_mode == "pos":
        values = np.abs(values)
    return keys, values


def _compress(seed, nnz, dimension, sign_mode, variant):
    keys, values = _gradient(seed, nnz, dimension, sign_mode)
    config = SketchMLConfig.full(seed=seed, **_VARIANTS[variant])
    return SketchMLCompressor(config).compress(keys, values, dimension)


def _serialize_at(message, version):
    if version == 1:
        return serialize_message(message)
    return serialize_message(message, version=2, entropy=True)


# ----------------------------------------------------------------------
# property tier
# ----------------------------------------------------------------------
class TestRoundTripProperties:
    @FUZZ
    @given(
        seed=st.integers(0, 2**32 - 1),
        nnz=st.integers(1, 400),
        variant=st.integers(0, len(_VARIANTS) - 1),
        sign_mode=st.sampled_from(["mixed", "pos"]),
    )
    def test_roundtrip_bit_identical_both_paths_both_versions(
        self, seed, nnz, variant, sign_mode
    ):
        dimension = max(nnz * 40, 64)
        encoded = {}
        for mode in ("scalar", "vectorised"):
            forced = (
                kernels.scalar_kernels() if mode == "scalar"
                else kernels.vectorised_kernels()
            )
            with forced:
                message = _compress(seed, nnz, dimension, sign_mode, variant)
                encoded[mode] = {
                    v: _serialize_at(message, v) for v in (1, 2)
                }
        # Kernel paths agree byte-for-byte at each payload version.
        assert encoded["scalar"] == encoded["vectorised"]
        v1, v2 = encoded["scalar"][1], encoded["scalar"][2]
        # deserialize → serialize is the identity at both versions,
        # and both versions carry the identical message.
        assert _serialize_at(deserialize_message(v1), 1) == v1
        assert _serialize_at(deserialize_message(v2), 2) == v2
        assert _serialize_at(deserialize_message(v2), 1) == v1

    @FUZZ
    @given(
        seed=st.integers(0, 2**32 - 1),
        nnz=st.integers(1, 400),
        variant=st.integers(0, len(_VARIANTS) - 1),
        version=st.sampled_from([1, 2]),
        chunk_bytes=st.integers(16, 4096),
    )
    def test_streaming_encode_decode_matches_contiguous(
        self, seed, nnz, variant, version, chunk_bytes
    ):
        dimension = max(nnz * 40, 64)
        message = _compress(seed, nnz, dimension, "mixed", variant)
        contiguous = _serialize_at(message, version)
        pieces = list(
            iter_serialize_message(
                message,
                version=version,
                entropy=(version == 2),
                chunk_bytes=chunk_bytes,
            )
        )
        assert all(len(p) <= chunk_bytes for p in pieces)
        assert b"".join(pieces) == contiguous
        streamed = deserialize_message_chunks(pieces)
        assert _serialize_at(streamed, version) == contiguous

    def test_200k_nnz_streams_in_64k_chunks_bit_identical(self):
        """The acceptance-scale case, pinned deterministically: a
        200k-nnz gradient streamed in ≤64 KiB chunks decodes to the
        exact contiguous v1 encoding."""
        message = _compress(97, 200_000, 2_000_000, "mixed", 0)
        contiguous = serialize_message(message)
        chunk_bytes = 64 * 1024
        assert len(contiguous) > chunk_bytes  # actually exercises chunking
        pieces = list(
            iter_serialize_message(message, chunk_bytes=chunk_bytes)
        )
        assert all(len(p) <= chunk_bytes for p in pieces)
        streamed = deserialize_message_chunks(pieces)
        assert serialize_message(streamed) == contiguous

    @FUZZ
    @given(
        payload=st.binary(max_size=2048),
        kind=st.sampled_from([KIND_GRAD, KIND_UPDATE]),
        sender=st.integers(0, 0xFFFF),
        version=st.sampled_from([1, 2]),
        splits=st.lists(st.integers(1, 64), max_size=24),
    )
    def test_frame_survives_arbitrary_rechunking(
        self, payload, kind, sender, version, splits
    ):
        frame = pack_frame(kind, sender, payload, version=version)
        assembler = FrameAssembler()
        out = []

        def drain():
            while True:
                got = assembler.next_frame()
                if got is None:
                    return
                out.append(got)

        pos = 0
        for step in splits:
            assembler.feed(frame[pos:pos + step])
            pos += step
            drain()
        assembler.feed(frame[pos:])
        drain()
        assert len(out) == 1
        got_kind, got_sender, got_payload = unpack_frame(out[0])
        assert (got_kind, got_sender, bytes(got_payload)) == (
            kind, sender, payload
        )


# ----------------------------------------------------------------------
# mutation corpus
# ----------------------------------------------------------------------
def _base_messages():
    """Two fixed, deterministic wire payloads to mutate: the packed
    quantization config at v1 and at v2 (the v2 bytes exercise the
    entropy-coded index block)."""
    message = _compress(1234, 900, 40000, "mixed", 2)
    return {
        1: _serialize_at(message, 1),
        2: _serialize_at(message, 2),
    }


_BASES = _base_messages()
_RNG = np.random.default_rng(20260809)


def _truncation_cases():
    cases = []
    for version, data in _BASES.items():
        for cut in sorted(
            _RNG.choice(np.arange(1, len(data)), size=35, replace=False)
        ):
            cases.append(
                (f"trunc-v{version}-at{cut}", data[:int(cut)])
            )
    return cases


def _bitflip_cases():
    cases = []
    for version, data in _BASES.items():
        positions = _RNG.choice(len(data) * 8, size=40, replace=False)
        for pos in sorted(int(p) for p in positions):
            mutated = bytearray(data)
            mutated[pos // 8] ^= 1 << (pos % 8)
            cases.append((f"flip-v{version}-bit{pos}", bytes(mutated)))
    return cases


def _length_lie_cases():
    """Overwrite genuine length/count fields with absurd u64 values."""
    cases = []
    lies = (1 << 40, 1 << 50, (1 << 64) - 1, 1 << 63)
    for version, data in _BASES.items():
        # The message nnz u64 sits at header offset 14 (see
        # serialization.py) and bounds every allocation downstream.
        for lie in lies:
            mutated = bytearray(data)
            mutated[14:22] = struct.pack("<Q", lie)  # repro: noqa[wire-format] — crafting adversarial length fields is the point of this corpus
            cases.append(
                (f"lie-v{version}-nnz-{lie:#x}", bytes(mutated))
            )
        # Length-prefixed fields in the body: scan for u64 values that
        # look like genuine lengths/counts and inflate them.  Keep the
        # candidates the decoder is *supposed* to reject — if a later
        # change drops the budget checks, these become terabyte
        # allocations and the corpus fails loudly.
        hits = 0
        for offset in range(23, len(data) - 8):
            (value,) = struct.unpack_from("<Q", data, offset)  # repro: noqa[wire-format] — scanning for length fields to corrupt
            if not 16 <= value <= len(data):
                continue
            mutated = bytearray(data)
            mutated[offset:offset + 8] = struct.pack("<Q", 1 << 44)  # repro: noqa[wire-format] — crafting adversarial length fields is the point of this corpus
            try:
                deserialize_message(bytes(mutated))
            except SerializationError:
                hits += 1
                cases.append(
                    (f"lie-v{version}-body{offset}", bytes(mutated))
                )
            if hits >= 6:
                break
    return cases


MUST_FAIL_CASES = _truncation_cases() + _length_lie_cases()
MAY_ACCEPT_CASES = _bitflip_cases()


@pytest.mark.parametrize("mode", ["scalar", "vectorised"])
@pytest.mark.parametrize(
    "data", [c[1] for c in MUST_FAIL_CASES],
    ids=[c[0] for c in MUST_FAIL_CASES],
)
def test_corrupt_bytes_always_raise_structured_error(data, mode):
    forced = (
        kernels.scalar_kernels() if mode == "scalar"
        else kernels.vectorised_kernels()
    )
    with forced:
        with pytest.raises(SerializationError):
            deserialize_message(data)


@pytest.mark.parametrize("mode", ["scalar", "vectorised"])
@pytest.mark.parametrize(
    "data", [c[1] for c in MAY_ACCEPT_CASES],
    ids=[c[0] for c in MAY_ACCEPT_CASES],
)
def test_bit_flips_never_decode_silently_wrong(data, mode):
    """A flipped bit either raises the structured error or lands in
    value data — in which case the decode must be a *faithful* reading:
    re-serializing it reproduces the mutated bytes exactly."""
    forced = (
        kernels.scalar_kernels() if mode == "scalar"
        else kernels.vectorised_kernels()
    )
    version = data[4] if len(data) > 4 else 1
    with forced:
        try:
            message = deserialize_message(data)
        except SerializationError:
            return
        if version in (1, 2):
            entropy = bool(version == 2 and (data[5] & 2))
            assert serialize_message(
                message, version=version, entropy=entropy
            ) == data


# ----------------------------------------------------------------------
# chunk-stream mutations
# ----------------------------------------------------------------------
def _chunk_frames():
    pieces = list(
        iter_serialize_message(
            _compress(77, 600, 30000, "mixed", 1), chunk_bytes=256
        )
    )
    frames = list(
        iter_chunk_frames(KIND_GRAD, 3, pieces, chunk_bytes=256)
    )
    assert len(frames) >= 6  # several CHUNKs + END
    return frames


_FRAMES = _chunk_frames()


def _chunk_mutations():
    frames = _FRAMES
    n = len(frames) - 1  # last frame is END
    cases = {}
    for i in sorted(
        int(j) for j in _RNG.choice(n, size=min(n, 8), replace=False)
    ):
        cases[f"dup-{i}"] = frames[:i + 1] + frames[i:]
        cases[f"drop-{i}"] = frames[:i] + frames[i + 1:]
        if i + 1 < n:
            swapped = list(frames)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            cases[f"swap-{i}"] = swapped
        truncated = list(frames)
        kind, sender, payload = unpack_frame(frames[i])
        truncated[i] = pack_frame(
            kind, sender, bytes(payload)[:-3], version=2
        )
        cases[f"shrink-{i}"] = truncated
    end_kind, end_sender, end_payload = unpack_frame(frames[-1])
    total_chunks, inner_kind, total_bytes = struct.unpack(  # repro: noqa[wire-format] — forging END trailers is the point of this corpus
        "<IBQ", bytes(end_payload)
    )
    for name, lie in (
        ("end-more-chunks", (total_chunks + 1, inner_kind, total_bytes)),
        ("end-fewer-chunks", (total_chunks - 1, inner_kind, total_bytes)),
        ("end-byte-lie", (total_chunks, inner_kind, total_bytes + 1)),
        ("end-huge-bytes", (total_chunks, inner_kind, 1 << 62)),
        ("end-wrong-kind", (total_chunks, KIND_UPDATE, total_bytes)),
    ):
        forged = list(frames)
        forged[-1] = pack_frame(
            end_kind, end_sender, struct.pack("<IBQ", *lie), version=2  # repro: noqa[wire-format] — forging END trailers is the point of this corpus
        )
        cases[name] = forged
    cases["end-first"] = [frames[-1]] + frames[:-1]
    cases["no-end"] = frames[:-1] + [frames[0]]
    return sorted(cases.items())


CHUNK_MUTATIONS = _chunk_mutations()


def test_chunk_corpus_baseline_reassembles():
    """The unmutated stream decodes — the mutations below fail for the
    mutation, not because the harness is broken."""
    frames = _FRAMES
    reassembler = ChunkReassembler()
    inner = None
    chunks = None
    for frame in frames:
        kind, _, payload = unpack_frame(frame)
        if kind == KIND_END:
            inner, chunks = reassembler.finish(bytes(payload))
        else:
            assert kind == KIND_CHUNK
            reassembler.feed(bytes(payload))
    assert inner == KIND_GRAD
    message = deserialize_message_chunks(chunks)
    assert serialize_message(message) == b"".join(
        iter_serialize_message(message)
    )


@pytest.mark.parametrize(
    "frames", [c[1] for c in CHUNK_MUTATIONS],
    ids=[c[0] for c in CHUNK_MUTATIONS],
)
def test_mutated_chunk_streams_always_raise(frames):
    reassembler = ChunkReassembler()
    with pytest.raises((FrameError, SerializationError)):
        chunks = None
        saw_end = False
        for frame in frames:
            kind, _, payload = unpack_frame(frame)
            if kind == KIND_END:
                _, chunks = reassembler.finish(bytes(payload))
                saw_end = True
            else:
                reassembler.feed(bytes(payload))
        if not saw_end:
            raise FrameError("stream ended without an END trailer")
        deserialize_message_chunks(chunks)


def test_chunk_budget_is_enforced():
    frames = _FRAMES
    reassembler = ChunkReassembler(max_bytes=64)
    with pytest.raises(FrameError):
        for frame in frames[:-1]:
            _, _, payload = unpack_frame(frame)
            reassembler.feed(bytes(payload))


class TestReassemblerTolerance:
    """The tolerant feed/finish used by the receive loops: a retried
    stream restarts cleanly, stale leftovers drop, and everything the
    strict path rejects as corruption still raises."""

    def _payloads(self):
        return [unpack_frame(f)[2] for f in _FRAMES]

    def test_seq_zero_restarts_an_active_stream(self):
        payloads = self._payloads()
        reassembler = ChunkReassembler()
        # Partial first delivery, then the full retried stream.
        for p in payloads[:3]:
            assert reassembler.feed_tolerant(p)
        for p in payloads[:-1]:
            assert reassembler.feed_tolerant(p)
        inner, chunks = reassembler.finish_tolerant(payloads[-1])
        assert inner == KIND_GRAD
        message = deserialize_message_chunks(chunks)
        assert serialize_message(message) == b"".join(
            iter_serialize_message(message)
        )

    def test_stale_tail_drops_without_raising(self):
        payloads = self._payloads()
        reassembler = ChunkReassembler()
        # Leftovers of an aborted stream: non-zero seq while inactive.
        assert reassembler.feed_tolerant(payloads[2]) is False
        assert reassembler.feed_tolerant(payloads[3]) is False
        # ... including its END, which declares non-zero totals.
        assert reassembler.finish_tolerant(payloads[-1]) is None
        # The next full stream is unaffected.
        for p in payloads[:-1]:
            assert reassembler.feed_tolerant(p)
        inner, _ = reassembler.finish_tolerant(payloads[-1])
        assert inner == KIND_GRAD

    def test_mid_stream_gap_still_raises(self):
        payloads = self._payloads()
        reassembler = ChunkReassembler()
        assert reassembler.feed_tolerant(payloads[0])
        with pytest.raises(FrameError, match="sequence"):
            reassembler.feed_tolerant(payloads[2])

    def test_lying_end_still_raises_on_active_stream(self):
        payloads = self._payloads()
        reassembler = ChunkReassembler()
        for p in payloads[:-1]:
            assert reassembler.feed_tolerant(p)
        end = bytes(payloads[-1])
        forged = end[:-8] + struct.pack("<Q", 1 << 62)  # repro: noqa[wire-format] — forging the END byte total under test
        with pytest.raises(FrameError, match="declares"):
            reassembler.finish_tolerant(forged)


# ----------------------------------------------------------------------
# length-budget regressions (the u64 pre-allocation bombs)
# ----------------------------------------------------------------------
class TestLengthBudgetRegressions:
    """A declared u64 length must be validated *before* any allocation.

    Regression tests for the historic trust-the-header bombs in
    ``deserialize_message`` and ``FrameAssembler``: a 2**40 length
    field must be a structured reject, not a 1 TiB allocation."""

    def test_unpack_header_rejects_terabyte_length(self):
        header = _HEADER.pack(FRAME_MAGIC, 1, KIND_GRAD, 0, 1 << 40)
        with pytest.raises(FrameError, match="exceeds"):
            unpack_header(header)

    def test_frame_assembler_rejects_terabyte_length(self):
        header = _HEADER.pack(FRAME_MAGIC, 1, KIND_GRAD, 0, 1 << 40)
        assembler = FrameAssembler()
        assembler.feed(header)
        with pytest.raises(FrameError, match="exceeds"):
            assembler.next_frame()
        # The budget held: the assembler never grew anywhere near the
        # declared terabyte.
        assert len(assembler) < 1 << 20

    def test_frame_assembler_honours_configured_budget(self):
        frame = pack_frame(KIND_GRAD, 0, b"x" * 2048)
        assembler = FrameAssembler(max_frame_bytes=1024)
        assembler.feed(frame)
        with pytest.raises(FrameError, match="exceeds"):
            assembler.next_frame()
        # The same frame passes under the default budget.
        assembler = FrameAssembler()
        assembler.feed(frame)
        assert assembler.next_frame() == frame

    def test_header_length_cannot_exceed_global_ceiling(self):
        header = _HEADER.pack(FRAME_MAGIC, 1, KIND_GRAD, 0, 1 << 40)
        with pytest.raises(FrameError):
            unpack_header(header, max_frame_bytes=1 << 62)

    def test_deserialize_rejects_lying_message_nnz(self):
        data = bytearray(_BASES[1])
        data[14:22] = struct.pack("<Q", 1 << 40)  # repro: noqa[wire-format] — forging the nnz field under test
        with pytest.raises(SerializationError):
            deserialize_message(bytes(data))

    def test_deserialize_honours_configured_budget(self):
        data = _BASES[1]
        with pytest.raises(SerializationError):
            deserialize_message(data, max_message_bytes=64)
        assert deserialize_message(
            data, max_message_bytes=MAX_MESSAGE_BYTES
        ) is not None

    def test_chunked_deserialize_honours_configured_budget(self):
        message = _compress(5, 100, 5000, "mixed", 1)
        pieces = list(iter_serialize_message(message, chunk_bytes=128))
        with pytest.raises(SerializationError):
            deserialize_message_chunks(pieces, max_message_bytes=64)

    def test_entropy_decode_count_is_bounded_by_key_bytes(self):
        """A zero-entropy rANS model consumes no coded bytes per symbol,
        so a forged nnz must be rejected against the part's key stream
        before the decode loop runs — not after 2**30 iterations."""
        nnz_lie = 1 << 30
        w = bytearray()
        w += b"SKML" + struct.pack("<BB", 2, 2)  # repro: noqa[wire-format] — forging an adversarial v2 entropy message is the point
        w += struct.pack("<QQ", 1 << 31, nnz_lie)  # repro: noqa[wire-format] — dimension + lying message nnz
        w += struct.pack("<B", 1)  # repro: noqa[wire-format] — one part
        w += struct.pack("<bQB", 1, nnz_lie, 1)  # repro: noqa[wire-format] — sign, lying part nnz, kind=indexes
        # Raw key stream holding exactly ONE key (4 bytes).
        w += struct.pack("<BQI", 0, 4, 7)  # repro: noqa[wire-format] — key kind, blob length, the key
        # Minimal bucket table: 1 bucket.
        w += struct.pack("<Hb", 1, 1)  # repro: noqa[wire-format] — bucket count + sign
        w += struct.pack("<Qdd", 16, 0.0, 1.0)  # repro: noqa[wire-format] — splits
        w += struct.pack("<Qd", 8, 0.5)  # repro: noqa[wire-format] — means
        # Entropy block: single-symbol table at full probability, and
        # a 4-byte coded stream that is just the rANS start state.
        w += struct.pack("<BBBHH", 3, 0, 1, 1, 4096)  # repro: noqa[wire-format] — marker, origin, width, model
        w += struct.pack("<Q", 4) + (1 << 16).to_bytes(4, "little")  # repro: noqa[wire-format] — coded stream
        with pytest.raises(SerializationError, match="raw keys"):
            deserialize_message(bytes(w))


def test_corpus_is_large_enough():
    """The acceptance bar: at least 200 committed mutation cases."""
    total = (
        len(MUST_FAIL_CASES) + len(MAY_ACCEPT_CASES) + len(CHUNK_MUTATIONS)
    )
    assert total >= 200, total
