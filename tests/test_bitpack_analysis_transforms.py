"""Tests for bit packing, gradient analysis, and dataset transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    compare_compressors,
    format_report,
    histogram,
    profile_gradient,
)
from repro.core.bitpack import pack_uint_array, packed_size_bytes, unpack_uint_array
from repro.data import (
    generate_profile,
    hash_features,
    normalize_rows,
    subsample_rows,
)


class TestBitPack:
    def test_validation(self):
        with pytest.raises(ValueError):
            pack_uint_array(np.asarray([1]), bits=0)
        with pytest.raises(ValueError):
            pack_uint_array(np.asarray([1]), bits=17)
        with pytest.raises(ValueError):
            pack_uint_array(np.asarray([8]), bits=3)  # 8 >= 2**3
        with pytest.raises(ValueError):
            pack_uint_array(np.asarray([-1]), bits=3)
        with pytest.raises(ValueError):
            pack_uint_array(np.asarray([[1, 2]]), bits=3)
        with pytest.raises(ValueError):
            unpack_uint_array(b"", 5, 4)  # too short
        with pytest.raises(ValueError):
            packed_size_bytes(-1, 4)

    def test_empty(self):
        assert pack_uint_array(np.asarray([], dtype=np.int64), 7) == b""
        assert unpack_uint_array(b"", 0, 7).size == 0

    @pytest.mark.parametrize("bits", [1, 3, 7, 8, 12, 16])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        values = rng.integers(0, 1 << bits, size=1_000)
        blob = pack_uint_array(values, bits)
        assert len(blob) == packed_size_bytes(values.size, bits)
        np.testing.assert_array_equal(
            unpack_uint_array(blob, values.size, bits), values
        )

    def test_size_savings(self):
        """7-bit packing really saves 1/8 over bytes."""
        values = np.arange(128).repeat(8)
        blob = pack_uint_array(values, 7)
        assert len(blob) == values.size * 7 // 8

    @given(
        bits=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, bits, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << bits, size=n)
        blob = pack_uint_array(values, bits)
        np.testing.assert_array_equal(unpack_uint_array(blob, n, bits), values)


class TestGradientProfile:
    def make(self, seed=0, scale=0.01, nnz=5_000, dimension=100_000):
        rng = np.random.default_rng(seed)
        keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
        values = rng.laplace(scale=scale, size=nnz)
        values[values == 0.0] = scale / 100
        return keys, values, dimension

    def test_validation(self):
        with pytest.raises(ValueError):
            profile_gradient(np.asarray([1]), np.asarray([1.0, 2.0]), 10)
        with pytest.raises(ValueError):
            profile_gradient(np.asarray([], dtype=np.int64), np.asarray([]), 10)
        with pytest.raises(ValueError):
            profile_gradient(np.asarray([1]), np.asarray([1.0]), 0)

    def test_laplace_gradient_is_friendly(self):
        keys, values, dim = self.make()
        profile = profile_gradient(keys, values, dim)
        assert profile.nnz == 5_000
        assert profile.density == pytest.approx(0.05)
        assert profile.near_zero_fraction > 0.5
        assert profile.uniformity_ks > 0.3
        assert profile.is_sketchml_friendly
        assert 1.0 <= profile.bytes_per_key < 2.0

    def test_uniform_dense_gradient_is_not_friendly(self):
        rng = np.random.default_rng(1)
        dimension = 1_000
        keys = np.arange(dimension)
        values = rng.uniform(0.5, 1.0, size=dimension)  # uniform magnitudes
        profile = profile_gradient(keys, values, dimension)
        assert not profile.is_sketchml_friendly

    def test_concentration(self):
        # One giant value among tiny ones: 90% of mass in ~1 entry.
        keys = np.arange(100)
        values = np.full(100, 1e-6)
        values[50] = 100.0
        profile = profile_gradient(keys, values, 1_000)
        assert profile.concentration_90 == pytest.approx(0.01, abs=0.01)

    def test_histogram(self):
        edges, counts = histogram(np.asarray([0.0, 0.5, 1.0]), bins=2)
        assert edges.size == 3
        assert counts.sum() == 3
        with pytest.raises(ValueError):
            histogram(np.asarray([]))
        with pytest.raises(ValueError):
            histogram(np.asarray([1.0]), bins=0)


class TestCompressionReport:
    def test_all_registered_codecs(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.choice(50_000, size=2_000, replace=False))
        values = rng.laplace(scale=0.01, size=2_000)
        values[values == 0.0] = 1e-6
        rows = compare_compressors(keys, values, 50_000)
        names = {r.name for r in rows}
        assert "sketchml" in names and "identity" in names
        # Sorted by size; identity is the largest lossless codec.
        sizes = [r.num_bytes for r in rows]
        assert sizes == sorted(sizes)
        identity = next(r for r in rows if r.name == "identity")
        assert identity.keys_lossless and identity.value_mae == 0.0
        report = format_report(rows)
        assert "sketchml" in report

    def test_subset_of_codecs(self):
        keys = np.arange(100)
        values = np.linspace(-1, 1, 100)
        values[values == 0.0] = 0.01
        rows = compare_compressors(keys, values, 100, names=["identity", "zipml"])
        assert len(rows) == 2


class TestTransforms:
    def test_hash_features_shapes(self):
        ds = generate_profile("kdd10", seed=0, scale=0.02)
        hashed = hash_features(ds, target_dim=1_024, seed=0)
        assert hashed.num_features == 1_024
        assert hashed.num_rows == ds.num_rows
        assert hashed.indices.max() < 1_024
        np.testing.assert_array_equal(hashed.labels, ds.labels)

    def test_hash_features_preserves_inner_products_approximately(self):
        ds = generate_profile("kdd10", seed=1, scale=0.02)
        hashed = hash_features(ds, target_dim=4_096, seed=0)
        rng = np.random.default_rng(0)
        # Row self-inner-products (squared norms) survive hashing well.
        rows = rng.choice(ds.num_rows, size=30, replace=False)
        for i in rows:
            original = float(np.sum(ds.row(int(i)).values ** 2))
            mapped = float(np.sum(hashed.row(int(i)).values ** 2))
            assert mapped == pytest.approx(original, rel=0.35)

    def test_hash_features_validation(self):
        ds = generate_profile("kdd10", seed=2, scale=0.01)
        with pytest.raises(ValueError):
            hash_features(ds, target_dim=0)

    def test_normalize_rows(self):
        ds = generate_profile("kdd10", seed=3, scale=0.01)
        # Denormalise first so the transform has work to do.
        ds.data *= 3.0
        normalized = normalize_rows(ds)
        for i in range(min(normalized.num_rows, 20)):
            row = normalized.row(i)
            if row.nnz:
                assert row.l2_norm() == pytest.approx(1.0)
        # Original untouched.
        assert ds.row(0).l2_norm() == pytest.approx(3.0, rel=1e-9)

    def test_subsample_rows(self):
        ds = generate_profile("kdd10", seed=4, scale=0.05)
        sub = subsample_rows(ds, fraction=0.25, seed=0)
        assert sub.num_rows == pytest.approx(ds.num_rows * 0.25, abs=1)
        with pytest.raises(ValueError):
            subsample_rows(ds, fraction=0.0)
