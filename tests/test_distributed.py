"""Tests for worker, driver, and the distributed trainer."""

import numpy as np
import pytest

from repro.compression import IdentityCompressor, ZipMLCompressor
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.distributed import (
    DistributedTrainer,
    Driver,
    TrainerConfig,
    Worker,
    aggregate_sparse_gradients,
    cluster1_like,
    infinite_bandwidth,
)
from repro.models import LogisticRegression, make_model
from repro.optim import Adam


class TestAggregation:
    def test_disjoint_keys_divided_by_worker_count(self):
        grads = [
            (np.asarray([1, 3]), np.asarray([2.0, 4.0])),
            (np.asarray([2]), np.asarray([6.0])),
        ]
        keys, values = aggregate_sparse_gradients(grads)
        assert keys.tolist() == [1, 2, 3]
        np.testing.assert_allclose(values, [1.0, 3.0, 2.0])

    def test_overlapping_keys_summed(self):
        grads = [
            (np.asarray([5]), np.asarray([1.0])),
            (np.asarray([5]), np.asarray([3.0])),
        ]
        keys, values = aggregate_sparse_gradients(grads)
        assert keys.tolist() == [5]
        np.testing.assert_allclose(values, [2.0])

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            aggregate_sparse_gradients([])
        keys, values = aggregate_sparse_gradients(
            [(np.asarray([], dtype=np.int64), np.asarray([]))]
        )
        assert keys.size == 0

    def test_output_sorted(self):
        grads = [
            (np.asarray([10, 20]), np.asarray([1.0, 1.0])),
            (np.asarray([5, 15]), np.asarray([1.0, 1.0])),
        ]
        keys, _ = aggregate_sparse_gradients(grads)
        assert np.all(np.diff(keys) > 0)


class TestWorker(object):
    def test_batches_cover_partition(self, tiny_split):
        train, _ = tiny_split
        worker = Worker(
            worker_id=0,
            dataset=train,
            model=LogisticRegression(train.num_features),
            compressor=IdentityCompressor(),
            batch_size=100,
            seed=0,
        )
        worker.start_epoch()
        seen = []
        while True:
            batch = worker.next_batch()
            if batch is None:
                break
            seen.append(batch)
        all_rows = np.concatenate(seen)
        assert sorted(all_rows.tolist()) == list(range(train.num_rows))
        assert worker.batches_per_epoch == len(seen)

    def test_compute_step_returns_message(self, tiny_split):
        train, _ = tiny_split
        model = LogisticRegression(train.num_features)
        worker = Worker(0, train, model, IdentityCompressor(), batch_size=50, seed=0)
        worker.start_epoch()
        rows = worker.next_batch()
        result = worker.compute_step(rows, model.init_theta())
        assert result.message.num_bytes > 0
        assert result.gradient_nnz > 0
        assert result.compute_seconds >= 0
        assert np.isfinite(result.local_loss)

    def test_invalid_batch_size(self, tiny_split):
        train, _ = tiny_split
        with pytest.raises(ValueError):
            Worker(0, train, LogisticRegression(train.num_features),
                   IdentityCompressor(), batch_size=0)


class TestDriver:
    def test_aggregate_roundtrip(self, tiny_split):
        train, _ = tiny_split
        model = LogisticRegression(train.num_features)
        theta = model.init_theta()
        compressor = IdentityCompressor()
        messages = []
        for start in (0, 200):
            rows = np.arange(start, start + 100)
            keys, values, _ = model.batch_gradient(train, rows, theta)
            messages.append(compressor.compress(keys, values, model.num_parameters))
        driver = Driver(IdentityCompressor(), model.num_parameters)
        result = driver.aggregate(messages)
        assert result.keys.size > 0
        assert result.broadcast_message.num_bytes > 0
        assert result.decode_seconds >= 0

    def test_lossy_broadcast_is_what_replicas_apply(self, tiny_split):
        """Driver must apply its own decompressed broadcast so replicas
        stay identical under lossy codecs."""
        train, _ = tiny_split
        model = LogisticRegression(train.num_features)
        theta = model.init_theta()
        comp = SketchMLCompressor(SketchMLConfig.full(seed=1))
        keys, values, _ = model.batch_gradient(train, np.arange(100), theta)
        message = comp.compress(keys, values, model.num_parameters)
        driver = Driver(SketchMLCompressor(SketchMLConfig.full(seed=1)),
                        model.num_parameters)
        result = driver.aggregate([message])
        # What the driver returns equals decode(encode(aggregate)).
        re_decoded = driver.compressor.decompress(result.broadcast_message)
        np.testing.assert_array_equal(result.keys, re_decoded[0])
        np.testing.assert_allclose(result.values, re_decoded[1])


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(num_workers=0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_fraction=0.0)
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)


class TestDistributedTrainer:
    def make_trainer(self, train, method=IdentityCompressor, workers=4, epochs=2,
                     network=None):
        model = LogisticRegression(train.num_features, reg_lambda=0.01)
        return DistributedTrainer(
            model=model,
            optimizer=Adam(learning_rate=0.01),
            compressor_factory=method,
            network=network or cluster1_like(),
            config=TrainerConfig(num_workers=workers, epochs=epochs, seed=0),
        )

    def test_history_structure(self, tiny_split):
        train, test = tiny_split
        trainer = self.make_trainer(train)
        history = trainer.train(train, test)
        assert history.num_epochs == 2
        assert history.num_workers == 4
        assert all(e.num_messages > 0 for e in history.epochs)
        assert all(e.bytes_sent > 0 for e in history.epochs)
        assert all(e.network_seconds > 0 for e in history.epochs)
        assert all(e.test_loss is not None for e in history.epochs)
        assert trainer.theta.shape == (train.num_features,)

    def test_loss_decreases(self, tiny_split):
        train, test = tiny_split
        trainer = self.make_trainer(train, epochs=4)
        history = trainer.train(train, test)
        assert history.test_losses[-1] < history.test_losses[0]

    def test_theta_before_train_raises(self, tiny_split):
        train, _ = tiny_split
        trainer = self.make_trainer(train)
        with pytest.raises(RuntimeError):
            _ = trainer.theta

    def test_compressed_methods_send_fewer_bytes(self, tiny_split):
        train, test = tiny_split
        adam = self.make_trainer(train).train(train, test)
        zipml = self.make_trainer(train, method=ZipMLCompressor).train(train, test)
        sketch = self.make_trainer(train, method=SketchMLCompressor).train(train, test)
        assert zipml.total_bytes_sent < adam.total_bytes_sent
        assert sketch.total_bytes_sent < zipml.total_bytes_sent

    def test_compression_reduces_network_time(self, tiny_split):
        train, test = tiny_split
        adam = self.make_trainer(train).train(train, test)
        sketch = self.make_trainer(train, method=SketchMLCompressor).train(train, test)
        adam_net = sum(e.network_seconds for e in adam.epochs)
        sketch_net = sum(e.network_seconds for e in sketch.epochs)
        assert sketch_net < adam_net

    def test_all_methods_converge_similarly(self, tiny_split):
        """Lossy compression must not destroy convergence (Table 2)."""
        train, test = tiny_split
        results = {}
        for name, method in [
            ("adam", IdentityCompressor),
            ("zipml", ZipMLCompressor),
            ("sketchml", SketchMLCompressor),
        ]:
            history = self.make_trainer(train, method=method, epochs=5).train(
                train, test
            )
            results[name] = history.test_losses[-1]
        baseline = results["adam"]
        for name, loss in results.items():
            assert loss < np.log(2.0)  # all learned something
            assert loss < baseline * 1.15  # within 15% of uncompressed

    def test_deterministic_given_seed(self, tiny_split):
        train, test = tiny_split
        a = self.make_trainer(train).train(train, test)
        b = self.make_trainer(train).train(train, test)
        assert a.test_losses == b.test_losses
        assert a.total_bytes_sent == b.total_bytes_sent

    def test_single_worker(self, tiny_split):
        train, test = tiny_split
        history = self.make_trainer(train, workers=1).train(train, test)
        assert history.num_epochs == 2

    def test_method_label_recorded(self, tiny_split):
        train, _ = tiny_split
        model = LogisticRegression(train.num_features)
        trainer = DistributedTrainer(
            model=model,
            optimizer=Adam(learning_rate=0.01),
            compressor_factory=IdentityCompressor,
            network=infinite_bandwidth(),
            config=TrainerConfig(num_workers=2, epochs=1, method_label="MyMethod"),
        )
        history = trainer.train(train)
        assert history.method == "MyMethod"
        assert history.epochs[0].test_loss is None  # no test set given


class TestModelsUnderTrainer:
    @pytest.mark.parametrize("model_name", ["lr", "svm", "linear"])
    def test_all_three_models_train(self, tiny_split, model_name):
        train, test = tiny_split
        model = make_model(model_name, train.num_features, reg_lambda=0.01)
        trainer = DistributedTrainer(
            model=model,
            optimizer=Adam(learning_rate=0.01),
            compressor_factory=SketchMLCompressor,
            network=cluster1_like(),
            config=TrainerConfig(num_workers=4, epochs=3, seed=0),
        )
        history = trainer.train(train, test)
        assert history.test_losses[-1] <= history.test_losses[0]
