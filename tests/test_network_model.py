"""Tests for the network cost model."""

import pytest

from repro.distributed import (
    NetworkModel,
    cluster1_like,
    cluster2_like,
    infinite_bandwidth,
    wan_like,
)


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_sec=0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_sec=1e6, latency_sec=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_sec=1e6, congestion=0.5)

    def test_negative_sizes_rejected(self):
        net = cluster1_like()
        with pytest.raises(ValueError):
            net.transfer_time(-1)
        with pytest.raises(ValueError):
            net.gather_time([10, -5])
        with pytest.raises(ValueError):
            net.broadcast_time(-1, 2)
        with pytest.raises(ValueError):
            net.broadcast_time(10, 0)


class TestCostFormulas:
    def test_transfer_time(self):
        net = NetworkModel(bandwidth_bytes_per_sec=1_000, latency_sec=0.5)
        assert net.transfer_time(2_000) == pytest.approx(0.5 + 2.0)

    def test_congestion_divides_bandwidth(self):
        base = NetworkModel(bandwidth_bytes_per_sec=1_000, latency_sec=0.0)
        congested = NetworkModel(
            bandwidth_bytes_per_sec=1_000, latency_sec=0.0, congestion=4.0
        )
        assert congested.transfer_time(1_000) == pytest.approx(
            4 * base.transfer_time(1_000)
        )
        assert congested.effective_bandwidth == 250.0

    def test_gather_serialises_through_driver_nic(self):
        net = NetworkModel(bandwidth_bytes_per_sec=1_000, latency_sec=0.1)
        assert net.gather_time([500, 500, 1_000]) == pytest.approx(0.1 + 2.0)

    def test_broadcast_star_scales_linearly(self):
        net = NetworkModel(
            bandwidth_bytes_per_sec=1_000, latency_sec=0.0, broadcast_mode="star"
        )
        assert net.broadcast_time(100, 10) == pytest.approx(1.0)
        assert net.broadcast_time(100, 20) == pytest.approx(2.0)

    def test_broadcast_torrent_scales_logarithmically(self):
        net = NetworkModel(bandwidth_bytes_per_sec=1_000, latency_sec=0.0)
        # ceil(log2(W + 1)) copies: 4 for W=10, 6 for W=50.
        assert net.broadcast_time(100, 10) == pytest.approx(0.4)
        assert net.broadcast_time(100, 50) == pytest.approx(0.6)

    def test_broadcast_mode_validated(self):
        with pytest.raises(ValueError, match="broadcast_mode"):
            NetworkModel(bandwidth_bytes_per_sec=1_000, broadcast_mode="multicast")

    def test_zero_bytes_costs_latency_only(self):
        net = NetworkModel(bandwidth_bytes_per_sec=1_000, latency_sec=0.25)
        assert net.transfer_time(0) == 0.25
        assert net.gather_time([]) == 0.25


class TestPresets:
    def test_cluster2_more_congested_than_cluster1(self):
        """§4.3.1: SketchML is slower on Cluster-2 despite faster NICs."""
        assert cluster2_like().effective_bandwidth < cluster1_like().effective_bandwidth

    def test_wan_slowest(self):
        assert wan_like().effective_bandwidth < cluster1_like().effective_bandwidth
        assert wan_like().latency_sec > cluster1_like().latency_sec

    def test_infinite_bandwidth_near_free(self):
        assert infinite_bandwidth().transfer_time(10**9) < 1e-5

    def test_saturation_crossover(self):
        """The Fig. 11 mechanism: splitting a fixed global batch over
        more workers duplicates the hot (Zipf-head) features in every
        worker's message, so total gather volume *grows* with W while
        compute shrinks as 1/W — past a certain worker count large
        uncompressed messages make rounds slower."""
        net = cluster1_like()
        tail_bytes = 700_000  # rare features: split across workers
        head_bytes = 10_000  # hot features: present in EVERY message
        aggregate_bytes = 50_000  # driver→worker broadcast
        compute_total = 4.0  # seconds of work split across workers

        def round_time(workers):
            per_worker = tail_bytes // workers + head_bytes
            return (
                compute_total / workers
                + net.gather_time([per_worker] * workers)
                + net.broadcast_time(aggregate_bytes, workers)
            )

        t5, t10, t50 = round_time(5), round_time(10), round_time(50)
        assert t10 < t5  # still compute-bound at 10
        assert t50 > t10  # gather volume dominates at 50
