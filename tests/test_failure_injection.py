"""Failure-injection tests: lossy networks and corrupted wire bytes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import IdentityCompressor
from repro.core import (
    SerializationError,
    SketchMLCompressor,
    deserialize_message,
    serialize_message,
)
from repro.core.delta_encoding import decode_keys, encode_keys
from repro.distributed import DistributedTrainer, NetworkModel, TrainerConfig
from repro.models import LogisticRegression


class TestLossyNetwork:
    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_sec=1e6, loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_sec=1e6, loss_rate=-0.1)

    def test_retransmission_inflates_transfer(self):
        clean = NetworkModel(bandwidth_bytes_per_sec=1_000, latency_sec=0.0)
        lossy = NetworkModel(
            bandwidth_bytes_per_sec=1_000, latency_sec=0.0, loss_rate=0.5
        )
        assert lossy.transfer_time(1_000) == pytest.approx(
            2 * clean.transfer_time(1_000)
        )

    def test_training_survives_lossy_network(self, tiny_split):
        """Packet loss slows the wire but never corrupts the model."""
        train, test = tiny_split
        histories = {}
        for loss_rate in (0.0, 0.3):
            trainer = DistributedTrainer(
                model=LogisticRegression(train.num_features, reg_lambda=0.01),
                optimizer=__import__("repro.optim", fromlist=["Adam"]).Adam(
                    learning_rate=0.01
                ),
                compressor_factory=IdentityCompressor,
                network=NetworkModel(
                    bandwidth_bytes_per_sec=3e5, loss_rate=loss_rate
                ),
                config=TrainerConfig(num_workers=4, epochs=2, seed=0),
            )
            histories[loss_rate] = trainer.train(train, test)
        # Identical learning trajectory (retransmission is transparent)...
        assert histories[0.0].test_losses == histories[0.3].test_losses
        # ...but more simulated time on the lossy wire.
        lossy_net = sum(e.network_seconds for e in histories[0.3].epochs)
        clean_net = sum(e.network_seconds for e in histories[0.0].epochs)
        assert lossy_net > clean_net * 1.3


def _reference_message():
    rng = np.random.default_rng(0)
    keys = np.sort(rng.choice(50_000, size=2_000, replace=False))
    values = rng.laplace(scale=0.01, size=2_000)
    values[values == 0.0] = 1e-6
    comp = SketchMLCompressor()
    return comp, serialize_message(comp.compress(keys, values, 50_000))


class TestWireCorruption:
    """A corrupted message must raise a typed error or decode into a
    *well-formed* (if wrong) message — never escape with an internal
    exception (IndexError, struct.error, segfaulting numpy call...)."""

    @given(
        position=st.integers(min_value=0, max_value=10_000),
        new_byte=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_byte_flip(self, position, new_byte):
        comp, wire = _reference_message()
        position %= len(wire)
        corrupted = bytearray(wire)
        corrupted[position] = new_byte
        try:
            message = deserialize_message(bytes(corrupted))
            comp.decompress(message)  # may be wrong, must not crash
        except (SerializationError, ValueError):
            pass  # typed rejection is the expected failure mode

    @given(cut=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_truncation(self, cut):
        comp, wire = _reference_message()
        cut %= len(wire)
        try:
            message = deserialize_message(wire[:cut])
            comp.decompress(message)
        except (SerializationError, ValueError):
            pass

    @given(data=st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_garbage(self, data):
        comp, _ = _reference_message()
        try:
            message = deserialize_message(data)
            comp.decompress(message)
        except (SerializationError, ValueError):
            pass


class TestKeyBlobCorruption:
    @given(
        position=st.integers(min_value=0, max_value=10_000),
        new_byte=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=80, deadline=None)
    def test_delta_blob_byte_flip(self, position, new_byte):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.choice(100_000, size=1_000, replace=False))
        blob = bytearray(encode_keys(keys))
        position %= len(blob)
        blob[position] = new_byte
        try:
            decoded = decode_keys(bytes(blob))
            assert decoded.dtype == np.int64  # decoded cleanly (maybe wrong)
        except ValueError:
            pass


class TestSanitizedWireCorruption:
    """Same byte-flip storm, sanitizer on: the extra invariant checks may
    reject more messages (as SanitizerError, a ValueError), but must
    never crash and must never reject the uncorrupted message."""

    @given(
        position=st.integers(min_value=0, max_value=10_000),
        new_byte=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_byte_flip_sanitized(self, position, new_byte):
        from repro import sanitize

        comp, wire = _reference_message()
        position %= len(wire)
        corrupted = bytearray(wire)
        corrupted[position] = new_byte
        with sanitize.sanitized():
            try:
                message = deserialize_message(bytes(corrupted))
                comp.decompress(message)
            except (SerializationError, ValueError):
                pass

    def test_uncorrupted_message_survives_sanitizer(self):
        from repro import sanitize

        comp, wire = _reference_message()
        with sanitize.sanitized():
            keys, values = comp.decompress(deserialize_message(wire))
        assert keys.size == 2_000
