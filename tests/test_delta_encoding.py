"""Tests for delta-binary key encoding (§3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta_encoding import (
    DeltaKeyStats,
    decode_keys,
    delta_key_stats,
    encode_keys,
)


class TestRoundtrip:
    def test_paper_example(self):
        """The exact key sequence from Figure 7."""
        keys = np.asarray([702, 735, 1244, 2516, 3536, 3786, 4187, 4195])
        blob = encode_keys(keys)
        np.testing.assert_array_equal(decode_keys(blob), keys)

    def test_empty(self):
        blob = encode_keys(np.asarray([], dtype=np.int64))
        assert decode_keys(blob).size == 0

    def test_single_key(self):
        for key in (0, 255, 256, 2**24, 2**32 - 1):
            blob = encode_keys(np.asarray([key]))
            assert decode_keys(blob).tolist() == [key]

    def test_all_byte_widths(self):
        """Deltas spanning 1/2/3/4-byte widths in one block."""
        keys = np.cumsum(
            np.asarray([5, 200, 300, 70_000, 20_000_000, 1], dtype=np.int64)
        )
        blob = encode_keys(keys)
        np.testing.assert_array_equal(decode_keys(blob), keys)

    def test_dense_consecutive_keys(self):
        keys = np.arange(10_000, dtype=np.int64)
        blob = encode_keys(keys)
        np.testing.assert_array_equal(decode_keys(blob), keys)
        # Consecutive keys: ~1 byte payload + 0.25 flag per key.
        assert len(blob) < 10_000 * 1.3 + 16

    def test_large_random_keys(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.choice(2**31, size=50_000, replace=False))
        blob = encode_keys(keys)
        np.testing.assert_array_equal(decode_keys(blob), keys)


class TestValidation:
    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            encode_keys(np.asarray([3, 1, 2]))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            encode_keys(np.asarray([1, 1, 2]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_keys(np.asarray([-1, 2]))

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            encode_keys(np.asarray([2**32]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            encode_keys(np.asarray([[1, 2]]))

    def test_truncated_blob_rejected(self):
        blob = encode_keys(np.asarray([10, 20, 30]))
        with pytest.raises(ValueError):
            decode_keys(blob[:-1])
        with pytest.raises(ValueError):
            decode_keys(blob[:2])
        with pytest.raises(ValueError):
            decode_keys(blob + b"\x00")

    def test_empty_block_trailing_bytes_rejected(self):
        blob = encode_keys(np.asarray([], dtype=np.int64))
        with pytest.raises(ValueError, match="trailing"):
            decode_keys(blob + b"\x01")


class TestStats:
    def test_stats_match_encoding(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.choice(1_000_000, size=5_000, replace=False))
        stats = delta_key_stats(keys)
        blob = encode_keys(keys)
        assert stats.total_bytes == len(blob)
        assert stats.num_keys == keys.size

    def test_empty_stats(self):
        stats = delta_key_stats(np.asarray([], dtype=np.int64))
        assert stats == DeltaKeyStats(0, 0, 0, 4)
        assert stats.bytes_per_key == 0.0

    def test_bytes_per_key_near_paper_value(self):
        """§4.2 measures ~1.25–1.27 bytes/key on realistic sparsity."""
        rng = np.random.default_rng(2)
        # 10% density: deltas average 10 → 1 byte payload + 0.25 flag.
        dimension = 200_000
        keys = np.sort(rng.choice(dimension, size=dimension // 10, replace=False))
        stats = delta_key_stats(keys)
        assert 1.0 < stats.bytes_per_key < 1.5

    def test_bytes_per_key_grows_with_sparsity(self):
        """Fig. 8(d) right panel: sparser gradients cost more per key."""
        rng = np.random.default_rng(3)
        dimension = 1_000_000
        costs = []
        for nnz in (100_000, 10_000, 1_000):
            keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
            costs.append(delta_key_stats(keys).bytes_per_key)
        assert costs[0] <= costs[1] <= costs[2]

    def test_flag_accounting(self):
        stats = delta_key_stats(np.asarray([1, 2, 3, 4, 5]))
        assert stats.flag_bytes == 2  # ceil(5/4)
        assert stats.header_bytes == 4


@given(
    deltas=st.lists(
        st.integers(min_value=1, max_value=2**26), min_size=1, max_size=500
    )
)
@settings(max_examples=100, deadline=None)
def test_roundtrip_property(deltas):
    keys = np.cumsum(np.asarray(deltas, dtype=np.int64))
    if keys[-1] > 2**32 - 1:
        keys = keys % (2**32 - 1)
        keys = np.unique(keys)
    blob = encode_keys(keys)
    np.testing.assert_array_equal(decode_keys(blob), keys)


@given(
    nnz=st.integers(min_value=1, max_value=2_000),
    seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=30, deadline=None)
def test_compression_beats_raw_for_clustered_keys(nnz, seed):
    """Delta-binary must beat 4-byte raw keys whenever deltas are small."""
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(nnz * 20, size=nnz, replace=False))
    stats = delta_key_stats(keys)
    assert stats.payload_bytes + stats.flag_bytes < 4 * nnz + 4
