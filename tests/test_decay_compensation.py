"""Tests for codec-level decay compensation (§3.3's vanishing-gradient fix)."""

import numpy as np
import pytest

from repro.core import (
    SketchMLCompressor,
    SketchMLConfig,
    deserialize_message,
    serialize_message,
)


def make_gradient(nnz=4_000, dimension=100_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-6
    return keys, values, dimension


#: Aggressive sketch (few bins -> heavy collisions -> strong decay).
LOSSY = dict(minmax_cols_factor=0.02, num_groups=2)


class TestDecayCompensation:
    def test_restores_mean_magnitude(self):
        keys, values, dim = make_gradient(seed=1)
        plain = SketchMLCompressor(SketchMLConfig.full(**LOSSY))
        comp = SketchMLCompressor(
            SketchMLConfig.full(compensate_decay=True, **LOSSY)
        )
        _, plain_decoded, _ = plain.roundtrip(keys, values, dim)
        _, comp_decoded, _ = comp.roundtrip(keys, values, dim)
        true_mean = np.abs(values).mean()
        assert np.abs(plain_decoded).mean() < 0.9 * true_mean  # decayed
        assert np.abs(comp_decoded).mean() == pytest.approx(true_mean, rel=0.02)

    def test_signs_still_preserved(self):
        keys, values, dim = make_gradient(seed=2)
        comp = SketchMLCompressor(
            SketchMLConfig.full(compensate_decay=True, **LOSSY)
        )
        _, decoded, _ = comp.roundtrip(keys, values, dim)
        assert np.all(np.sign(decoded) == np.sign(values))

    def test_scale_is_bounded(self):
        keys, values, dim = make_gradient(seed=3)
        comp = SketchMLCompressor(
            SketchMLConfig.full(compensate_decay=True, **LOSSY)
        )
        message = comp.compress(keys, values, dim)
        assert 1.0 <= message.payload.decay_scale <= 8.0

    def test_costs_eight_bytes(self):
        keys, values, dim = make_gradient(seed=4)
        plain_msg = SketchMLCompressor(SketchMLConfig.full(**LOSSY)).compress(
            keys, values, dim
        )
        comp_msg = SketchMLCompressor(
            SketchMLConfig.full(compensate_decay=True, **LOSSY)
        ).compress(keys, values, dim)
        assert comp_msg.num_bytes == plain_msg.num_bytes + 8
        assert comp_msg.breakdown["decay_scale"] == 8

    def test_accurate_sketch_needs_no_correction(self):
        """With a big sketch the decay is negligible and the scale ≈ 1."""
        keys, values, dim = make_gradient(seed=5)
        comp = SketchMLCompressor(
            SketchMLConfig.full(compensate_decay=True, minmax_cols_factor=2.0)
        )
        message = comp.compress(keys, values, dim)
        assert message.payload.decay_scale == pytest.approx(1.0, abs=0.1)

    def test_survives_wire_roundtrip(self):
        keys, values, dim = make_gradient(seed=6)
        comp = SketchMLCompressor(
            SketchMLConfig.full(compensate_decay=True, **LOSSY)
        )
        message = comp.compress(keys, values, dim)
        direct = comp.decompress(message)
        rebuilt = deserialize_message(serialize_message(message))
        via_wire = comp.decompress(rebuilt)
        np.testing.assert_array_equal(direct[0], via_wire[0])
        np.testing.assert_allclose(direct[1], via_wire[1])

    def test_helps_plain_sgd_convergence(self, tiny_split):
        """The point of the feature: without Adam's per-dimension
        rescaling, compensation recovers convergence lost to decay."""
        from repro.distributed import (
            DistributedTrainer,
            TrainerConfig,
            cluster1_like,
        )
        from repro.models import LogisticRegression
        from repro.optim import SGD

        train, test = tiny_split
        losses = {}
        for name, flag in (("plain", False), ("compensated", True)):
            config = SketchMLConfig.full(compensate_decay=flag, **LOSSY)
            trainer = DistributedTrainer(
                model=LogisticRegression(train.num_features, reg_lambda=0.01),
                optimizer=SGD(learning_rate=0.5),
                compressor_factory=lambda c=config: SketchMLCompressor(c),
                network=cluster1_like(),
                config=TrainerConfig(num_workers=4, epochs=4, seed=0),
            )
            losses[name] = trainer.train(train, test).test_losses[-1]
        assert losses["compensated"] < losses["plain"]
