"""Tests for dataset statistics and the config sweep utility."""

import numpy as np
import pytest

from repro.analysis import (
    DatasetStats,
    SweepCell,
    dataset_stats,
    sweep_sketch_configs,
)
from repro.core import SketchMLConfig
from repro.data import SparseDataset, generate_profile


class TestDatasetStats:
    def test_basic_numbers(self):
        ds = generate_profile("kdd10", seed=0, scale=0.1)
        stats = dataset_stats(ds)
        assert stats.num_rows == ds.num_rows
        assert stats.num_features == ds.num_features
        assert stats.nnz == ds.nnz
        assert 0 < stats.density < 1
        assert stats.avg_nnz_per_row == pytest.approx(ds.avg_nnz_per_row)
        assert stats.max_nnz_per_row >= stats.avg_nnz_per_row
        assert 0 < stats.active_features <= ds.num_features
        assert 0 <= stats.positive_label_fraction <= 1

    def test_zipf_exponent_recovered(self):
        """The estimated slope should land near the generator's setting."""
        ds = generate_profile("kdd12-hothead", seed=0, scale=0.25)  # zipf 1.6
        stats = dataset_stats(ds)
        assert stats.estimated_zipf_exponent == pytest.approx(1.6, abs=0.5)

    def test_head_mass_higher_for_hothead(self):
        plain = dataset_stats(generate_profile("kdd12", seed=0, scale=0.1))
        hot = dataset_stats(
            generate_profile("kdd12-hothead", seed=0, scale=0.1)
        )
        assert hot.head_mass_100 > plain.head_mass_100

    def test_empty_rejected(self):
        empty = SparseDataset(
            np.asarray([0]),
            np.empty(0, dtype=np.int64),
            np.empty(0),
            np.empty(0),
            10,
        )
        with pytest.raises(ValueError, match="empty"):
            dataset_stats(empty)


class TestSweeps:
    def make_gradient(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.choice(100_000, size=5_000, replace=False))
        values = rng.laplace(scale=0.01, size=5_000)
        values[values == 0.0] = 1e-6
        return keys, values

    def test_grid_order_and_labels(self):
        keys, values = self.make_gradient()
        grid = [{}, {"num_buckets": 32}, {"minmax_rows": 4}]
        cells = sweep_sketch_configs(keys, values, 100_000, grid)
        assert len(cells) == 3
        assert cells[0].label() == "default"
        assert cells[1].label() == "num_buckets=32"
        assert all(isinstance(c, SweepCell) for c in cells)

    def test_bucket_sweep_error_monotone(self):
        keys, values = self.make_gradient()
        grid = [{"num_buckets": q} for q in (8, 32, 128)]
        cells = sweep_sketch_configs(keys, values, 100_000, grid)
        errors = [c.mean_abs_error for c in cells]
        assert errors[0] > errors[1] > errors[2]

    def test_rows_sweep_size_monotone(self):
        keys, values = self.make_gradient()
        grid = [{"minmax_rows": s} for s in (1, 2, 4)]
        cells = sweep_sketch_configs(keys, values, 100_000, grid)
        sizes = [c.num_bytes for c in cells]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_custom_base_config(self):
        keys, values = self.make_gradient()
        base = SketchMLConfig.keys_and_quantization()
        cells = sweep_sketch_configs(
            keys, values, 100_000, [{}], base=base
        )
        # Quan-only path: error is the quantization error, no sketch.
        assert cells[0].mean_abs_error < 0.001
        assert cells[0].compression_rate > 2
