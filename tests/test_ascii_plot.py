"""Tests for the ASCII chart helpers."""

import pytest

from repro.bench import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_shape(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out[0] == "▁"
        assert out[-1] == "█"
        assert len(out) == 8

    def test_descending_loss_curve(self):
        out = sparkline([0.9, 0.7, 0.5, 0.3, 0.1])
        assert out[0] == "█"
        assert out[-1] == "▁"


class TestBarChart:
    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1], width=0)

    def test_proportional_bars(self):
        out = bar_chart(["big", "half"], [100.0, 50.0], width=40)
        lines = out.splitlines()
        assert lines[0].count("#") == 40
        assert lines[1].count("#") == 20

    def test_labels_aligned_and_values_shown(self):
        out = bar_chart(["Adam", "SketchML"], [10, 2], unit="s")
        lines = out.splitlines()
        assert lines[0].startswith("Adam    ")
        assert "10s" in lines[0]
        assert "2s" in lines[1]

    def test_zero_values(self):
        out = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0" in out


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == ""
        assert line_chart({"a": []}) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0)]}, width=2)

    def test_markers_and_axes(self):
        out = line_chart(
            {
                "sketchml": [(0, 1.0), (1, 0.5), (2, 0.25)],
                "adam": [(0, 1.0), (3, 0.8)],
            },
            width=20,
            height=6,
        )
        assert "S" in out
        assert "A" in out
        assert "x: 0 .. 3" in out
        assert "y: 0.25 .. 1" in out

    def test_grid_dimensions(self):
        out = line_chart({"m": [(0, 0), (1, 1)]}, width=16, height=5)
        body = [line for line in out.splitlines() if line.startswith("|")]
        assert len(body) == 5
        assert all(len(line) == 17 for line in body)  # '|' + width

    def test_single_point(self):
        out = line_chart({"p": [(2.0, 3.0)]}, width=10, height=4)
        assert "P" in out


class TestNonFiniteValues:
    """Regression: EpochRecord.compression_rate is ``inf`` when no bytes
    were sent; plots and tables must render a dash, not 'inf'/crash."""

    def test_sparkline_renders_placeholder_for_non_finite(self):
        out = sparkline([1.0, float("inf"), 2.0, float("nan"), 3.0])
        assert len(out) == 5
        assert out[1] == "·" and out[3] == "·"
        assert "inf" not in out
        # Finite values still scale over the finite range only.
        assert out[0] != out[4]

    def test_sparkline_all_non_finite(self):
        assert sparkline([float("inf")] * 3) == "···"

    def test_bar_chart_dashes_non_finite_rows(self):
        out = bar_chart(["a", "b"], [2.0, float("inf")], width=10)
        lines = out.splitlines()
        assert "#" in lines[0]
        assert "—" in lines[1] and "#" not in lines[1]
        assert "inf" not in out

    def test_line_chart_drops_non_finite_points(self):
        out = line_chart(
            {"m": [(0, 1.0), (1, float("inf")), (2, 2.0)]},
            width=16, height=5,
        )
        assert "inf" not in out
        assert "y: 1 .. 2" in out

    def test_line_chart_all_non_finite_is_empty(self):
        assert line_chart({"m": [(0, float("nan"))]}) == ""

    def test_format_table_dashes_inf_compression_rate(self):
        from repro.bench import format_table
        from repro.distributed.metrics import EpochRecord

        record = EpochRecord(
            epoch=0, compute_seconds=1.0, network_seconds=0.0,
            encode_seconds=0.0, decode_seconds=0.0, train_loss=0.5,
            test_loss=None, bytes_sent=0, raw_bytes=0, num_messages=0,
            gradient_nnz=0.0,
        )
        assert record.compression_rate == float("inf")
        out = format_table(["rate"], [[record.compression_rate]])
        assert "—" in out
        assert "inf" not in out
