"""Seeded-defect fixtures for the four deep (whole-program) rules.

Each rule gets the defect the ISSUE names — a transitively-blocking
reactor call, a wire-primitive escape via helper, an unseeded RNG
flowing into runtime code, a cyclic lock order — plus a negative twin
showing the sanctioned idiom stays silent, so the rules pin behaviour
in both directions.
"""

import pytest

from repro.analysis import build_project_from_sources, deep_rules
from repro.analysis.driver import analyze_paths


def run_rule(sources, rule_id):
    project = build_project_from_sources(sources)
    (rule,) = [r for r in deep_rules() if r.rule_id == rule_id]
    return list(rule.check_project(project))


class TestReactorReachability:
    def test_transitively_blocking_call_found(self):
        findings = run_rule({
            "runtime/aio.py": (
                "from ..util import backoff\n\n"
                "class AioTransport:\n"
                "    def _pump(self):\n"
                "        backoff()\n"
            ),
            "util.py": (
                "import time\n\n"
                "def backoff():\n"
                "    time.sleep(0.1)\n"
            ),
        }, "reactor-reachability")
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        # the message names the chain from the reactor entry point
        assert "runtime.aio.AioTransport._pump -> util.backoff" in (
            findings[0].message
        )
        assert findings[0].path.endswith("util.py")

    def test_two_hop_chain(self):
        findings = run_rule({
            "runtime/aio.py": (
                "from ..util import a\n\n"
                "def pump():\n    a()\n"
            ),
            "util.py": (
                "import subprocess\n\n"
                "def a():\n    b()\n\n"
                "def b():\n    subprocess.run(['x'])\n"
            ),
        }, "reactor-reachability")
        assert len(findings) == 1
        assert "subprocess.run" in findings[0].message

    def test_unreached_blocking_code_is_silent(self):
        findings = run_rule({
            "runtime/aio.py": "def pump():\n    pass\n",
            "util.py": (
                "import time\n\ndef backoff():\n    time.sleep(0.1)\n"
            ),
        }, "reactor-reachability")
        assert findings == []

    def test_finding_inside_async_module_left_to_shallow_rule(self):
        findings = run_rule({
            "runtime/aio.py": (
                "import time\n\ndef pump():\n    time.sleep(0.1)\n"
            ),
        }, "reactor-reachability")
        assert findings == []  # shallow async-discipline reports this one


class TestWireEscape:
    def test_escape_via_helper_flagged_at_caller(self):
        findings = run_rule({
            "util.py": (
                "import struct\n\n"
                "def pack_header(x):\n"
                "    return struct.pack('<I', x)\n"
            ),
            "trainer.py": (
                "from .util import pack_header\n\n"
                "def send(x):\n"
                "    return pack_header(x)\n"
            ),
        }, "wire-escape")
        assert any(
            "util.pack_header" in f.message and f.path.endswith("trainer.py")
            for f in findings
        )

    def test_private_wire_helper_call_flagged(self):
        findings = run_rule({
            "core/serialization.py": (
                "import struct\n\n"
                "def _raw(x):\n    return struct.pack('<I', x)\n\n"
                "def encode(x):\n    return _raw(x)\n"
            ),
            "trainer.py": (
                "from .core.serialization import _raw\n\n"
                "def sneak(x):\n    return _raw(x)\n"
            ),
        }, "wire-escape")
        assert len(findings) == 1
        assert "bypasses the public codec API" in findings[0].message
        assert findings[0].path.endswith("trainer.py")

    def test_public_codec_api_call_is_sanctioned(self):
        findings = run_rule({
            "core/serialization.py": (
                "import struct\n\n"
                "def encode(x):\n    return struct.pack('<I', x)\n"
            ),
            "trainer.py": (
                "from .core.serialization import encode\n\n"
                "def send(x):\n    return encode(x)\n"
            ),
        }, "wire-escape")
        assert findings == []


class TestSeedFlow:
    def test_unseeded_rng_flowing_into_runtime(self):
        findings = run_rule({
            "bench.py": (
                "import numpy as np\n"
                "from .runtime.faults import inject\n\n"
                "def main():\n"
                "    rng = np.random.default_rng()\n"
                "    inject(rng)\n"
            ),
            "runtime/faults.py": (
                "def inject(rng):\n    return rng.random()\n"
            ),
        }, "seed-flow")
        assert len(findings) == 1
        assert "unseeded RNG flows into runtime/faults.py" in (
            findings[0].message
        )
        assert findings[0].path.endswith("bench.py")

    def test_taint_through_returning_helper(self):
        findings = run_rule({
            "bench.py": (
                "import numpy as np\n"
                "from .core.quantizer import fit\n\n"
                "def make_rng():\n"
                "    return np.random.default_rng()\n\n"
                "def main():\n"
                "    r = make_rng()\n"
                "    fit(r)\n"
            ),
            "core/quantizer.py": "def fit(rng):\n    return rng\n",
        }, "seed-flow")
        assert len(findings) == 1

    def test_wall_clock_seed_is_tainted(self):
        findings = run_rule({
            "bench.py": (
                "import time\n"
                "import numpy as np\n"
                "from .core.quantizer import fit\n\n"
                "def main():\n"
                "    rng = np.random.default_rng(int(time.time()))\n"
                "    fit(rng)\n"
            ),
            "core/quantizer.py": "def fit(rng):\n    return rng\n",
        }, "seed-flow")
        # int(time.time()) wraps the wall clock in a cast; the direct
        # form time.time() is the pinned contract
        findings_direct = run_rule({
            "bench.py": (
                "import time\n"
                "import numpy as np\n"
                "from .core.quantizer import fit\n\n"
                "def main():\n"
                "    rng = np.random.default_rng(time.time_ns())\n"
                "    fit(rng)\n"
            ),
            "core/quantizer.py": "def fit(rng):\n    return rng\n",
        }, "seed-flow")
        assert len(findings_direct) == 1

    def test_seeded_rng_is_clean(self):
        findings = run_rule({
            "bench.py": (
                "import numpy as np\n"
                "from .core.quantizer import fit\n\n"
                "def main(seed):\n"
                "    fit(np.random.default_rng(seed))\n"
                "    fit(np.random.default_rng(42))\n"
            ),
            "core/quantizer.py": "def fit(rng):\n    return rng\n",
        }, "seed-flow")
        assert findings == []

    def test_rebinding_to_seeded_clears_taint(self):
        findings = run_rule({
            "bench.py": (
                "import numpy as np\n"
                "from .core.quantizer import fit\n\n"
                "def main():\n"
                "    rng = np.random.default_rng()\n"
                "    rng = np.random.default_rng(7)\n"
                "    fit(rng)\n"
            ),
            "core/quantizer.py": "def fit(rng):\n    return rng\n",
        }, "seed-flow")
        assert findings == []

    def test_branch_join_is_may_taint(self):
        findings = run_rule({
            "bench.py": (
                "import numpy as np\n"
                "from .core.quantizer import fit\n\n"
                "def main(flag):\n"
                "    if flag:\n"
                "        rng = np.random.default_rng(7)\n"
                "    else:\n"
                "        rng = np.random.default_rng()\n"
                "    fit(rng)\n"
            ),
            "core/quantizer.py": "def fit(rng):\n    return rng\n",
        }, "seed-flow")
        assert len(findings) == 1  # one branch taints => may-tainted


LOCK_CYCLE = (
    "import threading\n\n"
    "class Pool:\n"
    "    def __init__(self):\n"
    "        self.alpha = threading.Lock()\n"
    "        self.beta = threading.Lock()\n\n"
    "    def forward(self):\n"
    "        with self.alpha:\n"
    "            with self.beta:\n"
    "                pass\n\n"
    "    def backward(self):\n"
    "        with self.beta:\n"
    "            with self.alpha:\n"
    "                pass\n"
)


class TestLockOrder:
    def test_cyclic_lock_order_flagged(self):
        findings = run_rule(
            {"runtime/pool.py": LOCK_CYCLE}, "lock-order"
        )
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message
        assert "Pool.alpha" in findings[0].message
        assert "Pool.beta" in findings[0].message

    def test_cycle_through_call_edge(self):
        findings = run_rule({
            "runtime/pool.py": (
                "import threading\n\n"
                "class Pool:\n"
                "    def __init__(self):\n"
                "        self.alpha = threading.Lock()\n"
                "        self.beta = threading.Lock()\n\n"
                "    def locked_beta(self):\n"
                "        with self.beta:\n"
                "            pass\n\n"
                "    def forward(self):\n"
                "        with self.alpha:\n"
                "            self.locked_beta()\n\n"
                "    def backward(self):\n"
                "        with self.beta:\n"
                "            with self.alpha:\n"
                "                pass\n"
            ),
        }, "lock-order")
        assert any("lock-order cycle" in f.message for f in findings)

    def test_consistent_order_is_clean(self):
        findings = run_rule({
            "runtime/pool.py": (
                "import threading\n\n"
                "class Pool:\n"
                "    def __init__(self):\n"
                "        self.alpha = threading.Lock()\n"
                "        self.beta = threading.Lock()\n\n"
                "    def forward(self):\n"
                "        with self.alpha:\n"
                "            with self.beta:\n"
                "                pass\n\n"
                "    def also_forward(self):\n"
                "        with self.alpha:\n"
                "            with self.beta:\n"
                "                pass\n"
            ),
        }, "lock-order")
        assert findings == []

    def test_reentrant_self_edge_ignored(self):
        findings = run_rule({
            "runtime/pool.py": (
                "import threading\n\n"
                "class Pool:\n"
                "    def __init__(self):\n"
                "        self.alpha = threading.RLock()\n\n"
                "    def f(self):\n"
                "        with self.alpha:\n"
                "            with self.alpha:\n"
                "                pass\n"
            ),
        }, "lock-order")
        assert findings == []

    def test_blocking_call_under_lock(self):
        findings = run_rule({
            "runtime/endpoint.py": (
                "import threading\n\n"
                "class Endpoint:\n"
                "    def __init__(self, sock):\n"
                "        self._lock = threading.Lock()\n"
                "        self._sock = sock\n\n"
                "    def send(self, frame):\n"
                "        with self._lock:\n"
                "            self._sock.sendall(frame)\n"
            ),
        }, "lock-order")
        assert len(findings) == 1
        assert "while holding Endpoint._lock" in findings[0].message

    def test_outside_lock_scope_ignored(self):
        # bench/ is outside LOCK_SCOPE_PREFIXES (runtime/ and, since
        # the live-ops plane, telemetry/ are in).
        findings = run_rule(
            {"bench/pool.py": LOCK_CYCLE}, "lock-order"
        )
        assert findings == []


class TestDeepNoqa:
    def test_justified_noqa_suppresses_deep_finding(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "runtime").mkdir(parents=True)
        (pkg / "runtime" / "endpoint.py").write_text(
            "import threading\n\n"
            "class Endpoint:\n"
            "    def __init__(self, sock):\n"
            "        self._lock = threading.Lock()\n"
            "        self._sock = sock\n\n"
            "    def send(self, frame):\n"
            "        with self._lock:\n"
            "            self._sock.sendall(frame)"
            "  # repro: noqa[lock-order] — serialises whole-frame writes\n"
        )
        findings, stats, _ = analyze_paths([str(pkg)])
        assert [f for f in findings if f.rule_id == "lock-order"] == []
        # drop the noqa and the finding comes back
        (pkg / "runtime" / "endpoint.py").write_text(
            "import threading\n\n"
            "class Endpoint:\n"
            "    def __init__(self, sock):\n"
            "        self._lock = threading.Lock()\n"
            "        self._sock = sock\n\n"
            "    def send(self, frame):\n"
            "        with self._lock:\n"
            "            self._sock.sendall(frame)\n"
        )
        findings, stats, _ = analyze_paths([str(pkg)])
        assert [f.rule_id for f in findings] == ["lock-order"]


class TestRealTree:
    def test_deep_rules_clean_on_src(self):
        import os

        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src", "repro",
        )
        findings, stats, project = analyze_paths([src])
        assert findings == []
        # coverage sanity: the graph actually got built
        assert stats.functions > 500
        assert stats.edges > 500
