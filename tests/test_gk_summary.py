"""Tests for the Greenwald–Khanna quantile summary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.quantile import GKSummary, exact_quantiles


class TestBasics:
    def test_empty_query_raises(self):
        with pytest.raises(ValueError, match="empty"):
            GKSummary().query(0.5)

    def test_invalid_epsilon(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                GKSummary(epsilon=bad)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            GKSummary().insert(float("nan"))

    def test_single_item(self):
        gk = GKSummary()
        gk.insert(42.0)
        assert gk.query(0.0) == 42.0
        assert gk.query(0.5) == 42.0
        assert gk.query(1.0) == 42.0
        assert len(gk) == 1

    def test_len_counts_inserts(self):
        gk = GKSummary()
        gk.insert_many(range(137))
        assert len(gk) == 137


class TestAccuracy:
    @pytest.mark.parametrize("epsilon", [0.1, 0.05, 0.01])
    def test_rank_error_within_epsilon(self, epsilon):
        n = 20_000
        rng = np.random.default_rng(0)
        values = rng.normal(size=n)
        gk = GKSummary(epsilon=epsilon)
        gk.insert_many(values)
        sorted_values = np.sort(values)
        for phi in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            estimate = gk.query(phi)
            true_rank = np.searchsorted(sorted_values, estimate, side="right")
            assert abs(true_rank - phi * n) <= 2 * epsilon * n + 1

    def test_sorted_and_reverse_inputs(self):
        n = 5_000
        for values in (np.arange(n, dtype=float), np.arange(n, dtype=float)[::-1]):
            gk = GKSummary(epsilon=0.02)
            gk.insert_many(values)
            median = gk.query(0.5)
            assert abs(median - n / 2) <= 0.05 * n

    def test_heavy_duplicates(self):
        gk = GKSummary(epsilon=0.02)
        gk.insert_many([1.0] * 5_000 + [2.0] * 5_000)
        assert gk.query(0.25) == 1.0
        assert gk.query(0.9) == 2.0

    def test_space_stays_sublinear(self):
        gk = GKSummary(epsilon=0.01)
        rng = np.random.default_rng(1)
        gk.insert_many(rng.normal(size=50_000))
        # O((1/eps) * log(eps n)) — must be far below n.
        assert gk.num_tuples < 2_500


class TestRank:
    def test_rank_monotone(self):
        gk = GKSummary(epsilon=0.02)
        rng = np.random.default_rng(2)
        values = rng.uniform(size=10_000)
        gk.insert_many(values)
        ranks = [gk.rank(q) for q in np.linspace(0, 1, 11)]
        assert ranks == sorted(ranks)

    def test_rank_accuracy(self):
        gk = GKSummary(epsilon=0.01)
        values = np.linspace(0, 1, 10_000)
        gk.insert_many(values)
        assert gk.rank(0.5) == pytest.approx(5_000, abs=300)


class TestMerge:
    def test_merge_type_check(self):
        with pytest.raises(TypeError):
            GKSummary().merge("not a summary")

    def test_merge_empty_cases(self):
        a = GKSummary()
        b = GKSummary()
        b.insert_many(range(100))
        a.merge(b)
        assert len(a) == 100
        c = GKSummary()
        a.merge(c)
        assert len(a) == 100

    def test_merge_accuracy(self):
        rng = np.random.default_rng(3)
        left = rng.normal(size=10_000)
        right = rng.normal(loc=2.0, size=10_000)
        a = GKSummary(epsilon=0.01)
        a.insert_many(left)
        b = GKSummary(epsilon=0.01)
        b.insert_many(right)
        a.merge(b)
        combined = np.concatenate([left, right])
        for phi in (0.1, 0.5, 0.9):
            estimate = a.query(phi)
            true_rank = (combined <= estimate).mean()
            assert abs(true_rank - phi) <= 0.05

    def test_merge_count(self):
        a = GKSummary()
        a.insert_many(range(50))
        b = GKSummary()
        b.insert_many(range(70))
        a.merge(b)
        assert len(a) == 120


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=50, deadline=None)
def test_query_returns_seen_value(values):
    """Every GK answer must be an actual inserted value."""
    gk = GKSummary(epsilon=0.05)
    gk.insert_many(values)
    for phi in (0.0, 0.3, 0.5, 0.9, 1.0):
        assert gk.query(phi) in values


def test_matches_exact_quantiles_on_small_input():
    values = list(range(100))
    gk = GKSummary(epsilon=0.01)
    gk.insert_many(values)
    exact = exact_quantiles(values, [0.25, 0.5, 0.75])
    for phi, truth in zip([0.25, 0.5, 0.75], exact):
        assert abs(gk.query(phi) - truth) <= 3
