"""Tests for the KLL quantile sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.quantile import KLLSketch


class TestBasics:
    def test_empty_query_raises(self):
        with pytest.raises(ValueError, match="empty"):
            KLLSketch().query(0.5)

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            KLLSketch(k=4)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            KLLSketch().insert(float("nan"))
        with pytest.raises(ValueError):
            KLLSketch().insert_many([1.0, float("nan")])

    def test_extremes_are_exact(self):
        sk = KLLSketch(k=64, seed=0)
        rng = np.random.default_rng(0)
        values = rng.normal(size=10_000)
        sk.insert_many(values)
        assert sk.query(0.0) == values.min()
        assert sk.query(1.0) == values.max()
        assert sk.min_value == values.min()
        assert sk.max_value == values.max()

    def test_count_tracks_inserts(self):
        sk = KLLSketch(seed=1)
        sk.insert_many(range(1_000))
        sk.insert(5.0)
        assert len(sk) == 1_001

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=5_000)
        a = KLLSketch(k=128, seed=9)
        a.insert_many(values)
        b = KLLSketch(k=128, seed=9)
        b.insert_many(values)
        phis = [0.1, 0.5, 0.9]
        assert a.query_many(phis) == b.query_many(phis)


class TestAccuracy:
    @pytest.mark.parametrize("k,tolerance", [(64, 0.05), (128, 0.03), (256, 0.02)])
    def test_rank_error_scales_with_k(self, k, tolerance):
        rng = np.random.default_rng(42)
        values = rng.normal(size=100_000)
        sk = KLLSketch(k=k, seed=0)
        sk.insert_many(values)
        for phi in (0.05, 0.25, 0.5, 0.75, 0.95):
            estimate = sk.query(phi)
            true_rank = (values <= estimate).mean()
            assert abs(true_rank - phi) <= tolerance

    def test_space_stays_bounded(self):
        sk = KLLSketch(k=128, seed=0)
        rng = np.random.default_rng(7)
        sk.insert_many(rng.normal(size=1_000_000))
        # KLL retains O(k log log n) items — a few hundred here.
        assert sk.retained_items < 1_500

    def test_skewed_distribution(self):
        """Heavily skewed data (like gradient values) is still tracked."""
        rng = np.random.default_rng(5)
        values = rng.laplace(scale=0.001, size=50_000)
        sk = KLLSketch(k=256, seed=1)
        sk.insert_many(values)
        for phi in (0.1, 0.5, 0.9):
            estimate = sk.query(phi)
            true_rank = (values <= estimate).mean()
            assert abs(true_rank - phi) <= 0.03

    def test_query_many_matches_query(self):
        rng = np.random.default_rng(8)
        sk = KLLSketch(k=128, seed=2)
        sk.insert_many(rng.uniform(size=20_000))
        phis = [0.0, 0.2, 0.5, 0.8, 1.0]
        batch = sk.query_many(phis)
        singles = [sk.query(phi) for phi in phis]
        assert batch == singles

    def test_rank_method(self):
        sk = KLLSketch(k=128, seed=0)
        sk.insert_many(np.linspace(0, 1, 50_000))
        assert sk.rank(0.25) == pytest.approx(0.25, abs=0.03)
        assert sk.rank(-1.0) == 0.0
        assert sk.rank(2.0) == 1.0


class TestMerge:
    def test_merge_type_check(self):
        with pytest.raises(TypeError):
            KLLSketch().merge(42)

    def test_merge_empty(self):
        a = KLLSketch(seed=0)
        a.insert_many(range(100))
        a.merge(KLLSketch(seed=1))
        assert len(a) == 100

    def test_merge_preserves_extremes_and_count(self):
        a = KLLSketch(k=64, seed=0)
        a.insert_many(np.arange(0, 1_000, dtype=float))
        b = KLLSketch(k=64, seed=1)
        b.insert_many(np.arange(5_000, 7_000, dtype=float))
        a.merge(b)
        assert len(a) == 3_000
        assert a.query(0.0) == 0.0
        assert a.query(1.0) == 6_999.0

    def test_merged_accuracy(self):
        """Distributed use case: per-worker sketches merged at the driver."""
        rng = np.random.default_rng(10)
        values = rng.normal(size=60_000)
        chunks = np.array_split(values, 6)
        merged = KLLSketch(k=256, seed=0)
        for i, chunk in enumerate(chunks):
            local = KLLSketch(k=256, seed=i + 1)
            local.insert_many(chunk)
            merged.merge(local)
        assert len(merged) == values.size
        for phi in (0.1, 0.5, 0.9):
            estimate = merged.query(phi)
            assert abs((values <= estimate).mean() - phi) <= 0.04


class TestWeightConservation:
    def test_total_weight_equals_count(self):
        """Compactions must preserve total item weight exactly."""
        sk = KLLSketch(k=16, seed=3)
        rng = np.random.default_rng(4)
        sk.insert_many(rng.normal(size=12_345))
        total_weight = sum(
            (1 << level) * len(items) for level, items in enumerate(sk._levels)
        )
        assert total_weight == 12_345


@given(
    values=st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=500,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_kll_answers_are_inserted_values(values, seed):
    sk = KLLSketch(k=32, seed=seed)
    sk.insert_many(values)
    for phi in (0.0, 0.5, 1.0):
        assert sk.query(phi) in values
