"""Tests for Space-Saving and the heavy-hitter hybrid compressor."""

import numpy as np
import pytest

from repro.compression import (
    HeavyHitterSketchMLCompressor,
    make_compressor,
)
from repro.core import SketchMLCompressor, SketchMLConfig
from repro.sketch.frequency import SpaceSaving


class TestSpaceSaving:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(capacity=0)
        with pytest.raises(ValueError):
            SpaceSaving().insert(1, count=0)
        with pytest.raises(ValueError):
            SpaceSaving().heavy_hitters(threshold_fraction=1.5)

    def test_exact_when_under_capacity(self):
        ss = SpaceSaving(capacity=10)
        ss.insert_many([1, 1, 1, 2, 2, 3])
        assert ss.query(1) == 3
        assert ss.query(2) == 2
        assert ss.query(3) == 1
        assert ss.query(99) == 0
        assert ss.error_bound(1) == 0

    def test_never_underestimates_tracked(self):
        rng = np.random.default_rng(0)
        keys = rng.zipf(1.5, size=50_000) % 10_000
        ss = SpaceSaving(capacity=100)
        ss.insert_many(keys)
        true_counts = np.bincount(keys, minlength=10_000)
        for key, estimate in ss.heavy_hitters():
            assert estimate >= true_counts[key]
            assert estimate - ss.error_bound(key) <= true_counts[key]

    def test_guarantee_items_above_threshold_are_tracked(self):
        """Any item with frequency > N/k must survive."""
        rng = np.random.default_rng(1)
        background = rng.integers(1_000, 100_000, size=20_000)
        hot = np.full(5_000, 7)  # one item with 20% of the stream
        stream = rng.permutation(np.concatenate([background, hot]))
        ss = SpaceSaving(capacity=64)
        ss.insert_many(stream)
        tracked = dict(ss.heavy_hitters())
        assert 7 in tracked
        assert tracked[7] >= 5_000

    def test_heavy_hitters_sorted_and_thresholded(self):
        ss = SpaceSaving(capacity=10)
        ss.insert_many([1] * 50 + [2] * 30 + [3] * 20)
        top = ss.heavy_hitters()
        assert [k for k, _ in top] == [1, 2, 3]
        assert ss.heavy_hitters(threshold_fraction=0.25) == [(1, 50), (2, 30)]

    def test_guaranteed_heavy_hitters(self):
        ss = SpaceSaving(capacity=4)
        ss.insert_many([1] * 100 + list(range(10, 40)))
        guaranteed = ss.guaranteed_heavy_hitters(0.5)
        assert guaranteed and guaranteed[0][0] == 1

    def test_merge(self):
        a = SpaceSaving(capacity=8)
        b = SpaceSaving(capacity=8)
        a.insert_many([1] * 10 + [2] * 5)
        b.insert_many([1] * 7 + [3] * 4)
        a.merge(b)
        assert a.query(1) >= 17
        assert a.total_count == 26
        with pytest.raises(TypeError):
            a.merge("x")

    def test_merge_truncates_to_capacity(self):
        a = SpaceSaving(capacity=3)
        b = SpaceSaving(capacity=3)
        a.insert_many([1, 1, 2, 3])
        b.insert_many([4, 4, 4, 5, 6])
        a.merge(b)
        assert a.tracked_count <= 3

    def test_zipf_head_detection_on_dataset(self):
        """Find the hot features of a synthetic dataset — the Fig. 11
        saturation drivers."""
        from repro.data import generate_profile

        ds = generate_profile("kdd12-hothead", seed=0, scale=0.05)
        ss = SpaceSaving(capacity=50)
        ss.insert_many(ds.indices)
        top_keys = [k for k, _ in ss.heavy_hitters()[:10]]
        # The hot head lives at low feature ids (Zipf rank order).
        assert np.median(top_keys) < 100


class TestHybridCompressor:
    def make_gradient(self, nnz=5_000, dimension=200_000, seed=0):
        rng = np.random.default_rng(seed)
        keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
        values = rng.laplace(scale=0.01, size=nnz)
        values[values == 0.0] = 1e-6
        return keys, values, dimension

    def test_registered(self):
        assert isinstance(
            make_compressor("sketchml-hybrid"), HeavyHitterSketchMLCompressor
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterSketchMLCompressor(heavy_fraction=1.5)

    def test_keys_lossless(self):
        keys, values, dim = self.make_gradient(seed=1)
        comp = HeavyHitterSketchMLCompressor(heavy_fraction=0.02)
        out_keys, out_values, _ = comp.roundtrip(keys, values, dim)
        np.testing.assert_array_equal(out_keys, keys)

    def test_heavy_entries_are_exact(self):
        keys, values, dim = self.make_gradient(seed=2)
        comp = HeavyHitterSketchMLCompressor(heavy_fraction=0.02)
        out_keys, out_values, _ = comp.roundtrip(keys, values, dim)
        num_heavy = int(round(keys.size * 0.02))
        heavy_idx = np.argpartition(np.abs(values), -num_heavy)[-num_heavy:]
        decoded = dict(zip(out_keys.tolist(), out_values.tolist()))
        for i in heavy_idx:
            assert decoded[int(keys[i])] == values[i]

    def test_worst_case_error_below_plain_sketchml(self):
        keys, values, dim = self.make_gradient(seed=3)
        plain = SketchMLCompressor(SketchMLConfig.full())
        hybrid = HeavyHitterSketchMLCompressor(heavy_fraction=0.02)
        _, plain_decoded, plain_msg = plain.roundtrip(keys, values, dim)
        _, hybrid_decoded, hybrid_msg = hybrid.roundtrip(keys, values, dim)
        assert (
            np.abs(hybrid_decoded - values).max()
            < np.abs(plain_decoded - values).max()
        )
        # Size overhead stays modest (the heavy set is 2%).
        assert hybrid_msg.num_bytes < plain_msg.num_bytes * 1.35

    def test_zero_fraction_equals_plain(self):
        keys, values, dim = self.make_gradient(seed=4)
        hybrid = HeavyHitterSketchMLCompressor(heavy_fraction=0.0)
        plain = SketchMLCompressor(SketchMLConfig())
        _, hv, _ = hybrid.roundtrip(keys, values, dim)
        _, pv, _ = plain.roundtrip(keys, values, dim)
        np.testing.assert_allclose(hv, pv)

    def test_full_fraction_is_lossless(self):
        keys, values, dim = self.make_gradient(nnz=500, seed=5)
        hybrid = HeavyHitterSketchMLCompressor(heavy_fraction=1.0)
        out_keys, out_values, _ = hybrid.roundtrip(keys, values, dim)
        np.testing.assert_array_equal(out_keys, keys)
        np.testing.assert_allclose(out_values, values)

    def test_empty_gradient(self):
        comp = HeavyHitterSketchMLCompressor()
        empty = np.asarray([], dtype=np.int64)
        out_keys, out_values, msg = comp.roundtrip(empty, empty.astype(float), 10)
        assert out_keys.size == 0
        assert msg.num_bytes > 0

    def test_signs_preserved(self):
        keys, values, dim = self.make_gradient(seed=6)
        comp = HeavyHitterSketchMLCompressor(heavy_fraction=0.05)
        _, decoded, _ = comp.roundtrip(keys, values, dim)
        assert np.all(np.sign(decoded) == np.sign(values))
