"""Tests for the baseline compressors (Identity, ZipML, 1-bit, top-k, fp16)."""

import numpy as np
import pytest

from repro.compression import (
    Float16Compressor,
    IdentityCompressor,
    OneBitCompressor,
    TopKCompressor,
    ZipMLCompressor,
    available_compressors,
    make_compressor,
)


def make_gradient(nnz=2_000, dimension=50_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-5
    return keys, values, dimension


class TestRegistry:
    def test_all_registered(self):
        names = available_compressors()
        for expected in ("identity", "zipml", "onebit", "topk", "float16", "sketchml"):
            assert expected in names

    def test_make_compressor(self):
        comp = make_compressor("zipml", bits=8)
        assert isinstance(comp, ZipMLCompressor)
        assert comp.bits == 8

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown compressor"):
            make_compressor("gzip")


class TestIdentity:
    def test_double_is_exact(self):
        keys, values, dim = make_gradient()
        out_keys, out_values, msg = IdentityCompressor().roundtrip(keys, values, dim)
        np.testing.assert_array_equal(out_keys, keys)
        np.testing.assert_array_equal(out_values, values)
        assert msg.num_bytes == 12 * keys.size
        assert msg.compression_rate == pytest.approx(1.0)

    def test_float_variant(self):
        keys, values, dim = make_gradient()
        _, out_values, msg = IdentityCompressor(value_bytes=4).roundtrip(
            keys, values, dim
        )
        assert msg.num_bytes == 8 * keys.size
        np.testing.assert_allclose(out_values, values, rtol=1e-6)

    def test_invalid_value_bytes(self):
        with pytest.raises(ValueError):
            IdentityCompressor(value_bytes=2)

    def test_rejects_bad_gradient(self):
        comp = IdentityCompressor()
        with pytest.raises(ValueError, match="ascending"):
            comp.compress(np.asarray([2, 1]), np.asarray([0.1, 0.2]), 10)
        with pytest.raises(ValueError, match="finite"):
            comp.compress(np.asarray([1, 2]), np.asarray([0.1, np.nan]), 10)
        with pytest.raises(ValueError, match="dimension"):
            comp.compress(np.asarray([1]), np.asarray([0.1]), 0)


class TestZipML:
    def test_16bit_high_fidelity(self):
        keys, values, dim = make_gradient(seed=1)
        _, out_values, msg = ZipMLCompressor(bits=16).roundtrip(keys, values, dim)
        span = values.max() - values.min()
        assert np.abs(out_values - values).max() <= span / 2**15
        assert msg.num_bytes == keys.size * 6 + 16

    def test_8bit_coarser_than_16bit(self):
        keys, values, dim = make_gradient(seed=2)
        _, v8, _ = ZipMLCompressor(bits=8).roundtrip(keys, values, dim)
        _, v16, _ = ZipMLCompressor(bits=16).roundtrip(keys, values, dim)
        assert np.mean((v8 - values) ** 2) > np.mean((v16 - values) ** 2)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ZipMLCompressor(bits=12)

    def test_zeroing_of_small_values(self):
        """The failure mode §3.2 describes: near-zero values collapse
        onto shared levels under uniform quantization."""
        rng = np.random.default_rng(3)
        values = np.concatenate([rng.normal(scale=1e-4, size=999), [1.0]])
        keys = np.arange(1_000)
        _, decoded, _ = ZipMLCompressor(bits=8).roundtrip(keys, values, 1_000)
        # With the range stretched to 1.0, all small values hit one level.
        assert len(np.unique(decoded[:999])) <= 2

    def test_stochastic_rounding_unbiased(self):
        keys = np.arange(20_000)
        values = np.full(20_000, 0.3)
        values[0], values[-1] = 0.0, 1.0  # pin the range
        comp = ZipMLCompressor(bits=8, stochastic=True, seed=7)
        _, decoded, _ = comp.roundtrip(keys, values, 20_000)
        assert decoded[1:-1].mean() == pytest.approx(0.3, abs=0.002)

    def test_constant_values(self):
        keys = np.arange(10)
        values = np.full(10, 0.5)
        _, decoded, _ = ZipMLCompressor().roundtrip(keys, values, 10)
        np.testing.assert_allclose(decoded, values)

    def test_empty_gradient(self):
        comp = ZipMLCompressor()
        keys = np.asarray([], dtype=np.int64)
        out_keys, out_values, msg = comp.roundtrip(keys, keys.astype(float), 10)
        assert out_keys.size == 0 and out_values.size == 0


class TestOneBit:
    def test_signs_preserved(self):
        keys, values, dim = make_gradient(seed=4)
        comp = OneBitCompressor(error_feedback=False)
        _, decoded, _ = comp.roundtrip(keys, values, dim)
        np.testing.assert_array_equal(np.sign(decoded), np.sign(values))

    def test_two_magnitudes_only(self):
        keys, values, dim = make_gradient(seed=5)
        comp = OneBitCompressor(error_feedback=False)
        _, decoded, _ = comp.roundtrip(keys, values, dim)
        assert len(np.unique(np.abs(decoded))) <= 2

    def test_extreme_compression_rate(self):
        keys, values, dim = make_gradient(nnz=8_000, seed=6)
        msg = OneBitCompressor().compress(keys, values, dim)
        # 1 bit/value vs 64: value part shrinks ~64x; keys still 4B.
        assert msg.breakdown["values"] == 1_000
        assert msg.compression_rate > 2.5

    def test_error_feedback_reduces_bias(self):
        """With feedback, repeated compression of the same gradient
        should track its mean value instead of losing the residual."""
        rng = np.random.default_rng(7)
        keys = np.arange(100)
        dim = 100
        target = rng.laplace(scale=1.0, size=100)
        with_fb = OneBitCompressor(error_feedback=True)
        accumulated = np.zeros(dim)
        for _ in range(50):
            _, decoded, _ = with_fb.roundtrip(keys, target, dim)
            accumulated += decoded
        # Accumulated decoded mass approximates 50 * target.
        correlation = np.corrcoef(accumulated, target)[0, 1]
        assert correlation > 0.95

    def test_reset_clears_state(self):
        comp = OneBitCompressor()
        keys, values, dim = make_gradient(nnz=10, seed=8)
        comp.compress(keys, values, dim)
        assert comp._residual
        comp.reset()
        assert not comp._residual


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        keys = np.arange(10)
        values = np.asarray([0.01, -5.0, 0.02, 3.0, 0.005, -0.02, 4.0, 0.03, -2.0, 0.001])
        comp = TopKCompressor(ratio=0.3, error_feedback=False)
        out_keys, out_values = comp.decompress(comp.compress(keys, values, 10))
        assert set(out_keys.tolist()) == {1, 6, 3}

    def test_ratio_one_is_identity(self):
        keys, values, dim = make_gradient(nnz=100, seed=9)
        out_keys, out_values, _ = TopKCompressor(ratio=1.0).roundtrip(
            keys, values, dim
        )
        np.testing.assert_array_equal(out_keys, keys)
        np.testing.assert_allclose(out_values, values)

    def test_invalid_ratio(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                TopKCompressor(ratio=bad)

    def test_bytes_scale_with_ratio(self):
        keys, values, dim = make_gradient(nnz=1_000, seed=10)
        small = TopKCompressor(ratio=0.1).compress(keys, values, dim)
        large = TopKCompressor(ratio=0.5).compress(keys, values, dim)
        assert small.num_bytes < large.num_bytes
        assert small.num_bytes == pytest.approx(100 * 12, rel=0.05)

    def test_error_feedback_reinjects_dropped_mass(self):
        comp = TopKCompressor(ratio=0.5, error_feedback=True)
        keys = np.arange(4)
        values = np.asarray([1.0, 0.1, 0.2, 2.0])
        comp.compress(keys, values, 4)
        # Dropped keys 1, 2 carry residuals into the next call.
        msg = comp.compress(keys, values, 4)
        out_keys, out_values = comp.decompress(msg)
        restored = dict(zip(out_keys.tolist(), out_values.tolist()))
        # Key 1 or 2 should now exceed its single-round value.
        boosted = [v for k, v in restored.items() if k in (1, 2)]
        assert any(v > 0.2 for v in boosted) or not boosted


class TestFloat16:
    def test_roundtrip_close(self):
        keys, values, dim = make_gradient(seed=11)
        _, decoded, msg = Float16Compressor().roundtrip(keys, values, dim)
        np.testing.assert_allclose(decoded, values, rtol=1e-3, atol=1e-7)
        assert msg.num_bytes == keys.size * 6

    def test_compression_rate_is_two(self):
        keys, values, dim = make_gradient(seed=12)
        msg = Float16Compressor().compress(keys, values, dim)
        assert msg.compression_rate == pytest.approx(2.0)
