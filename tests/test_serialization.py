"""Tests for the SketchML wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import IdentityCompressor
from repro.core import (
    SerializationError,
    SketchMLCompressor,
    SketchMLConfig,
    deserialize_message,
    serialize_message,
)


def make_gradient(nnz=3_000, dimension=100_000, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-6
    return keys, values, dimension


CONFIGS = [
    SketchMLConfig.adam(),
    SketchMLConfig.keys_only(),
    SketchMLConfig.keys_and_quantization(),
    SketchMLConfig.keys_and_quantization(pack_index_bits=True),
    SketchMLConfig.full(),
    SketchMLConfig.full(num_buckets=256, num_groups=4, minmax_rows=3),
    SketchMLConfig.full(hash_family="tabulation"),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.ablation_label + str(id(c) % 97))
class TestWireRoundtrip:
    def test_decodes_identically(self, config):
        keys, values, dim = make_gradient(seed=1)
        comp = SketchMLCompressor(config)
        message = comp.compress(keys, values, dim)
        expected_keys, expected_values = comp.decompress(message)

        wire = serialize_message(message)
        rebuilt = deserialize_message(wire)
        out_keys, out_values = comp.decompress(rebuilt)
        np.testing.assert_array_equal(out_keys, expected_keys)
        np.testing.assert_allclose(out_values, expected_values)

    def test_metadata_preserved(self, config):
        keys, values, dim = make_gradient(seed=2)
        message = SketchMLCompressor(config).compress(keys, values, dim)
        rebuilt = deserialize_message(serialize_message(message))
        assert rebuilt.dimension == message.dimension
        assert rebuilt.nnz == message.nnz

    def test_wire_size_close_to_accounting(self, config):
        """The accounted num_bytes must approximate the true wire size.

        The wire format adds explicit length prefixes the accounting
        model (which assumes implicit framing) does not charge, so the
        real bytes may exceed the estimate by a bounded factor.
        """
        keys, values, dim = make_gradient(nnz=8_000, seed=3)
        message = SketchMLCompressor(config).compress(keys, values, dim)
        wire = serialize_message(message)
        assert len(wire) < message.num_bytes * 1.35 + 512
        assert len(wire) > message.num_bytes * 0.5


class TestWireErrors:
    def _wire(self):
        keys, values, dim = make_gradient(seed=4)
        message = SketchMLCompressor().compress(keys, values, dim)
        return serialize_message(message)

    def test_rejects_foreign_message(self):
        keys, values, dim = make_gradient(nnz=10, seed=5)
        message = IdentityCompressor().compress(keys, values, dim)
        with pytest.raises(TypeError):
            serialize_message(message)

    def test_bad_magic(self):
        wire = bytearray(self._wire())
        wire[0] = 0
        with pytest.raises(SerializationError, match="magic"):
            deserialize_message(bytes(wire))

    def test_bad_version(self):
        wire = bytearray(self._wire())
        wire[4] = 99
        with pytest.raises(SerializationError, match="version"):
            deserialize_message(bytes(wire))

    def test_truncation(self):
        wire = self._wire()
        with pytest.raises(SerializationError, match="truncated"):
            deserialize_message(wire[: len(wire) // 2])

    def test_trailing_bytes(self):
        with pytest.raises(SerializationError, match="trailing"):
            deserialize_message(self._wire() + b"\x00")

    def test_empty_gradient_roundtrip(self):
        comp = SketchMLCompressor()
        empty = np.asarray([], dtype=np.int64)
        message = comp.compress(empty, empty.astype(float), 100)
        rebuilt = deserialize_message(serialize_message(message))
        out_keys, out_values = comp.decompress(rebuilt)
        assert out_keys.size == 0
        assert out_values.size == 0


@given(
    nnz=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_wire_roundtrip_property(nnz, seed):
    rng = np.random.default_rng(seed)
    dimension = max(nnz * 8, 64)
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.normal(scale=0.05, size=nnz)
    values[values == 0.0] = 0.01
    comp = SketchMLCompressor(SketchMLConfig.full(seed=seed))
    message = comp.compress(keys, values, dimension)
    expected = comp.decompress(message)
    rebuilt = deserialize_message(serialize_message(message))
    out = comp.decompress(rebuilt)
    np.testing.assert_array_equal(out[0], expected[0])
    np.testing.assert_allclose(out[1], expected[1])
