"""Tests for the stale-synchronous-parallel trainer."""

import numpy as np
import pytest

from repro.compression import IdentityCompressor
from repro.core import SketchMLCompressor
from repro.distributed import SSPConfig, SSPTrainer, cluster1_like
from repro.models import LogisticRegression
from repro.optim import Adam


def make_trainer(train, staleness=3, method=IdentityCompressor, workers=4,
                 epochs=2, heterogeneity=0.5, seed=0):
    return SSPTrainer(
        model=LogisticRegression(train.num_features, reg_lambda=0.01),
        optimizer=Adam(learning_rate=0.01),
        compressor_factory=method,
        network=cluster1_like(),
        config=SSPConfig(
            num_workers=workers,
            staleness=staleness,
            epochs=epochs,
            seed=seed,
            heterogeneity=heterogeneity,
        ),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SSPConfig(num_workers=0)
        with pytest.raises(ValueError):
            SSPConfig(staleness=-1)
        with pytest.raises(ValueError):
            SSPConfig(batch_fraction=0.0)
        with pytest.raises(ValueError):
            SSPConfig(heterogeneity=-0.1)


class TestTraining:
    def test_history_structure(self, tiny_split):
        train, test = tiny_split
        trainer = make_trainer(train)
        history = trainer.train(train, test)
        assert history.num_epochs == 2
        assert all(e.num_messages > 0 for e in history.epochs)
        assert all(e.test_loss is not None for e in history.epochs)
        assert trainer.simulated_seconds > 0
        assert trainer.theta.shape == (train.num_features,)

    def test_loss_decreases(self, tiny_split):
        train, test = tiny_split
        history = make_trainer(train, epochs=4).train(train, test)
        assert history.test_losses[-1] < history.test_losses[0]

    def test_sketchml_under_asynchrony(self, tiny_split):
        """Lossy compression must stay convergent under staleness."""
        train, test = tiny_split
        sketch = make_trainer(train, method=SketchMLCompressor, epochs=4)
        history = sketch.train(train, test)
        assert history.test_losses[-1] < np.log(2.0)
        assert history.avg_compression_rate > 2.0

    def test_staleness_zero_is_lockstep(self, tiny_split):
        """With staleness 0 no worker can be a full clock ahead."""
        train, _ = tiny_split
        trainer = make_trainer(train, staleness=0, heterogeneity=2.0, epochs=1)
        history = trainer.train(train)
        # Every batch got processed (4 workers x batches per epoch).
        assert history.epochs[0].num_messages >= 4

    def test_theta_before_train_raises(self, tiny_split):
        train, _ = tiny_split
        trainer = make_trainer(train)
        with pytest.raises(RuntimeError):
            _ = trainer.theta
        with pytest.raises(RuntimeError):
            _ = trainer.simulated_seconds

    def test_deterministic_given_seed(self, tiny_split):
        train, test = tiny_split
        a = make_trainer(train, seed=3).train(train, test)
        b = make_trainer(train, seed=3).train(train, test)
        assert a.test_losses == b.test_losses
        assert a.total_bytes_sent == b.total_bytes_sent

    def test_compression_reduces_bytes(self, tiny_split):
        train, test = tiny_split
        adam = make_trainer(train).train(train, test)
        sketch = make_trainer(train, method=SketchMLCompressor).train(train, test)
        assert sketch.total_bytes_sent < adam.total_bytes_sent

    def test_higher_staleness_finishes_sooner_with_stragglers(self, tiny_split):
        """The whole point of SSP: with heterogeneous workers, allowing
        bounded staleness shortens the simulated wall clock versus
        lockstep."""
        train, _ = tiny_split

        def simulated_time(staleness):
            trainer = SSPTrainer(
                model=LogisticRegression(train.num_features),
                optimizer=Adam(learning_rate=0.01),
                compressor_factory=IdentityCompressor,
                network=cluster1_like(),
                config=SSPConfig(
                    num_workers=4,
                    staleness=staleness,
                    epochs=2,
                    seed=1,
                    heterogeneity=3.0,
                    compute_seconds_per_nnz=1e-3,
                ),
            )
            trainer.train(train)
            return trainer.simulated_seconds

        assert simulated_time(8) <= simulated_time(0)
