"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SparseDataset, kdd10_like, train_test_split


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def sparse_gradient(rng):
    """A realistic sparse gradient: ascending keys, near-zero-heavy values."""
    dimension = 100_000
    nnz = 3_000
    keys = np.sort(rng.choice(dimension, size=nnz, replace=False))
    values = rng.laplace(scale=0.01, size=nnz)
    values[values == 0.0] = 1e-6
    return keys, values, dimension


@pytest.fixture(scope="session")
def tiny_dataset() -> SparseDataset:
    """A small synthetic dataset shared across integration tests."""
    return kdd10_like(seed=7, scale=0.1)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return train_test_split(tiny_dataset, seed=7)
