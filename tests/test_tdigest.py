"""Tests for the t-digest quantile sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.quantile import TDigest


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            TDigest(delta=5)
        with pytest.raises(ValueError):
            TDigest(buffer_size=0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TDigest().query(0.5)
        with pytest.raises(ValueError, match="empty"):
            TDigest().rank(0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            TDigest().insert(float("nan"))
        with pytest.raises(ValueError):
            TDigest().insert_many([1.0, float("nan")])

    def test_single_value(self):
        td = TDigest()
        td.insert(3.5)
        assert td.query(0.0) == 3.5
        assert td.query(0.5) == 3.5
        assert td.query(1.0) == 3.5

    def test_extremes_exact(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=50_000)
        td = TDigest(delta=100)
        td.insert_many(values)
        assert td.query(0.0) == values.min()
        assert td.query(1.0) == values.max()

    def test_count(self):
        td = TDigest()
        td.insert_many(range(1_000))
        td.insert(5.0)
        assert len(td) == 1_001


class TestAccuracy:
    @pytest.mark.parametrize("phi", [0.01, 0.1, 0.5, 0.9, 0.99])
    def test_body_quantiles(self, phi):
        rng = np.random.default_rng(1)
        values = rng.normal(size=100_000)
        td = TDigest(delta=200)
        td.insert_many(values)
        estimate = td.query(phi)
        true_rank = (values <= estimate).mean()
        assert abs(true_rank - phi) < 0.02

    def test_tail_accuracy_better_than_body(self):
        """The asin scale function concentrates accuracy in the tails."""
        rng = np.random.default_rng(2)
        values = rng.exponential(size=200_000)
        td = TDigest(delta=100)
        td.insert_many(values)
        tail_err = abs((values <= td.query(0.999)).mean() - 0.999)
        body_err = abs((values <= td.query(0.5)).mean() - 0.5)
        assert tail_err <= max(body_err, 0.005)

    def test_space_bounded(self):
        rng = np.random.default_rng(3)
        td = TDigest(delta=100)
        td.insert_many(rng.normal(size=500_000))
        assert td.num_centroids < 200

    def test_skewed_gradient_like_data(self):
        rng = np.random.default_rng(4)
        values = np.abs(rng.laplace(scale=0.001, size=80_000))
        td = TDigest(delta=128)
        td.insert_many(values)
        for phi in (0.25, 0.5, 0.75):
            estimate = td.query(phi)
            assert abs((values <= estimate).mean() - phi) < 0.02

    def test_rank_consistent_with_query(self):
        rng = np.random.default_rng(5)
        td = TDigest(delta=100)
        td.insert_many(rng.uniform(size=50_000))
        assert td.rank(td.query(0.3)) == pytest.approx(0.3, abs=0.03)


class TestMerge:
    def test_type_check(self):
        with pytest.raises(TypeError):
            TDigest().merge([1, 2, 3])

    def test_merge_empty(self):
        a = TDigest()
        a.insert_many(range(100))
        a.merge(TDigest())
        assert len(a) == 100

    def test_merge_accuracy(self):
        rng = np.random.default_rng(6)
        values = rng.normal(size=80_000)
        merged = TDigest(delta=100)
        for chunk in np.array_split(values, 8):
            local = TDigest(delta=100)
            local.insert_many(chunk)
            merged.merge(local)
        assert len(merged) == values.size
        for phi in (0.1, 0.5, 0.9):
            estimate = merged.query(phi)
            assert abs((values <= estimate).mean() - phi) < 0.03

    def test_weight_conserved_by_merge(self):
        a = TDigest(delta=50)
        a.insert_many(range(10_000))
        b = TDigest(delta=50)
        b.insert_many(range(5_000))
        a.merge(b)
        a._merge_buffer()
        assert a._weights.sum() == pytest.approx(15_000)


class TestQuantizerIntegration:
    def test_tdigest_backed_quantizer(self):
        from repro.core.quantizer import QuantileBucketQuantizer

        rng = np.random.default_rng(7)
        values = rng.laplace(scale=0.01, size=20_000)
        values[values == 0.0] = 1e-6
        quant = QuantileBucketQuantizer(
            num_buckets=64, sketch="tdigest", sketch_size=100
        ).fit(values)
        decoded = quant.quantize(values)
        assert np.all(np.sign(decoded) == np.sign(values))
        assert np.mean(np.abs(decoded - values)) < 0.01


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=400,
    )
)
@settings(max_examples=40, deadline=None)
def test_quantiles_within_range_property(values):
    td = TDigest(delta=50)
    td.insert_many(values)
    for phi in (0.0, 0.25, 0.5, 0.75, 1.0):
        estimate = td.query(phi)
        assert min(values) <= estimate <= max(values)
