"""Tests for checkpointing and the quantizer refit interval."""

import numpy as np
import pytest

from repro.core import SketchMLCompressor, SketchMLConfig
from repro.distributed import load_checkpoint, save_checkpoint
from repro.optim import Adam, AdaGrad, Momentum, SGD


class TestCheckpoint:
    def test_theta_roundtrip(self, tmp_path):
        theta = np.random.default_rng(0).normal(size=1_000)
        path = tmp_path / "model.npz"
        save_checkpoint(path, theta, epoch=7)
        loaded, epoch = load_checkpoint(path)
        np.testing.assert_array_equal(loaded, theta)
        assert epoch == 7

    @pytest.mark.parametrize(
        "optimizer",
        [SGD(0.1), Momentum(0.1), AdaGrad(0.1), Adam(0.05)],
        ids=lambda o: o.name,
    )
    def test_optimizer_state_roundtrip(self, tmp_path, optimizer):
        rng = np.random.default_rng(1)
        theta = np.zeros(100)
        optimizer.prepare(100)
        for _ in range(5):
            keys = np.sort(rng.choice(100, size=20, replace=False))
            optimizer.step(theta, keys, rng.normal(size=20))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, theta, optimizer, epoch=5)

        fresh = type(optimizer)(learning_rate=0.987)
        restored_theta, epoch = load_checkpoint(path, fresh)
        np.testing.assert_array_equal(restored_theta, theta)
        assert fresh.learning_rate == optimizer.learning_rate

        # Continued training must be bit-identical to the original.
        keys = np.arange(10)
        grads = rng.normal(size=10)
        optimizer.step(theta, keys, grads)
        fresh.step(restored_theta, keys, grads)
        np.testing.assert_array_equal(restored_theta, theta)

    def test_optimizer_type_mismatch(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        adam = Adam(0.01)
        adam.prepare(10)
        save_checkpoint(path, np.zeros(10), adam)
        with pytest.raises(ValueError, match="state"):
            load_checkpoint(path, SGD(0.1))

    def test_missing_optimizer_state(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, np.zeros(10))
        with pytest.raises(ValueError, match="no optimizer state"):
            load_checkpoint(path, Adam(0.01))


class TestAtomicSave:
    def test_crash_mid_write_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        # A crash while the archive is being written (the exact
        # interruption a checkpoint exists to survive) must leave the
        # previous checkpoint readable and no temp litter behind.
        path = tmp_path / "model.npz"
        old_theta = np.full(64, 2.5)
        save_checkpoint(path, old_theta, epoch=3)

        def crashing_savez(handle, **arrays):
            handle.write(b"half-written garbage")
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(np, "savez_compressed", crashing_savez)
        with pytest.raises(RuntimeError, match="simulated crash"):
            save_checkpoint(path, np.zeros(64), epoch=4)
        monkeypatch.undo()

        loaded, epoch = load_checkpoint(path)
        np.testing.assert_array_equal(loaded, old_theta)
        assert epoch == 3
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_crash_with_no_prior_checkpoint_leaves_nothing(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "fresh.npz"

        def crashing_savez(handle, **arrays):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", crashing_savez)
        with pytest.raises(OSError):
            save_checkpoint(path, np.zeros(8))
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_suffixless_path_gains_npz_suffix_atomically(self, tmp_path):
        # np.savez_compressed appends ".npz" to suffix-less paths; the
        # atomic writer must target the same final name.
        path = tmp_path / "model"
        save_checkpoint(path, np.arange(5.0), epoch=1)
        assert (tmp_path / "model.npz").exists()
        loaded, _ = load_checkpoint(tmp_path / "model.npz")
        np.testing.assert_array_equal(loaded, np.arange(5.0))

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(path, np.zeros(16), epoch=1)
        save_checkpoint(path, np.ones(16), epoch=2)
        loaded, epoch = load_checkpoint(path)
        np.testing.assert_array_equal(loaded, np.ones(16))
        assert epoch == 2
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []


class TestRefitInterval:
    def make_gradient(self, seed):
        rng = np.random.default_rng(seed)
        keys = np.sort(rng.choice(100_000, size=3_000, replace=False))
        values = rng.laplace(scale=0.01, size=3_000)
        values[values == 0.0] = 1e-6
        return keys, values

    def test_validation(self):
        with pytest.raises(ValueError):
            SketchMLConfig(refit_interval=0)

    def test_cached_quantizer_reused(self):
        comp = SketchMLCompressor(SketchMLConfig.full(refit_interval=5))
        keys, values = self.make_gradient(0)
        comp.compress(keys, values, 100_000)
        first = comp._cached_quantizer
        keys2, values2 = self.make_gradient(1)
        comp.compress(keys2, values2, 100_000)
        assert comp._cached_quantizer is first  # reused, not refit

    def test_refit_happens_on_schedule(self):
        comp = SketchMLCompressor(SketchMLConfig.full(refit_interval=2))
        quantizers = []
        for seed in range(4):
            keys, values = self.make_gradient(seed)
            comp.compress(keys, values, 100_000)
            quantizers.append(comp._cached_quantizer)
        assert quantizers[0] is quantizers[1]
        assert quantizers[1] is not quantizers[2]
        assert quantizers[2] is quantizers[3]

    def test_roundtrip_still_correct_between_refits(self):
        comp = SketchMLCompressor(SketchMLConfig.full(refit_interval=10))
        for seed in range(5):
            keys, values = self.make_gradient(seed)
            out_keys, out_values, _ = comp.roundtrip(keys, values, 100_000)
            np.testing.assert_array_equal(out_keys, keys)
            assert np.all(np.sign(out_values) == np.sign(values))

    def test_sign_miss_triggers_on_demand_refit(self):
        comp = SketchMLCompressor(SketchMLConfig.full(refit_interval=100))
        rng = np.random.default_rng(9)
        keys = np.sort(rng.choice(10_000, size=200, replace=False))
        positive_only = np.abs(rng.laplace(scale=0.01, size=200)) + 1e-6
        comp.compress(keys, positive_only, 10_000)
        mixed = rng.laplace(scale=0.01, size=200)
        mixed[mixed == 0.0] = -1e-6
        out_keys, out_values, _ = comp.roundtrip(keys, mixed, 10_000)
        np.testing.assert_array_equal(out_keys, keys)
        assert np.all(np.sign(out_values) == np.sign(mixed))

    def test_reset_clears_cache(self):
        comp = SketchMLCompressor(SketchMLConfig.full(refit_interval=5))
        keys, values = self.make_gradient(2)
        comp.compress(keys, values, 100_000)
        assert comp._cached_quantizer is not None
        comp.reset()
        assert comp._cached_quantizer is None

    def test_refit_interval_reduces_encode_time(self):
        import time

        keys, values = self.make_gradient(3)

        def encode_time(interval, repeats=20):
            comp = SketchMLCompressor(
                SketchMLConfig.full(refit_interval=interval)
            )
            t0 = time.perf_counter()
            for _ in range(repeats):
                comp.compress(keys, values, 100_000)
            return time.perf_counter() - t0

        # Warm both paths once, then compare.
        encode_time(1, repeats=2)
        assert encode_time(10) < encode_time(1)
