"""Tests for the Factorization Machine model."""

import numpy as np
import pytest

from repro.data import SparseDataset
from repro.models import FactorizationMachine, make_model
from repro.optim import Adam


def interaction_dataset(seed=0, rows=300, features=30):
    """Labels driven by a feature *interaction* — linearly inseparable.

    y = sign(x_a * x_b): only a second-order model can fit it.
    """
    rng = np.random.default_rng(seed)
    row_list = []
    labels = []
    for _ in range(rows):
        cols = np.sort(rng.choice(features, size=6, replace=False))
        vals = rng.choice([-1.0, 1.0], size=6) * rng.uniform(0.5, 1.5, size=6)
        row_list.append((cols, vals))
        # Interaction of the two lowest active features decides the label.
        labels.append(1.0 if vals[0] * vals[1] > 0 else -1.0)
    return SparseDataset.from_rows(row_list, np.asarray(labels), features)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            FactorizationMachine(10, num_factors=0)
        with pytest.raises(ValueError):
            FactorizationMachine(0)

    def test_parameter_layout(self):
        fm = FactorizationMachine(num_features=100, num_factors=4)
        assert fm.num_parameters == 1 + 100 + 400

    def test_factory(self):
        assert isinstance(make_model("fm", 50), FactorizationMachine)

    def test_init_theta_shape(self):
        fm = FactorizationMachine(20, num_factors=3, seed=1)
        theta = fm.init_theta()
        assert theta.shape == (1 + 20 + 60,)
        assert np.all(theta[:21] == 0.0)  # bias + linear start at zero
        assert theta[21:].std() > 0  # factors randomly initialised

    def test_empty_batch_rejected(self):
        ds = interaction_dataset()
        fm = FactorizationMachine(ds.num_features)
        with pytest.raises(ValueError, match="at least one row"):
            fm.batch_gradient(ds, np.asarray([], dtype=np.int64), fm.init_theta())


class TestGradient:
    def test_matches_numeric_gradient(self):
        ds = interaction_dataset(seed=1, rows=20, features=15)
        fm = FactorizationMachine(15, num_factors=3, reg_lambda=0.01, seed=2)
        rng = np.random.default_rng(3)
        theta = rng.normal(scale=0.2, size=fm.num_parameters)
        rows = np.arange(10)
        keys, values, _ = fm.batch_gradient(ds, rows, theta)
        grad = np.zeros(fm.num_parameters)
        grad[keys] = values
        eps = 1e-6
        sample = np.unique(
            np.concatenate([[0], keys[:: max(1, keys.size // 12)]])
        )
        for k in sample:
            tp = theta.copy()
            tp[k] += eps
            tm = theta.copy()
            tm[k] -= eps
            numeric = (fm.loss(ds, rows, tp) - fm.loss(ds, rows, tm)) / (2 * eps)
            assert grad[k] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_gradient_is_sparse(self):
        ds = interaction_dataset(seed=2)
        fm = FactorizationMachine(ds.num_features, num_factors=4, seed=0)
        keys, _, _ = fm.batch_gradient(ds, np.asarray([0, 1]), fm.init_theta())
        # Only bias + active features' w and V rows are touched.
        active = np.union1d(ds.row(0).keys, ds.row(1).keys)
        max_touched = 1 + active.size + active.size * 4
        assert keys.size <= max_touched
        assert np.all(np.diff(keys) > 0)

    def test_keys_within_parameter_space(self):
        ds = interaction_dataset(seed=3)
        fm = FactorizationMachine(ds.num_features, num_factors=2)
        keys, _, _ = fm.batch_gradient(ds, np.arange(5), fm.init_theta())
        assert keys.min() >= 0
        assert keys.max() < fm.num_parameters


class TestLearning:
    def test_beats_linear_model_on_interactions(self):
        ds = interaction_dataset(seed=4, rows=400, features=20)
        rows = np.arange(ds.num_rows)

        def train(model, steps=400, lr=0.05):
            theta = model.init_theta()
            opt = Adam(learning_rate=lr)
            opt.prepare(model.num_parameters)
            rng = np.random.default_rng(0)
            for _ in range(steps):
                batch = rng.choice(ds.num_rows, size=64, replace=False)
                keys, values, _ = model.batch_gradient(ds, batch, theta)
                opt.step(theta, keys, values)
            return model.accuracy(ds, rows, theta)

        fm_acc = train(FactorizationMachine(20, num_factors=6, seed=1))
        linear_acc = train(make_model("lr", 20, reg_lambda=0.0))
        assert fm_acc > 0.8
        assert fm_acc > linear_acc + 0.1

    def test_trains_under_distributed_trainer_with_sketchml(self):
        from repro.core import SketchMLCompressor
        from repro.distributed import (
            DistributedTrainer,
            TrainerConfig,
            cluster1_like,
        )

        ds = interaction_dataset(seed=5, rows=400, features=25)
        fm = FactorizationMachine(25, num_factors=4, seed=0)
        trainer = DistributedTrainer(
            model=fm,
            optimizer=Adam(learning_rate=0.05),
            compressor_factory=SketchMLCompressor,
            network=cluster1_like(),
            config=TrainerConfig(num_workers=4, epochs=8, seed=0,
                                 batch_fraction=0.5),
        )
        history = trainer.train(ds, ds)
        assert history.test_losses[-1] < history.test_losses[0]
        assert history.avg_compression_rate > 1.0
