"""Unit tests for ``repro.telemetry``: schema validation, recorder
behaviour, single-source epoch accounting, and the disabled-path
overhead budget."""

import os

import pytest

from repro import telemetry
from repro.telemetry import recorder as recorder_module
from repro.telemetry.epoch import EpochAccumulator, replay_epoch_sums
from repro.telemetry.merge import (
    merge_trace_events,
    read_trace,
    write_trace,
)
from repro.telemetry.schema import (
    SCHEMA,
    TraceSchemaError,
    validate_event,
    validate_trace,
)


@pytest.fixture(autouse=True)
def clean_telemetry_state():
    """No test may leak an installed recorder, session, or context."""
    assert telemetry.get_recorder() is None
    assert telemetry.active_session() is None
    yield
    if telemetry.active_session() is not None:
        telemetry.finish_run()
    leftover = telemetry.set_recorder(None)
    if leftover is not None:
        leftover.close()
    recorder_module._CONTEXT.clear()


def make_event(**overrides):
    base = {"type": "counter", "name": "x", "value": 1,
            "ts": 1.5, "pid": 42, "seq": 3}
    base.update(overrides)
    return base


def meta_event(pid=42, seq=0, **overrides):
    base = {"type": "meta", "ts": 1.0, "pid": pid, "seq": seq,
            "schema": SCHEMA, "source": "driver"}
    base.update(overrides)
    return base


class TestValidateEvent:
    def test_valid_events_of_every_type(self):
        validate_event(meta_event())
        validate_event(make_event())
        validate_event({"type": "span", "name": "s", "dur": 0.0,
                        "ts": 1.0, "pid": 1, "seq": 1})
        validate_event({"type": "measure", "name": "m", "value": 0.5,
                        "unit": "s", "ts": 1.0, "pid": 1, "seq": 2})
        validate_event({"type": "gauge", "name": "g", "value": 1.25,
                        "ts": 1.0, "pid": 1, "seq": 3})
        validate_event({"type": "hist", "name": "h", "value": 2,
                        "ts": 1.0, "pid": 1, "seq": 4})
        validate_event({"type": "event", "name": "e", "ts": 1.0,
                        "pid": 1, "seq": 5, "attrs": {"k": "v"}})

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown event type"):
            validate_event(make_event(type="trace"))

    def test_missing_common_fields_rejected(self):
        for field in ("type", "ts", "pid", "seq"):
            event = make_event()
            del event[field]
            with pytest.raises(TraceSchemaError):
                validate_event(event)

    def test_bool_is_not_an_int(self):
        with pytest.raises(TraceSchemaError, match="pid"):
            validate_event(make_event(pid=True))
        with pytest.raises(TraceSchemaError, match="value"):
            validate_event(make_event(value=True))

    def test_negative_seq_and_dur_rejected(self):
        with pytest.raises(TraceSchemaError, match="seq"):
            validate_event(make_event(seq=-1))
        with pytest.raises(TraceSchemaError, match="dur"):
            validate_event({"type": "span", "name": "s", "dur": -0.1,
                            "ts": 1.0, "pid": 1, "seq": 1})

    def test_context_field_types_enforced(self):
        validate_event(make_event(worker=3, epoch=0, phase="step", run="r"))
        with pytest.raises(TraceSchemaError, match="worker"):
            validate_event(make_event(worker="three"))
        with pytest.raises(TraceSchemaError, match="round"):
            validate_event({**make_event(), "round": 1.5})

    def test_meta_schema_pin(self):
        with pytest.raises(TraceSchemaError, match="unsupported trace schema"):
            validate_event(meta_event(schema="repro-trace/0"))
        with pytest.raises(TraceSchemaError, match="source"):
            validate_event(meta_event(source="observer"))

    def test_counter_value_must_be_int(self):
        with pytest.raises(TraceSchemaError, match="value"):
            validate_event(make_event(value=1.5))

    def test_empty_name_rejected(self):
        with pytest.raises(TraceSchemaError, match="non-empty"):
            validate_event(make_event(name=""))


class TestValidateTrace:
    def test_stats_summary(self):
        stats = validate_trace([
            meta_event(pid=1, seq=0),
            make_event(pid=1, seq=1),
            make_event(pid=1, seq=2, type="gauge", value=0.5),
        ])
        assert stats["events"] == 3
        assert stats["processes"] == 1
        assert stats["types"] == {"counter": 1, "gauge": 1, "meta": 1}

    def test_meta_must_be_seq_zero(self):
        with pytest.raises(TraceSchemaError, match="seq 0"):
            validate_trace([meta_event(pid=1, seq=5)])

    def test_duplicate_meta_rejected(self):
        with pytest.raises(TraceSchemaError, match="duplicate meta"):
            validate_trace([
                meta_event(pid=1, seq=0),
                meta_event(pid=1, seq=1) | {"seq": 0},
            ])

    def test_duplicate_seq_rejected(self):
        with pytest.raises(TraceSchemaError, match="duplicate seq"):
            validate_trace([
                meta_event(pid=1, seq=0),
                make_event(pid=1, seq=1),
                make_event(pid=1, seq=1),
            ])

    def test_pid_without_meta_rejected(self):
        with pytest.raises(TraceSchemaError, match="missing a meta"):
            validate_trace([
                meta_event(pid=1, seq=0),
                make_event(pid=2, seq=4),
            ])

    def test_file_order_need_not_be_seq_sorted(self):
        # Spans carry their *start* ts but are emitted on exit, so a
        # merged trace legally interleaves a late-seq parent before its
        # early-seq children.
        validate_trace([
            meta_event(pid=1, seq=0),
            {"type": "span", "name": "parent", "dur": 1.0,
             "ts": 1.0, "pid": 1, "seq": 9},
            make_event(pid=1, seq=1, ts=1.2),
        ])


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.get_recorder() is None

    def test_all_entry_points_are_noops(self):
        with telemetry.span("codec.compress", nnz=10):
            telemetry.counter("c", 1)
            telemetry.gauge("g", 0.5)
            telemetry.hist("h", 1.0)
            telemetry.measure("m", 0.1)
            telemetry.event("e", worker=0)

    def test_disabled_span_is_shared_singleton(self):
        assert telemetry.span("a") is telemetry.span("b")  # repro: noqa[telemetry-discipline] — asserting the disabled-path singleton, deliberately not entering the spans


class TestRecorderSession:
    def test_run_lifecycle_produces_valid_merged_trace(self, tmp_path):
        out = str(tmp_path / "out.jsonl")
        session = telemetry.start_run(out, run_id="unit")
        assert telemetry.enabled()
        assert telemetry.active_run_id() == "unit"
        assert telemetry.worker_trace_dir() == session.parts_dir
        with telemetry.context(epoch=0, round=1):
            with telemetry.span("trainer.round"):
                telemetry.counter("trainer.bytes_sent", 128)
        merged = telemetry.finish_run()
        assert merged == out
        assert not os.path.isdir(session.parts_dir)
        assert not telemetry.enabled()
        events = read_trace(out)
        stats = validate_trace(events)
        assert stats["processes"] == 1
        assert stats["types"]["span"] == 1
        assert stats["types"]["counter"] == 1

    def test_events_carry_run_and_scoped_context(self, tmp_path):
        out = str(tmp_path / "out.jsonl")
        telemetry.start_run(out, run_id="ctx-run")
        telemetry.counter("outside", 1)
        with telemetry.context(epoch=2, phase="step"):
            telemetry.counter("inside", 1)
        telemetry.counter("after", 1)
        telemetry.finish_run()
        by_name = {e.get("name"): e for e in read_trace(out)}
        assert by_name["outside"]["run"] == "ctx-run"
        assert "epoch" not in by_name["outside"]
        assert by_name["inside"]["epoch"] == 2
        assert by_name["inside"]["phase"] == "step"
        assert "epoch" not in by_name["after"]

    def test_nested_context_restores_shadowed_fields(self, tmp_path):
        out = str(tmp_path / "out.jsonl")
        telemetry.start_run(out, run_id="nest")
        with telemetry.context(worker=1):
            with telemetry.context(worker=7):
                telemetry.counter("deep", 1)
            telemetry.counter("shallow", 1)
        telemetry.finish_run()
        by_name = {e.get("name"): e for e in read_trace(out)}
        assert by_name["deep"]["worker"] == 7
        assert by_name["shallow"]["worker"] == 1

    def test_explicit_attrs_recorded_alongside_context(self, tmp_path):
        out = str(tmp_path / "out.jsonl")
        telemetry.start_run(out, run_id="attrs")
        with telemetry.context(worker=1):
            telemetry.counter("transport.bytes_sent", 64, worker=5)
        telemetry.finish_run()
        (event,) = [e for e in read_trace(out)
                    if e.get("name") == "transport.bytes_sent"]
        # The explicit target worker rides in attrs and wins over the
        # ambient context in analysis (see telemetry.summary).
        assert event["attrs"]["worker"] == 5
        assert event["value"] == 64

    def test_span_ts_is_start_not_exit(self, tmp_path):
        out = str(tmp_path / "out.jsonl")
        telemetry.start_run(out, run_id="span")
        with telemetry.span("outer"):
            telemetry.event("inner")
        telemetry.finish_run()
        events = read_trace(out)
        span = next(e for e in events if e["type"] == "span")
        inner = next(e for e in events if e.get("name") == "inner")
        assert span["dur"] >= 0
        assert span["ts"] <= inner["ts"]

    def test_second_start_run_rejected(self, tmp_path):
        telemetry.start_run(str(tmp_path / "a.jsonl"), run_id="a")
        with pytest.raises(RuntimeError, match="already active"):
            telemetry.start_run(str(tmp_path / "b.jsonl"), run_id="b")
        telemetry.finish_run()

    def test_finish_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="no trace run"):
            telemetry.finish_run()

    def test_worker_recorder_writes_part_file(self, tmp_path):
        parts = tmp_path / "parts"
        parts.mkdir()
        telemetry.enable_worker_recorder(str(parts), 3, run_id="wrk")
        telemetry.counter("runtime.heartbeats", 1)
        telemetry.close_worker_recorder()
        part = parts / "worker-0003.jsonl"
        assert part.is_file()
        events = read_trace(str(part))
        validate_trace(events)
        assert events[0]["type"] == "meta"
        assert events[0]["source"] == "worker"
        assert events[0]["worker"] == 3
        assert all(e["worker"] == 3 for e in events)
        assert all(e["run"] == "wrk" for e in events[1:])


class TestMerge:
    def test_merge_orders_by_ts_pid_seq(self):
        a = [meta_event(pid=1, seq=0, ts=1.0),
             make_event(pid=1, seq=1, ts=5.0)]
        b = [meta_event(pid=2, seq=0, ts=0.5),
             make_event(pid=2, seq=1, ts=5.0)]
        merged = merge_trace_events([a, b])
        assert [(e["ts"], e["pid"], e["seq"]) for e in merged] == [
            (0.5, 2, 0), (1.0, 1, 0), (5.0, 1, 1), (5.0, 2, 1)]

    def test_write_read_round_trip(self, tmp_path):
        events = [meta_event(), make_event()]
        path = str(tmp_path / "t.jsonl")
        write_trace(events, path)
        assert read_trace(path) == events

    def test_read_rejects_garbage_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(str(path))


class TestEpochAccumulator:
    def test_accumulates_without_recorder(self):
        acc = EpochAccumulator(0)
        acc.add_seconds("compute", 0.5)
        acc.add_seconds("compute", 0.25)
        acc.add_counts(bytes_sent=100, num_messages=2, raw_bytes=400,
                       gradient_nnz=10)
        acc.add_loss(3.0, 2)
        fields = acc.record_fields()
        assert fields["compute_seconds"] == 0.75
        assert fields["bytes_sent"] == 100
        assert fields["gradient_nnz"] == 5.0
        assert fields["train_loss"] == 1.5

    def test_trace_replay_reproduces_sums_exactly(self, tmp_path):
        out = str(tmp_path / "acc.jsonl")
        telemetry.start_run(out, run_id="acc")
        acc = EpochAccumulator(4)
        with telemetry.context(epoch=4):
            # Deliberately awkward floats: replay must match the
            # accumulator bit-for-bit, not to within a tolerance.
            for value in (0.1, 0.2, 0.30000000000000004, 1e-9):
                acc.add_seconds("compute", value)
                acc.add_seconds("network", value / 3.0)
            acc.add_counts(bytes_sent=12345, raw_bytes=67890)
        telemetry.finish_run()
        replay = replay_epoch_sums(read_trace(out))
        assert replay[4]["compute_seconds"] == acc.seconds["compute"]
        assert replay[4]["network_seconds"] == acc.seconds["network"]
        assert replay[4]["bytes_sent"] == acc.counts["bytes_sent"]
        assert replay[4]["raw_bytes"] == acc.counts["raw_bytes"]

    def test_replay_ignores_events_without_epoch_context(self, tmp_path):
        out = str(tmp_path / "noepoch.jsonl")
        telemetry.start_run(out, run_id="noepoch")
        telemetry.measure("trainer.compute_seconds", 1.0)
        telemetry.finish_run()
        assert replay_epoch_sums(read_trace(out)) == {}


class TestOverheadBudget:
    def test_disabled_overhead_within_two_percent(self):
        from repro.perf import MAX_OVERHEAD_FRACTION, measure_overhead

        report = measure_overhead(nnz=5_000, warmup=1, repeats=3)
        assert report.span_calls > 0
        assert report.metric_calls > 0
        assert report.overhead_fraction <= MAX_OVERHEAD_FRACTION, (
            report.describe())
        assert "overhead" in report.describe()
        # The probe must not leave a recorder installed.
        assert telemetry.get_recorder() is None
