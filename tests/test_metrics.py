"""Tests for training metrics and the §4.4 convergence rule."""

import pytest

from repro.distributed import EpochRecord, TrainingHistory, time_to_converge


def record(epoch, loss, compute=1.0, network=2.0, test_loss=None, bytes_sent=1_000):
    return EpochRecord(
        epoch=epoch,
        compute_seconds=compute,
        network_seconds=network,
        encode_seconds=0.1,
        decode_seconds=0.2,
        train_loss=loss,
        test_loss=test_loss,
        bytes_sent=bytes_sent,
        raw_bytes=4_000,
        num_messages=10,
        gradient_nnz=100.0,
    )


class TestEpochRecord:
    def test_derived_quantities(self):
        r = record(0, 0.5)
        assert r.epoch_seconds == pytest.approx(3.0)
        assert r.avg_message_bytes == pytest.approx(100.0)
        assert r.compression_rate == pytest.approx(4.0)
        assert r.compression_cpu_fraction == pytest.approx(0.3)

    def test_zero_division_guards(self):
        r = record(0, 0.5, bytes_sent=0)
        r.num_messages = 0
        assert r.avg_message_bytes == 0.0
        assert r.compression_rate == float("inf")
        r.compute_seconds = 0.0
        assert r.compression_cpu_fraction == 0.0


class TestTrainingHistory:
    def test_series(self):
        h = TrainingHistory(method="m", model="lr", num_workers=4)
        for i, loss in enumerate([0.9, 0.8, 0.7]):
            h.append(record(i, loss, test_loss=loss - 0.1))
        assert h.num_epochs == 3
        assert h.cumulative_seconds == pytest.approx([3.0, 6.0, 9.0])
        assert h.avg_epoch_seconds == pytest.approx(3.0)
        assert h.train_losses == [0.9, 0.8, 0.7]
        for (t, loss), (et, el) in zip(
            h.loss_curve(), [(3.0, 0.8), (6.0, 0.7), (9.0, 0.6)]
        ):
            assert t == pytest.approx(et)
            assert loss == pytest.approx(el)
        assert h.best_loss == pytest.approx(0.6)
        assert h.total_bytes_sent == 3_000
        assert h.avg_compression_rate == pytest.approx(4.0)

    def test_loss_curve_falls_back_to_train_loss(self):
        h = TrainingHistory(method="m", model="lr", num_workers=1)
        h.append(record(0, 0.5))
        assert h.loss_curve() == [(3.0, 0.5)]

    def test_empty_history(self):
        h = TrainingHistory(method="m", model="lr", num_workers=1)
        assert h.avg_epoch_seconds == 0.0
        assert h.best_loss == float("inf")


class TestExport:
    def make_history(self):
        h = TrainingHistory(method="SketchML", model="lr", num_workers=4)
        h.append(record(0, 0.9, test_loss=0.85))
        h.append(record(1, 0.8))
        return h

    def test_to_dict_roundtrips_via_json(self):
        import json

        h = self.make_history()
        payload = json.loads(json.dumps(h.to_dict()))
        assert payload["method"] == "SketchML"
        assert len(payload["epochs"]) == 2
        assert payload["epochs"][0]["test_loss"] == 0.85
        assert payload["epochs"][1]["test_loss"] is None
        assert payload["epochs"][0]["compression_rate"] == pytest.approx(4.0)

    def test_to_csv_shape(self):
        csv = self.make_history().to_csv()
        lines = csv.strip().splitlines()
        assert len(lines) == 3  # header + 2 epochs
        header = lines[0].split(",")
        assert "epoch_seconds" in header
        assert "test_loss" in header
        # Missing test loss renders as an empty cell.
        assert ",," in lines[2] or lines[2].endswith(",")


class TestTimeToConverge:
    def make_history(self, losses):
        h = TrainingHistory(method="m", model="lr", num_workers=1)
        for i, loss in enumerate(losses):
            h.append(record(i, loss))
        return h

    def test_converged_series(self):
        # Stabilises at 0.5 from epoch 3 on.
        losses = [1.0, 0.8, 0.6, 0.5, 0.5, 0.5, 0.5, 0.5]
        loss, seconds = time_to_converge(self.make_history(losses), window=5)
        assert loss == pytest.approx(0.5)
        assert seconds == pytest.approx(3.0 * 8)  # converged at epoch 8

    def test_never_converges_returns_final(self):
        losses = [1.0, 0.5, 0.25, 0.125]
        loss, seconds = time_to_converge(self.make_history(losses), window=3)
        assert loss == pytest.approx(0.125)
        assert seconds == pytest.approx(12.0)

    def test_constant_series_converges_immediately(self):
        losses = [0.7] * 6
        loss, seconds = time_to_converge(self.make_history(losses), window=5)
        assert loss == pytest.approx(0.7)
        assert seconds == pytest.approx(15.0)  # first full window

    def test_validation(self):
        with pytest.raises(ValueError, match="no epochs"):
            time_to_converge(TrainingHistory(method="m", model="lr", num_workers=1))
        with pytest.raises(ValueError, match="window"):
            time_to_converge(self.make_history([1.0]), window=1)
